"""Ablation: column replication factor ``k``.

The paper defaults to ``k = 2``: replicas give the load balancer a choice
of worker per column (better balance) and tolerate a worker crash.  This
ablation sweeps k and verifies (a) k=2 is not slower than k=1 (usually
faster on skewed load), (b) fault recovery requires k >= 2.
"""

import pytest

from repro.cluster import CrashPlan
from repro.core import SystemConfig, TreeConfig, TreeServer, random_forest_job
from repro.evaluation import load_dataset
from repro.evaluation.tables import format_table

from conftest import save_result


def test_ablation_replication(run_once):
    results = {}

    def experiment():
        train, test = load_dataset("kdd99")
        for k in (1, 2, 3):
            system = SystemConfig(
                n_workers=8, compers_per_worker=4, column_replication=k
            ).scaled_to(train.n_rows)
            job = random_forest_job("rf", 20, TreeConfig(max_depth=10), seed=12)
            report = TreeServer(system).fit(train, [job])
            results[k] = report.sim_seconds

        # Crash tolerance: k=1 dies, k=2 survives.
        system1 = SystemConfig(
            n_workers=6, compers_per_worker=2, column_replication=1
        ).scaled_to(train.n_rows)
        with pytest.raises(RuntimeError, match="replica"):
            TreeServer(system1).fit(
                train,
                [random_forest_job("rf", 4, TreeConfig(max_depth=8), seed=1)],
                crash_plans=[CrashPlan(machine_id=2, at_time=0.01)],
            )
        system2 = SystemConfig(
            n_workers=6, compers_per_worker=2, column_replication=2
        ).scaled_to(train.n_rows)
        crashed = TreeServer(system2).fit(
            train,
            [random_forest_job("rf", 4, TreeConfig(max_depth=8), seed=1)],
            crash_plans=[CrashPlan(machine_id=2, at_time=0.01)],
        )
        results["crash_k2_recovered"] = crashed.counters.revoked_trees

    run_once(experiment)

    rows = [[f"k={k}", f"{results[k]:.3f}"] for k in (1, 2, 3)]
    rows.append(
        ["k=2 + crash", f"recovered ({results['crash_k2_recovered']} trees re-run)"]
    )
    save_result(
        "ablation_replication",
        format_table(
            "Ablation — column replication factor (RF-20 on kdd99)",
            ["replication", "time(s) / outcome"],
            rows,
        ),
    )

    # Replicas never hurt much and k=2 is within noise of the best.
    assert results[2] <= results[1] * 1.10
    assert results["crash_k2_recovered"] >= 1
