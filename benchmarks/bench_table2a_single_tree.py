"""Table II(a): one decision tree — TreeServer vs MLlib (parallel & 1-thread).

Paper shape: TreeServer is consistently several times faster than parallel
MLlib (up to ~10x, largest on wide datasets); its exact splits give equal or
slightly better accuracy in the majority of cases; single-thread MLlib is
usually slower than parallel MLlib, except on small wide datasets (MS_LTRC)
where cluster overheads dominate.
"""

from repro.core import TreeConfig
from repro.evaluation import (
    ComparisonTable,
    load_dataset,
    run_mllib,
    run_treeserver,
)

from conftest import save_result

DATASETS = [
    "allstate",
    "higgs_boson",
    "ms_ltrc",
    "c14b",
    "covtype",
    "poker",
    "kdd99",
    "susy",
    "loan_m1",
    "loan_y1",
    "loan_y2",
]


def test_table2a_single_tree(run_once):
    cfg = TreeConfig(max_depth=10)
    table = ComparisonTable(
        "Table II(a) — one decision tree (all columns, dmax=10)",
        ["TreeServer", "MLlib (Parallel)", "MLlib (Single Thread)"],
    )

    def experiment():
        for dataset in DATASETS:
            train, test = load_dataset(dataset)
            table.add(run_treeserver(dataset, train, test, cfg))
            table.add(run_mllib(dataset, train, test, cfg))
            table.add(run_mllib(dataset, train, test, cfg, single_thread=True))
        return table

    run_once(experiment)
    save_result("table2a_single_tree", table.render())

    speedups = {
        d: table.speedup(d, "TreeServer", "MLlib (Parallel)") for d in DATASETS
    }
    save_result(
        "table2a_speedups",
        "\n".join(f"{d}: {s:.1f}x" for d, s in speedups.items()),
    )
    # TreeServer wins on every dataset; the best case is "up to ~10x".
    assert all(s > 1.0 for s in speedups.values())
    assert max(speedups.values()) >= 5.0
    # Exact splits: TreeServer quality is at least as good as MLlib's on
    # the majority of datasets (accuracy higher / RMSE lower).
    better = 0
    for dataset in DATASETS:
        ts = table.rows[dataset]["TreeServer"]
        ml = table.rows[dataset]["MLlib (Parallel)"]
        if ts.quality_metric == "rmse":
            better += ts.quality <= ml.quality + 1e-9
        else:
            better += ts.quality >= ml.quality - 1e-9
    assert better >= len(DATASETS) // 2 + 1
    # The MS_LTRC-style inversion: single-thread beats parallel on the
    # small wide dataset, but not on the large narrow ones.
    assert (
        table.rows["ms_ltrc"]["MLlib (Single Thread)"].sim_seconds
        < table.rows["ms_ltrc"]["MLlib (Parallel)"].sim_seconds
    )
    assert (
        table.rows["loan_y2"]["MLlib (Single Thread)"].sim_seconds
        > table.rows["loan_y2"]["MLlib (Parallel)"].sim_seconds
    )
