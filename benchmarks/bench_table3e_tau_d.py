"""Table III(e): effect of the subtree-task threshold ``tau_D``.

Paper shape: an interior optimum.  Too small, and subtree-tasks are too
tiny — more column-task rounds, more row-set communication; too large, and
too few tasks exist for parallelism and load balancing (at the extreme the
whole tree is one single-core task).  The paper sweeps 2k..20k around its
10k default; we sweep multiples of the scaled default, including the
degenerate whole-tree extreme, on single-tree jobs so intra-tree
parallelism is what's measured (as with the paper's 150-core testbed).
"""

from repro.core import SystemConfig, TreeConfig, TreeServer, decision_tree_job
from repro.evaluation import load_dataset
from repro.evaluation.tables import format_table

from conftest import save_result

DATASETS = ["loan_y2", "loan_y1"]
#: Multiples of the scaled default tau_D to sweep.
FRACTIONS = [0.1, 0.5, 1.0, 4.0, 16.0, 64.0]


def test_table3e_tau_d(run_once):
    times: dict[str, list[float]] = {d: [] for d in DATASETS}
    whole_tree: dict[str, float] = {}

    def experiment():
        for dataset in DATASETS:
            train, test = load_dataset(dataset)
            base = SystemConfig(n_workers=15, compers_per_worker=10).scaled_to(
                train.n_rows
            )
            for fraction in FRACTIONS:
                tau = max(4, int(base.tau_subtree * fraction))
                system = SystemConfig(
                    n_workers=15,
                    compers_per_worker=10,
                    tau_subtree=tau,
                    tau_dfs=max(base.tau_dfs, tau),
                )
                report = TreeServer(system).fit(
                    train, [decision_tree_job("dt", TreeConfig(max_depth=10))]
                )
                times[dataset].append(report.sim_seconds)
            # Degenerate extreme: the whole tree as one single-core task.
            system = SystemConfig(
                n_workers=15,
                compers_per_worker=10,
                tau_subtree=train.n_rows + 1,
                tau_dfs=train.n_rows + 1,
            )
            report = TreeServer(system).fit(
                train, [decision_tree_job("dt", TreeConfig(max_depth=10))]
            )
            whole_tree[dataset] = report.sim_seconds

    run_once(experiment)

    rows = [
        [f"{f}x default"] + [f"{times[d][i]:.3f}" for d in DATASETS]
        for i, f in enumerate(FRACTIONS)
    ]
    rows.append(
        ["whole tree"] + [f"{whole_tree[d]:.3f}" for d in DATASETS]
    )
    save_result(
        "table3e_tau_d",
        format_table(
            "Table III(e) — effect of tau_D (1 tree, time in sim seconds)",
            ["tau_D"] + DATASETS,
            rows,
        ),
    )

    for dataset in DATASETS:
        series = times[dataset]
        best = min(series)
        # Left arm of the interior optimum: very small subtree-tasks are
        # slower (more column-task rounds, more row-set traffic) ...
        assert series[0] > best
        # ... the scaled default sits in the valley (which is flatter at
        # laptop scale than at the paper's; see EXPERIMENTS.md) ...
        assert series[FRACTIONS.index(1.0)] <= best * 1.5
        # ... and the degenerate whole-tree extreme is clearly worse
        # (too few tasks for the cluster's cores) — the right arm.
        assert whole_tree[dataset] > best * 1.25
