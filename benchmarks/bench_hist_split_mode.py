"""Histogram split mode: message bytes and wall clock vs exact, socket.

Trains the same jobs on the same tables through the socket backend with
the shared-memory data plane off (every payload is pickled inline), once
with ``split_mode="exact"`` and once with ``split_mode="hist"`` at the
default 32 bins, on two shapes:

* a **wide** table (48 numeric columns, modest rows) — the shape the
  histogram mode targets: subtree gathers ship one slice per candidate
  column, so the float64 -> int8 bucket-code substitution multiplies
  across the column count;
* a **tall** table (8 columns, many rows) — fewer, fatter slices, the
  per-slice cut with less amplification.

The shape is gather-dominated (``tau_subtree`` above the row count, so
every tree trains as one subtree task whose worker fetches all candidate
columns from single-replica holders) — the regime where split mode
changes what crosses the wire rather than just what the master scores.

The headline, deterministic metric is total ``bytes_pickled`` across the
fleet: bucket codes are one byte per cell against eight for raw float64
columns, so hist must cut the total by more than half on both shapes.
Wall clock is reported min-of-N but asserted only as a bounded-overhead
check — at this laptop scale the byte savings are milliseconds, and on a
shared single core (CI) scheduler noise dwarfs them — so hist must
merely stay within a noise factor of exact everywhere, and the JSON
records ``cores`` so a reader can tell which regime produced the
numbers.
"""

import json
import os
import time
from pathlib import Path

from repro import SystemConfig, TreeConfig, TreeServer, decision_tree_job
from repro.datasets import SyntheticSpec, generate
from repro.runtime import RuntimeOptions

from conftest import save_result

HIST_MAX_BINS = 32
HIST_N_JOBS = 3
HIST_MAX_DEPTH = 8
HIST_REPEATS = 3
#: hist must cut the fleet's total pickled bytes to at most this ratio.
HIST_MAX_BYTE_RATIO = 0.5
#: hist may lag exact wall-clock by at most this factor (noise bound).
HIST_WALL_TOLERANCE = 1.3

SHAPES = (
    ("wide", SyntheticSpec("hist-wide", 4_000, 48, 0, seed=11)),
    ("tall", SyntheticSpec("hist-tall", 30_000, 8, 0, seed=12)),
)

REPO_ROOT = Path(__file__).parents[1]


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_hist_split_mode(run_once):
    def experiment():
        rows = []
        for label, spec in SHAPES:
            table = generate(spec)
            system = SystemConfig(
                n_workers=3,
                compers_per_worker=2,
                column_replication=1,
                tau_subtree=table.n_rows * 2,
                tau_dfs=table.n_rows * 2,
            )
            options = RuntimeOptions(
                use_shm=False, message_timeout_seconds=120.0
            )

            def run(mode):
                config = TreeConfig(
                    max_depth=HIST_MAX_DEPTH,
                    split_mode=mode,
                    max_bins=HIST_MAX_BINS,
                )
                jobs = [
                    decision_tree_job(f"dt{i}", config.with_seed(i))
                    for i in range(HIST_N_JOBS)
                ]
                server = TreeServer(
                    system, backend="socket", runtime_options=options
                )
                start = time.perf_counter()
                report = server.fit(table, jobs)
                return time.perf_counter() - start, report

            walls = {"exact": [], "hist": []}
            reports = {}
            for _ in range(HIST_REPEATS):  # interleave to share drift
                for mode in ("exact", "hist"):
                    wall, report = run(mode)
                    walls[mode].append(wall)
                    reports[mode] = report

            def fleet_bytes(report):
                return report.cluster.transport["bytes_pickled"]

            exact_bytes = fleet_bytes(reports["exact"])
            hist_bytes = fleet_bytes(reports["hist"])
            rows.append(
                {
                    "shape": label,
                    "n_rows": table.n_rows,
                    "n_columns": len(table.schema.columns),
                    "exact_wall_seconds": min(walls["exact"]),
                    "hist_wall_seconds": min(walls["hist"]),
                    "hist_speedup": min(walls["exact"])
                    / min(walls["hist"]),
                    "exact_bytes_pickled": exact_bytes,
                    "hist_bytes_pickled": hist_bytes,
                    "byte_ratio": hist_bytes / exact_bytes,
                }
            )
        return {
            "max_bins": HIST_MAX_BINS,
            "n_jobs": HIST_N_JOBS,
            "max_depth": HIST_MAX_DEPTH,
            "repeats": HIST_REPEATS,
            "backend": "socket, shm off (inline rows)",
            "cores": _cores(),
            "runs": rows,
        }

    result = run_once(experiment)

    cores = result["cores"]
    lines = [
        f"Histogram split mode vs exact (socket, shm off, "
        f"{HIST_N_JOBS} trees, depth {HIST_MAX_DEPTH}, "
        f"{HIST_MAX_BINS} bins, min of {HIST_REPEATS}, {cores} core(s))",
        f"{'shape':>8s}{'rows':>8s}{'cols':>6s}{'exact wall':>12s}"
        f"{'hist wall':>12s}{'speedup':>9s}{'pickled MB':>16s}{'ratio':>7s}",
    ]
    for row in result["runs"]:
        lines.append(
            f"{row['shape']:>8s}"
            f"{row['n_rows']:>8,d}"
            f"{row['n_columns']:>6d}"
            f"{row['exact_wall_seconds']:>11.2f}s"
            f"{row['hist_wall_seconds']:>11.2f}s"
            f"{row['hist_speedup']:>8.2f}x"
            f"{row['exact_bytes_pickled'] / 1e6:>8.2f}"
            f"/{row['hist_bytes_pickled'] / 1e6:<.2f}"
            f"{row['byte_ratio']:>7.2f}"
        )
    save_result("hist_split_mode", "\n".join(lines))

    bench_path = REPO_ROOT / "BENCH_runtime.json"
    merged = (
        json.loads(bench_path.read_text()) if bench_path.exists() else {}
    )
    merged["hist"] = result
    bench_path.write_text(json.dumps(merged, indent=2) + "\n")

    # Deterministic headline: bucket codes instead of float64 column
    # slices must cut the fleet's pickled bytes by more than half on
    # both shapes.
    assert all(
        r["byte_ratio"] <= HIST_MAX_BYTE_RATIO for r in result["runs"]
    ), result
    # Wall clock: the byte savings are small at this scale, so on any
    # hardware hist must only stay within a noise bound of exact.
    assert all(
        r["hist_speedup"] >= 1.0 / HIST_WALL_TOLERANCE
        for r in result["runs"]
    ), result
