"""Ablation: hybrid BFS/DFS scheduling vs pure FIFO (BFS) and LIFO (DFS).

The design choice of Section III: inserting small nodes at the head of
``B_plan`` schedules CPU-bound subtree-tasks early, overlapping them with
communication-bound column-tasks.  Two facets are measured:

* **Mechanism** — the simulated time at which the *first subtree-task*
  reaches a worker.  Hybrid/LIFO dispatch CPU-bound work no later than pure
  FIFO, which queues small nodes behind the whole breadth frontier.
* **Makespan** — end-to-end training time per policy.  At laptop scale the
  compute:communication ratio is ~100x smaller than on the paper's
  multi-million-row tables, so the paper's wall-clock advantage compresses
  into the noise here (documented in EXPERIMENTS.md); the assertion is that
  hybrid is never meaningfully *worse*, while pure LIFO's parallelism loss
  on the breadth frontier shows as a measurable slowdown.
"""

from repro.core import SystemConfig, TreeConfig, TreeServer, random_forest_job
from repro.evaluation import load_dataset
from repro.evaluation.tables import format_table

from conftest import save_result

DATASETS = ["higgs_boson", "kdd99"]
POLICIES = ["fifo", "hybrid", "lifo"]


def test_ablation_scheduling(run_once):
    results: dict[str, dict[str, dict]] = {d: {} for d in DATASETS}

    def experiment():
        cfg = TreeConfig(max_depth=10)
        for dataset in DATASETS:
            train, test = load_dataset(dataset)
            base = SystemConfig(n_workers=8, compers_per_worker=4).scaled_to(
                train.n_rows
            )
            for policy in POLICIES:
                system = SystemConfig(
                    n_workers=8,
                    compers_per_worker=4,
                    tau_subtree=base.tau_subtree,
                    tau_dfs=base.tau_dfs,
                    scheduling_policy=policy,
                )
                job = random_forest_job("rf", 20, cfg, seed=10)
                report = TreeServer(system).fit(train, [job])
                results[dataset][policy] = {
                    "time": report.sim_seconds,
                    "first_subtree_ms": report.counters.extra.get(
                        "first_subtree_dispatch_us", 0
                    )
                    / 1e3,
                }

    run_once(experiment)

    rows = []
    for dataset in DATASETS:
        for policy in POLICIES:
            r = results[dataset][policy]
            rows.append(
                [
                    dataset,
                    policy,
                    f"{r['time']:.3f}",
                    f"{r['first_subtree_ms']:.2f}",
                ]
            )
    save_result(
        "ablation_scheduling",
        format_table(
            "Ablation — B_plan insertion policy (RF-20)",
            ["dataset", "policy", "time(s)", "first subtree-task (ms)"],
            rows,
        ),
    )

    for dataset in DATASETS:
        r = results[dataset]
        # Mechanism: hybrid dispatches CPU-bound subtree work no later than
        # pure FIFO.  (Pure LIFO is not asserted: a strict depth-first
        # descent reaches its first small node through a *sequential* chain
        # of column-task rounds, which pipelined breadth expansion can beat
        # in wall-clock.)
        assert (
            r["hybrid"]["first_subtree_ms"]
            <= r["fifo"]["first_subtree_ms"] + 1e-6
        )
        # Makespan: at laptop scale the compute:communication ratio is
        # ~100x below the paper's testbed, so policy effects compress to
        # noise (EXPERIMENTS.md discusses); they must stay within ~35%.
        best = min(v["time"] for v in r.values())
        worst = max(v["time"] for v in r.values())
        assert worst <= best * 1.35
