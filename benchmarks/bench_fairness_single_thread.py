"""The paper's "Fairness of Implementation" experiment.

Single-threaded, single-tree training: TreeServer run with one worker and
one comper (every task serialized on a single core, all communication
local) is *comparable* to single-thread MLlib — the paper measured 705.94s
vs 750.58s on Higgs-boson and 191.86s vs 157.34s on MS_LTRC, concluding
that TreeServer's parallel speedups come from system design, not from the
implementation language.
"""

from repro.core import SystemConfig, TreeConfig
from repro.evaluation import load_dataset, run_mllib, run_treeserver
from repro.evaluation.tables import format_table

from conftest import save_result


def test_fairness_single_thread(run_once):
    results = {}

    def experiment():
        cfg = TreeConfig(max_depth=10)
        for dataset in ("higgs_boson", "ms_ltrc"):
            train, test = load_dataset(dataset)
            ts = run_treeserver(
                dataset, train, test, cfg,
                system=SystemConfig(n_workers=1, compers_per_worker=1),
            )
            ml = run_mllib(dataset, train, test, cfg, single_thread=True)
            results[dataset] = (ts.sim_seconds, ml.sim_seconds)

    run_once(experiment)

    rows = [
        [d, f"{ts:.2f}", f"{ml:.2f}", f"{ml / ts:.2f}x"]
        for d, (ts, ml) in results.items()
    ]
    save_result(
        "fairness_single_thread",
        format_table(
            "Fairness — single-thread single-tree training",
            ["dataset", "TreeServer t(s)", "MLlib t(s)", "ratio"],
            rows,
        ),
    )

    # Comparable means within ~2.5x either way (the paper's ratios were
    # 0.94x and 1.22x); far tighter than the 3-10x parallel speedups.
    for dataset, (ts, ml) in results.items():
        assert 1 / 2.5 < ml / ts < 2.5
