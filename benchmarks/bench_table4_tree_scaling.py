"""Table IV(a,b): running time vs number of trees, TreeServer vs MLlib.

Paper shape: on both systems, time grows ~linearly with the tree count
(CPUs saturated), TreeServer several times faster throughout, and accuracy
essentially flat with more trees (bagging saturates).  The paper sweeps
500..2000 trees on MS_LTRC and c14B; we sweep 50..200 on their small-scale
stand-ins (same 1:2:3:4 ratio grid).
"""

from repro.core import TreeConfig
from repro.evaluation import (
    ExperimentRow,
    load_dataset,
    run_mllib,
    run_treeserver,
)
from repro.evaluation.tables import format_table

from conftest import save_result

DATASETS = ["ms_ltrc", "c14b"]
TREE_COUNTS = [50, 100, 150, 200]


def test_table4_tree_scaling(run_once):
    results: dict[str, dict[int, tuple[ExperimentRow, ExperimentRow]]] = {
        d: {} for d in DATASETS
    }

    def experiment():
        cfg = TreeConfig(max_depth=8)
        for dataset in DATASETS:
            train, test = load_dataset(dataset, small=True)
            for n_trees in TREE_COUNTS:
                ts = run_treeserver(
                    dataset, train, test, cfg, n_trees=n_trees, seed=5
                )
                ml = run_mllib(
                    dataset, train, test, cfg, n_trees=n_trees, seed=5
                )
                results[dataset][n_trees] = (ts, ml)

    run_once(experiment)

    for dataset in DATASETS:
        rows = []
        for n_trees in TREE_COUNTS:
            ts, ml = results[dataset][n_trees]
            rows.append(
                [
                    str(n_trees),
                    f"{ts.sim_seconds:.2f}",
                    ts.quality_str(),
                    f"{ml.sim_seconds:.2f}",
                    ml.quality_str(),
                ]
            )
        save_result(
            f"table4_trees_{dataset}",
            format_table(
                f"Table IV — time vs #trees on {dataset}",
                ["#trees", "TreeServer t(s)", "TS quality",
                 "MLlib t(s)", "MLlib quality"],
                rows,
            ),
        )

    for dataset in DATASETS:
        ts_times = [results[dataset][n][0].sim_seconds for n in TREE_COUNTS]
        ml_times = [results[dataset][n][1].sim_seconds for n in TREE_COUNTS]
        # TreeServer faster at every tree count.
        for ts_t, ml_t in zip(ts_times, ml_times):
            assert ts_t < ml_t
        # ~Linear growth: 4x the trees costs 2.5x-6x the time on both.
        assert 2.2 < ts_times[-1] / ts_times[0] < 6.5
        assert 2.2 < ml_times[-1] / ml_times[0] < 6.5
        # Accuracy flat with more trees (bagging saturates).
        accs = [results[dataset][n][0].quality for n in TREE_COUNTS]
        assert max(accs) - min(accs) < 0.06
