"""Table III(d): effect of the depth-first threshold ``tau_dfs``.

Paper shape: an interior optimum.  Too small, and early tree construction
has too few tasks for parallelism (everything BFS-queues behind the big
upper levels); too large, and small nodes monopolize the head so breadth
parallelism suffers.  The default ratio (tau_dfs = 8 x tau_D) sits near the
minimum.  (The paper sweeps 20k..150k on multi-million-row tables; we sweep
the same multiples of our scaled tau_D.)
"""

from repro.core import SystemConfig, TreeConfig, TreeServer, random_forest_job
from repro.evaluation import load_dataset
from repro.evaluation.tables import format_table

from conftest import save_result

DATASETS = ["allstate", "higgs_boson", "kdd99"]
#: Multiples of tau_subtree to sweep tau_dfs over (paper: 2x .. 15x of tau_D).
MULTIPLES = [1, 2, 8, 16, 64]


def test_table3d_tau_dfs(run_once):
    times: dict[str, list[float]] = {d: [] for d in DATASETS}

    def experiment():
        for dataset in DATASETS:
            train, test = load_dataset(dataset)
            base = SystemConfig(n_workers=8, compers_per_worker=4).scaled_to(
                train.n_rows
            )
            for multiple in MULTIPLES:
                system = SystemConfig(
                    n_workers=8,
                    compers_per_worker=4,
                    tau_subtree=base.tau_subtree,
                    tau_dfs=base.tau_subtree * multiple,
                )
                job = random_forest_job(
                    "rf", 20, TreeConfig(max_depth=10), seed=4
                )
                report = TreeServer(system).fit(train, [job])
                times[dataset].append(report.sim_seconds)

    run_once(experiment)

    rows = [
        [f"{m}x tau_D"] + [f"{times[d][i]:.3f}" for d in DATASETS]
        for i, m in enumerate(MULTIPLES)
    ]
    save_result(
        "table3d_tau_dfs",
        format_table(
            "Table III(d) — effect of tau_dfs (RF-20, time in sim seconds)",
            ["tau_dfs"] + DATASETS,
            rows,
        ),
    )

    for dataset in DATASETS:
        series = times[dataset]
        best = min(series)
        # The default region (8x) is within 15% of the best of the sweep.
        assert series[MULTIPLES.index(8)] <= best * 1.15
