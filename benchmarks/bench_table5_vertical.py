"""Table V: vertical scalability — compers/threads per machine.

Paper shape: both systems speed up with more threads per machine; the gains
flatten past ~4-8 threads (communication and task granularity bound the
rest); TreeServer remains several times faster than MLlib at every thread
count, thanks to its compute-heavy subtree-tasks.
"""

from repro.core import SystemConfig, TreeConfig, TreeServer, random_forest_job
from repro.baselines import PlanetConfig, PlanetTrainer
from repro.evaluation import load_dataset
from repro.evaluation.tables import format_table

from conftest import save_result

THREADS = [1, 2, 4, 8, 10]
N_TREES = 20


def test_table5_vertical(run_once):
    datasets = ["allstate", "higgs_boson"]
    ts_times: dict[str, list[float]] = {d: [] for d in datasets}
    ml_times: dict[str, list[float]] = {d: [] for d in datasets}

    def experiment():
        cfg = TreeConfig(max_depth=10)
        for dataset in datasets:
            train, test = load_dataset(dataset)
            for threads in THREADS:
                system = SystemConfig(
                    n_workers=15, compers_per_worker=threads
                ).scaled_to(train.n_rows)
                job = random_forest_job("rf", N_TREES, cfg, seed=6)
                report = TreeServer(system).fit(train, [job])
                ts_times[dataset].append(report.sim_seconds)
                planet = PlanetTrainer(
                    PlanetConfig(n_machines=15, threads_per_machine=threads)
                ).fit(train, cfg, n_trees=N_TREES, seed=6)
                ml_times[dataset].append(planet.sim_seconds)

    run_once(experiment)

    for dataset in datasets:
        rows = [
            [
                str(t),
                f"{ts_times[dataset][i]:.3f}",
                f"{ml_times[dataset][i]:.3f}",
            ]
            for i, t in enumerate(THREADS)
        ]
        save_result(
            f"table5_vertical_{dataset}",
            format_table(
                f"Table V — vertical scalability on {dataset} (RF-{N_TREES})",
                ["#threads", "TreeServer t(s)", "MLlib t(s)"],
                rows,
            ),
        )

    for dataset in datasets:
        ts = ts_times[dataset]
        ml = ml_times[dataset]
        # More threads never hurt; 1 -> 10 threads gives a clear speedup.
        assert ts[-1] <= ts[0]
        assert ts[0] / ts[-1] > 1.5
        assert ml[0] / ml[-1] > 1.2
        # Diminishing returns: the 8->10 step is weaker than the 1->2 step.
        gain_first = ts[0] / ts[1]
        gain_last = ts[3] / ts[4]
        assert gain_last < gain_first
        # TreeServer faster than MLlib at every thread count.
        for a, b in zip(ts, ml):
            assert a < b
