"""Serving throughput: flat-array kernel vs node-based descent (wall-clock).

Measures real prediction speed on a 100k-row batch through three engines:

* **per-row descent** — ``DecisionTree.predict_row`` in a Python loop, the
  textbook implementation (timed on a subsample, reported as rows/sec);
* **node batch** — the training-side ``_fill`` recursion, which batches
  rows per node but still walks Python tree objects;
* **flat kernel** — the serving compiler + level-synchronous NumPy
  traversal, the engine the registry/server/CLI deploy.

It also replays the batch through the micro-batching
:class:`~repro.serving.server.PredictionServer` in small client requests
and reports p50/p99 request latency — first in-process, then through the
multi-process serving fleet at 1, 2 and 4 workers (``fleet`` section:
rows/sec and p99 per worker count), then over real sockets through the
asyncio HTTP/JSON gateway (``gateway`` section: HTTP rows/sec and p99 vs
in-process, plus the hedging win-rate against an injected slow replica).
Besides the rendered table under ``benchmarks/results/``, it writes
machine-readable numbers to ``BENCH_serving.json`` at the repo root.

The asserted contracts: the flat kernel is >= 10x per-row descent; fleet
and HTTP predictions are bit-identical to in-process; hedged dispatch
against a deliberately slowed replica must cut p99 and win hedges; and —
hardware-aware — the fleet must *scale* only when this host actually has
the cores for it, while on a starved host (1 core) a 1-worker fleet must
stay within a bounded IPC overhead of the in-process server.
"""

import json
import os
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np

from repro.core import TreeConfig, train_tree
from repro.datasets import SyntheticSpec, generate
from repro.ensemble import ForestModel
from repro.serving import (
    BatchPredictor,
    Gateway,
    GatewayConfig,
    GatewayThread,
    PredictionServer,
    ServerConfig,
    compile_forest,
)

from conftest import save_result

N_ROWS = 100_000
N_TRAIN = 10_000
N_PER_ROW = 5_000  # per-row descent is timed on a subsample and scaled
N_TREES = 3
MAX_DEPTH = 8
REQUEST_ROWS = 16  # client request size replayed through the server

FLEET_WORKER_COUNTS = (1, 2, 4)
#: A 1-worker fleet pays one IPC hop per micro-batch; on a single-core
#: host it must still deliver at least this fraction of the in-process
#: server's throughput (the "bounded overhead" contract).  Steady state
#: measures ~0.2-0.25x on one core; the bound leaves headroom for noise.
FLEET_MIN_1WORKER_RATIO = 0.10
#: With cores to spare, 4 workers must actually beat 1 worker.
FLEET_MIN_SCALING = 1.2

GATEWAY_ROWS = 20_000  # HTTP replay subset (JSON encode/decode dominates)
GATEWAY_REQUEST_ROWS = 64
GATEWAY_CLIENTS = 4
#: The HTTP+JSON path pays serialization on every row; it must still
#: deliver at least this fraction of the in-process server's throughput.
GATEWAY_MIN_HTTP_RATIO = 0.01
#: Injected straggler for the hedging sub-benchmark.
HEDGE_SLOW_SECONDS = 0.25
HEDGE_AFTER_MS = 25.0
HEDGE_REQUESTS = 12
#: Hedging must cut p99 to at most this fraction of the unhedged run.
HEDGE_MAX_P99_RATIO = 0.8

REPO_ROOT = Path(__file__).parents[1]


class _SlowPredictor(BatchPredictor):
    """A replica whose kernel straggles — the hedging target."""

    def __init__(self, flat, delay_seconds):
        super().__init__(flat)
        self.delay_seconds = delay_seconds

    def predict_matrix(self, matrix, max_depth=None):
        time.sleep(self.delay_seconds)
        return super().predict_matrix(matrix, max_depth)

    def predict_proba_matrix(self, matrix, max_depth=None):
        time.sleep(self.delay_seconds)
        return super().predict_proba_matrix(matrix, max_depth)


def _http_predict(port, rows):
    """One JSON predict over the wire; returns (predictions, seconds)."""
    body = json.dumps({"rows": rows}).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/predict", data=body, method="POST"
    )
    start = time.perf_counter()
    with urllib.request.urlopen(request, timeout=120) as response:
        payload = json.loads(response.read())
    return payload["predictions"], time.perf_counter() - start


def _http_stats(port):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/stats", timeout=60
    ) as response:
        return json.loads(response.read())


def _cores() -> int:
    """Usable cores for this process (affinity-aware, cgroup-friendly)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_serving_throughput(run_once):
    spec = SyntheticSpec(
        name="serving",
        n_rows=N_ROWS,
        n_numeric=5,
        n_categorical=3,
        n_classes=3,
        planted_depth=5,
        noise=0.1,
        missing_rate=0.02,
        seed=7,
    )
    table = generate(spec)
    train = table.take(np.arange(N_TRAIN, dtype=np.int64))
    forest = ForestModel(
        [
            train_tree(train, TreeConfig(max_depth=MAX_DEPTH, seed=i), tree_id=i)
            for i in range(N_TREES)
        ]
    )
    predictor = BatchPredictor(compile_forest(forest))

    def experiment():
        # Flat kernel over the full batch.
        flat_preds, flat_seconds = _timed(lambda: predictor.predict(table))
        flat_rps = table.n_rows / flat_seconds

        # Node-based batch recursion (_fill) over the full batch.
        node_preds, node_seconds = _timed(lambda: forest.predict(table))
        node_rps = table.n_rows / node_seconds
        np.testing.assert_array_equal(flat_preds, node_preds)

        # Per-row Python descent, timed on a subsample.
        sample = table.take(np.arange(N_PER_ROW, dtype=np.int64))
        rows = [
            [col[i] for col in sample.columns] for i in range(sample.n_rows)
        ]

        def per_row():
            out = np.empty((sample.n_rows, forest.n_classes))
            for i, row in enumerate(rows):
                acc = np.zeros(forest.n_classes)
                for tree in forest.trees:
                    acc += tree.predict_row(row)
                out[i] = acc / forest.n_trees
            return np.argmax(out, axis=1)

        row_preds, row_seconds = _timed(per_row)
        row_rps = sample.n_rows / row_seconds
        np.testing.assert_array_equal(row_preds, flat_preds[:N_PER_ROW])

        # Micro-batching server replay in small client requests.
        matrix = np.column_stack(
            [np.asarray(col, dtype=np.float64) for col in table.columns]
        )
        config = ServerConfig(
            max_batch_size=1024,
            max_delay_seconds=0.002,
            queue_capacity=8192,
        )
        max_in_flight = 64  # closed loop: bound queueing delay, not load

        def replay(server):
            # Warm up before timing: fleet mode forks workers and
            # attaches the shm model on the first shard; that one-off
            # setup must not be billed to steady-state throughput.
            server.predict(matrix[:REQUEST_ROWS], timeout=60.0)
            server.stats.first_enqueue = None
            futures = []
            drained = 0
            for start in range(0, len(matrix), REQUEST_ROWS):
                if len(futures) - drained >= max_in_flight:
                    futures[drained].result(timeout=60.0)
                    drained += 1
                futures.append(
                    server.submit(matrix[start : start + REQUEST_ROWS])
                )
            blocks = [f.result(timeout=60.0) for f in futures]
            return np.concatenate(blocks), server.report()

        with PredictionServer(predictor, config) as server:
            served, report = replay(server)
        np.testing.assert_array_equal(served, flat_preds)

        # The same replay through the multi-process fleet, per worker
        # count.  Exact mode: every prediction must stay bit-identical.
        fleet = {}
        for n_workers in FLEET_WORKER_COUNTS:
            with PredictionServer(
                predictor, config, n_workers=n_workers
            ) as fleet_server:
                fleet_served, fleet_report = replay(fleet_server)
            np.testing.assert_array_equal(fleet_served, flat_preds)
            stats = fleet_report.to_dict()
            fleet[str(n_workers)] = {
                "rows_per_second": stats["rows_per_second"],
                "p50_latency_ms": stats["p50_latency_ms"],
                "p99_latency_ms": stats["p99_latency_ms"],
                "rejected": stats["rejected"],
                "respawns": stats["fleet"]["respawns"],
                "shm_bytes_mapped": max(
                    w["shm_bytes_mapped"] for w in stats["fleet"]["workers"]
                ),
            }

        # HTTP/JSON gateway replay: the same rows over real sockets,
        # several concurrent clients, exact parity required.
        flat = predictor.forest
        http_matrix = matrix[:GATEWAY_ROWS]
        chunks = [
            http_matrix[start : start + GATEWAY_REQUEST_ROWS].tolist()
            for start in range(0, len(http_matrix), GATEWAY_REQUEST_ROWS)
        ]
        gateway = Gateway(
            [PredictionServer(BatchPredictor(flat), config)],
            GatewayConfig(port=0),
        )
        runner = GatewayThread(gateway).start()
        try:
            _http_predict(runner.port, chunks[0])  # warm up (keep-alive off)
            results = [None] * len(chunks)
            latencies = [None] * len(chunks)

            def client(slot):
                for index in range(slot, len(chunks), GATEWAY_CLIENTS):
                    results[index], latencies[index] = _http_predict(
                        runner.port, chunks[index]
                    )

            threads = [
                threading.Thread(target=client, args=(slot,))
                for slot in range(GATEWAY_CLIENTS)
            ]
            http_started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            http_seconds = time.perf_counter() - http_started
        finally:
            runner.stop()
        http_preds = np.concatenate(
            [np.asarray(block) for block in results]
        )
        np.testing.assert_array_equal(http_preds, flat_preds[:GATEWAY_ROWS])
        http_rps = len(http_matrix) / http_seconds
        http_latencies_ms = np.asarray(latencies) * 1e3

        # Hedging sub-benchmark: two replicas, one deliberately slowed;
        # the hedged gateway must beat the unhedged control on p99.
        hedge_rows = matrix[:GATEWAY_REQUEST_ROWS].tolist()

        def hedge_run(hedge_enabled):
            gw = Gateway(
                [
                    PredictionServer(BatchPredictor(flat), config),
                    PredictionServer(
                        _SlowPredictor(flat, HEDGE_SLOW_SECONDS), config
                    ),
                ],
                GatewayConfig(
                    port=0, hedge=hedge_enabled, hedge_after_ms=HEDGE_AFTER_MS
                ),
            )
            run = GatewayThread(gw).start()
            try:
                samples = [
                    _http_predict(run.port, hedge_rows)[1]
                    for _ in range(HEDGE_REQUESTS)
                ]
                counters = _http_stats(run.port)["gateway"]
            finally:
                run.stop()
            return float(np.percentile(samples, 99) * 1e3), counters

        unhedged_p99_ms, _ = hedge_run(False)
        hedged_p99_ms, hedged_counters = hedge_run(True)
        hedges_fired = hedged_counters["hedges_fired"]
        hedge_wins = hedged_counters["hedge_wins"]

        return {
            "n_rows": table.n_rows,
            "n_trees": N_TREES,
            "max_depth": MAX_DEPTH,
            "cores": _cores(),
            "per_row_rows_per_second": row_rps,
            "node_batch_rows_per_second": node_rps,
            "flat_kernel_rows_per_second": flat_rps,
            "flat_vs_per_row_speedup": flat_rps / row_rps,
            "flat_vs_node_batch_speedup": node_rps and flat_rps / node_rps,
            "server": report.to_dict(),
            "fleet": fleet,
            "gateway": {
                "rows": len(http_matrix),
                "request_rows": GATEWAY_REQUEST_ROWS,
                "clients": GATEWAY_CLIENTS,
                "http_rows_per_second": http_rps,
                "http_p50_ms": float(np.percentile(http_latencies_ms, 50)),
                "http_p99_ms": float(np.percentile(http_latencies_ms, 99)),
                "in_process_ratio": http_rps
                / report.to_dict()["rows_per_second"],
                "hedge": {
                    "slow_replica_seconds": HEDGE_SLOW_SECONDS,
                    "hedge_after_ms": HEDGE_AFTER_MS,
                    "requests": HEDGE_REQUESTS,
                    "unhedged_p99_ms": unhedged_p99_ms,
                    "hedged_p99_ms": hedged_p99_ms,
                    "p99_speedup": unhedged_p99_ms / hedged_p99_ms,
                    "hedges_fired": hedges_fired,
                    "hedge_wins": hedge_wins,
                    "win_rate": hedge_wins / hedges_fired
                    if hedges_fired
                    else 0.0,
                },
            },
        }

    result = run_once(experiment)

    lines = [
        f"Serving throughput ({result['n_rows']:,} rows, "
        f"{N_TREES} trees, depth {MAX_DEPTH})",
        f"{'engine':24s}{'rows/sec':>14s}{'speedup':>10s}",
        f"{'per-row descent':24s}"
        f"{result['per_row_rows_per_second']:>14,.0f}{'1.0x':>10s}",
        f"{'node batch (_fill)':24s}"
        f"{result['node_batch_rows_per_second']:>14,.0f}"
        f"{result['node_batch_rows_per_second'] / result['per_row_rows_per_second']:>9.1f}x",
        f"{'flat kernel':24s}"
        f"{result['flat_kernel_rows_per_second']:>14,.0f}"
        f"{result['flat_vs_per_row_speedup']:>9.1f}x",
        "",
        f"server: {result['server']['n_requests']} requests of "
        f"{REQUEST_ROWS} rows -> {result['server']['n_batches']} batches "
        f"(avg {result['server']['avg_batch_rows']:.0f} rows), "
        f"{result['server']['rows_per_second']:,.0f} rows/s, "
        f"p50 {result['server']['p50_latency_ms']:.2f} ms, "
        f"p99 {result['server']['p99_latency_ms']:.2f} ms",
        "",
        f"fleet ({result['cores']} cores): "
        f"{'workers':>8s}{'rows/sec':>14s}{'p99 ms':>10s}",
    ]
    for n_workers in FLEET_WORKER_COUNTS:
        entry = result["fleet"][str(n_workers)]
        lines.append(
            f"{'':15s}{n_workers:>8d}"
            f"{entry['rows_per_second']:>14,.0f}"
            f"{entry['p99_latency_ms']:>10.2f}"
        )
    gw = result["gateway"]
    hedge = gw["hedge"]
    lines += [
        "",
        f"gateway (HTTP/JSON, {gw['clients']} clients, "
        f"{gw['request_rows']}-row requests): "
        f"{gw['http_rows_per_second']:,.0f} rows/s "
        f"({gw['in_process_ratio']:.2f}x in-process), "
        f"p50 {gw['http_p50_ms']:.2f} ms, p99 {gw['http_p99_ms']:.2f} ms",
        f"hedging (slow replica {hedge['slow_replica_seconds'] * 1e3:.0f} ms, "
        f"hedge after {hedge['hedge_after_ms']:.0f} ms): "
        f"p99 {hedge['unhedged_p99_ms']:.0f} -> {hedge['hedged_p99_ms']:.0f} "
        f"ms ({hedge['p99_speedup']:.1f}x), "
        f"wins {hedge['hedge_wins']}/{hedge['hedges_fired']} "
        f"(win rate {hedge['win_rate']:.2f})",
    ]
    save_result("serving_throughput", "\n".join(lines))
    (REPO_ROOT / "BENCH_serving.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )

    assert result["flat_vs_per_row_speedup"] >= 10.0
    assert result["server"]["rejected"] == 0
    for entry in result["fleet"].values():
        assert entry["rejected"] == 0
        assert entry["respawns"] == 0
        assert entry["shm_bytes_mapped"] > 0

    # Gateway contracts: the HTTP path serves exact predictions at a
    # bounded serialization overhead, and hedging measurably cuts p99
    # against the injected straggler.
    assert (
        result["gateway"]["in_process_ratio"] >= GATEWAY_MIN_HTTP_RATIO
    )
    hedge = result["gateway"]["hedge"]
    assert hedge["hedges_fired"] > 0
    assert hedge["hedge_wins"] > 0
    assert hedge["hedged_p99_ms"] < hedge["unhedged_p99_ms"] * HEDGE_MAX_P99_RATIO

    # Hardware-aware contracts: scaling only where the cores exist.
    in_process_rps = result["server"]["rows_per_second"]
    one_worker_rps = result["fleet"]["1"]["rows_per_second"]
    if result["cores"] >= 4:
        assert (
            result["fleet"]["4"]["rows_per_second"]
            >= one_worker_rps * FLEET_MIN_SCALING
        )
    else:
        # Starved host: sharding cannot speed anything up, so the
        # contract is bounded IPC overhead, not scaling.
        assert one_worker_rps >= in_process_rps * FLEET_MIN_1WORKER_RATIO
