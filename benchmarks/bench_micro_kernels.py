"""Microbenchmarks of the training kernels (real wall-clock, not simulated).

Unlike the table benchmarks, these measure the actual Python/NumPy speed of
the hot kernels — exact split search (the column-task inner loop), binned
split search (the MLlib baseline's), the weighted quantile sketch, and
whole-tree building — so kernel regressions are caught directly.
"""

import numpy as np
import pytest

from repro.baselines import WeightedQuantileSketch
from repro.baselines.histogram import (
    best_binned_numeric_split,
    bin_indices,
    equi_depth_thresholds,
)
from repro.core import TreeConfig, train_tree
from repro.core.impurity import Impurity
from repro.core.splits import (
    best_categorical_classification_split,
    best_categorical_regression_split,
    best_numeric_split,
)
from repro.datasets import SyntheticSpec, generate

N_ROWS = 50_000


@pytest.fixture(scope="module")
def numeric_data():
    rng = np.random.default_rng(0)
    values = rng.lognormal(size=N_ROWS)
    labels = (values > np.quantile(values, 0.7)).astype(np.int64)
    flip = rng.random(N_ROWS) < 0.1
    labels[flip] = 1 - labels[flip]
    return values, labels


def test_exact_numeric_split_kernel(benchmark, numeric_data):
    values, labels = numeric_data
    split = benchmark(
        best_numeric_split, 0, values, labels, Impurity.GINI, 2
    )
    assert split is not None


def test_binned_numeric_split_kernel(benchmark, numeric_data):
    values, labels = numeric_data
    thresholds = equi_depth_thresholds(values, 32)
    bins = bin_indices(values, thresholds)
    split = benchmark(
        best_binned_numeric_split,
        0, bins, thresholds, labels, Impurity.GINI, 2,
    )
    assert split is not None


def test_categorical_classification_kernel(benchmark):
    rng = np.random.default_rng(1)
    codes = rng.integers(0, 12, size=N_ROWS).astype(np.int32)
    labels = ((codes == 3) | (codes == 7)).astype(np.int64)
    split = benchmark(
        best_categorical_classification_split,
        0, codes, labels, 12, Impurity.GINI, 2,
    )
    assert split is not None


def test_categorical_regression_kernel(benchmark):
    rng = np.random.default_rng(2)
    codes = rng.integers(0, 12, size=N_ROWS).astype(np.int32)
    y = codes * 0.5 + rng.normal(0, 0.2, size=N_ROWS)
    split = benchmark(
        best_categorical_regression_split, 0, codes, y, 12
    )
    assert split is not None


def test_quantile_sketch_kernel(benchmark, numeric_data):
    values, _ = numeric_data
    weights = np.ones_like(values)

    def build():
        return WeightedQuantileSketch.from_arrays(values, weights).prune(128)

    sketch = benchmark(build)
    assert sketch.size <= 128


def test_whole_tree_build_kernel(benchmark):
    table = generate(
        SyntheticSpec(
            name="kernel", n_rows=8_000, n_numeric=10, n_categorical=0,
            n_classes=2, planted_depth=6, noise=0.1, seed=4,
        )
    )
    tree = benchmark.pedantic(
        train_tree, args=(table, TreeConfig(max_depth=8)),
        rounds=3, iterations=1,
    )
    assert tree.n_nodes > 10


# ----------------------------------------------------------------------
# scalar vs vectorized subtree kernel (repro.core.kernel)
# ----------------------------------------------------------------------
#: The vectorized kernel must beat the scalar builder by at least this
#: factor on its motivating workload (the wide subtree-task shape).  The
#: threshold is deliberately below the typically measured ~3.5-4x so
#: scheduler noise does not flake CI, but high enough that only a real
#: level-synchronous batching win passes.  Per-call NumPy overhead — the
#: thing the kernel amortizes — dominates on any CPU, so the floor holds
#: on a single core too (the kernel is single-threaded either way).
MIN_KERNEL_SPEEDUP = 3.0
#: Every measured shape (including the tall, few-column one, where there
#: is less per-node overhead to amortize) must at least clearly win.
MIN_KERNEL_SPEEDUP_EACH = 1.5
KERNEL_REPEATS = 2

#: Subtree-task shaped workloads: |D_x| at or below the paper's default
#: tau_D = 10k for the wide table, grown to tau_leaf = 1 (unbounded
#: depth) — the many-small-frontier-nodes regime subtree-tasks hit.
KERNEL_TABLES = {
    "wide": SyntheticSpec(
        name="kernel-wide", n_rows=10_000, n_numeric=50, n_categorical=0,
        n_classes=3, planted_depth=6, noise=0.3, seed=5,
    ),
    "tall": SyntheticSpec(
        name="kernel-tall", n_rows=30_000, n_numeric=8, n_categorical=0,
        n_classes=2, planted_depth=6, noise=0.3, seed=6,
    ),
}


def test_subtree_kernel_speedup(run_once):
    """Scalar vs vectorized subtree build, written to BENCH_runtime.json."""
    import json
    import os
    import time
    from pathlib import Path

    from repro.core.builder import build_subtree
    from repro.core.kernel import build_subtree_vectorized
    from repro.core.tree import node_to_dict

    from conftest import save_result

    def _cores() -> int:
        try:
            return len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            return os.cpu_count() or 1

    def experiment():
        runs = {}
        for label, spec in KERNEL_TABLES.items():
            table = generate(spec)
            rows = np.arange(table.n_rows, dtype=np.int64)
            config = TreeConfig(max_depth=None)
            walls = {}
            trees = {}
            for kernel, build in (
                ("scalar", build_subtree),
                ("vectorized", build_subtree_vectorized),
            ):
                best = float("inf")
                for _ in range(KERNEL_REPEATS):
                    start = time.perf_counter()
                    root = build(table, config, rows)
                    best = min(best, time.perf_counter() - start)
                walls[kernel] = best
                trees[kernel] = node_to_dict(root)
            # The speedup claim is only meaningful if the outputs match.
            assert trees["scalar"] == trees["vectorized"]
            runs[label] = {
                "n_rows": spec.n_rows,
                "n_columns": spec.n_numeric + spec.n_categorical,
                "n_nodes": _count(trees["scalar"]),
                "scalar_wall_seconds": walls["scalar"],
                "vectorized_wall_seconds": walls["vectorized"],
                "speedup": walls["scalar"] / walls["vectorized"],
            }
        return {
            "cores": _cores(),
            "repeats": KERNEL_REPEATS,
            "max_depth": None,
            "tau_leaf": 1,
            "parity": "node dicts bit-identical scalar vs vectorized",
            "best_speedup": max(r["speedup"] for r in runs.values()),
            "tables": runs,
        }

    def _count(node_dict) -> int:
        n = 1
        for side in ("left", "right"):
            child = node_dict.get(side)
            if child is not None:
                n += _count(child)
        return n

    result = run_once(experiment)

    lines = [
        f"Subtree training kernel: scalar vs vectorized "
        f"(max_depth=None, tau_leaf=1, {result['cores']} core(s), "
        f"min of {KERNEL_REPEATS})",
        f"{'table':>6s}{'rows':>8s}{'cols':>6s}{'nodes':>8s}"
        f"{'scalar':>10s}{'vector':>10s}{'speedup':>9s}",
    ]
    for label, row in result["tables"].items():
        lines.append(
            f"{label:>6s}{row['n_rows']:>8d}{row['n_columns']:>6d}"
            f"{row['n_nodes']:>8d}"
            f"{row['scalar_wall_seconds']:>9.2f}s"
            f"{row['vectorized_wall_seconds']:>9.2f}s"
            f"{row['speedup']:>8.2f}x"
        )
    lines.append("trees bit-identical on every run")
    save_result("subtree_kernel", "\n".join(lines))

    repo_root = Path(__file__).parents[1]
    bench_path = repo_root / "BENCH_runtime.json"
    merged = (
        json.loads(bench_path.read_text()) if bench_path.exists() else {}
    )
    merged["kernel"] = result
    bench_path.write_text(json.dumps(merged, indent=2) + "\n")

    assert result["best_speedup"] >= MIN_KERNEL_SPEEDUP
    for row in result["tables"].values():
        assert row["speedup"] >= MIN_KERNEL_SPEEDUP_EACH
