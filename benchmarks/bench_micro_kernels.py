"""Microbenchmarks of the training kernels (real wall-clock, not simulated).

Unlike the table benchmarks, these measure the actual Python/NumPy speed of
the hot kernels — exact split search (the column-task inner loop), binned
split search (the MLlib baseline's), the weighted quantile sketch, and
whole-tree building — so kernel regressions are caught directly.
"""

import numpy as np
import pytest

from repro.baselines import WeightedQuantileSketch
from repro.baselines.histogram import (
    best_binned_numeric_split,
    bin_indices,
    equi_depth_thresholds,
)
from repro.core import TreeConfig, train_tree
from repro.core.impurity import Impurity
from repro.core.splits import (
    best_categorical_classification_split,
    best_categorical_regression_split,
    best_numeric_split,
)
from repro.datasets import SyntheticSpec, generate

N_ROWS = 50_000


@pytest.fixture(scope="module")
def numeric_data():
    rng = np.random.default_rng(0)
    values = rng.lognormal(size=N_ROWS)
    labels = (values > np.quantile(values, 0.7)).astype(np.int64)
    flip = rng.random(N_ROWS) < 0.1
    labels[flip] = 1 - labels[flip]
    return values, labels


def test_exact_numeric_split_kernel(benchmark, numeric_data):
    values, labels = numeric_data
    split = benchmark(
        best_numeric_split, 0, values, labels, Impurity.GINI, 2
    )
    assert split is not None


def test_binned_numeric_split_kernel(benchmark, numeric_data):
    values, labels = numeric_data
    thresholds = equi_depth_thresholds(values, 32)
    bins = bin_indices(values, thresholds)
    split = benchmark(
        best_binned_numeric_split,
        0, bins, thresholds, labels, Impurity.GINI, 2,
    )
    assert split is not None


def test_categorical_classification_kernel(benchmark):
    rng = np.random.default_rng(1)
    codes = rng.integers(0, 12, size=N_ROWS).astype(np.int32)
    labels = ((codes == 3) | (codes == 7)).astype(np.int64)
    split = benchmark(
        best_categorical_classification_split,
        0, codes, labels, 12, Impurity.GINI, 2,
    )
    assert split is not None


def test_categorical_regression_kernel(benchmark):
    rng = np.random.default_rng(2)
    codes = rng.integers(0, 12, size=N_ROWS).astype(np.int32)
    y = codes * 0.5 + rng.normal(0, 0.2, size=N_ROWS)
    split = benchmark(
        best_categorical_regression_split, 0, codes, y, 12
    )
    assert split is not None


def test_quantile_sketch_kernel(benchmark, numeric_data):
    values, _ = numeric_data
    weights = np.ones_like(values)

    def build():
        return WeightedQuantileSketch.from_arrays(values, weights).prune(128)

    sketch = benchmark(build)
    assert sketch.size <= 128


def test_whole_tree_build_kernel(benchmark):
    table = generate(
        SyntheticSpec(
            name="kernel", n_rows=8_000, n_numeric=10, n_categorical=0,
            n_classes=2, planted_depth=6, noise=0.1, seed=4,
        )
    )
    tree = benchmark.pedantic(
        train_tree, args=(table, TreeConfig(max_depth=8)),
        rounds=3, iterations=1,
    )
    assert tree.n_nodes > 10
