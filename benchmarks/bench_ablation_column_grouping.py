"""Ablation: the Fig. 13 column-grouping on (simulated) HDFS.

The paper found one-file-per-column layouts dominated by DFS connection
setup when MGS inflates tables to thousands of columns; grouping columns
into few large files amortizes it.  This ablation stores the same wide
table at several group sizes and compares estimated worker load times plus
actual connection counts.
"""

import numpy as np

from repro.cluster import CostModel
from repro.data.schema import ColumnKind, ColumnSpec, ProblemKind, TableSchema
from repro.data.table import DataTable
from repro.hdfs import LayoutConfig, SimHdfs, TableLayout
from repro.evaluation.tables import format_table

from conftest import save_result

N_COLUMNS = 600  # MGS-scale width
N_ROWS = 2_000
GROUP_SIZES = [1, 10, 50, 200]


def _wide_table() -> DataTable:
    rng = np.random.default_rng(0)
    schema = TableSchema(
        tuple(ColumnSpec(f"f{i}", ColumnKind.NUMERIC) for i in range(N_COLUMNS)),
        ColumnSpec("label", ColumnKind.CATEGORICAL, ("a", "b")),
        ProblemKind.CLASSIFICATION,
    )
    return DataTable(
        schema,
        [rng.normal(size=N_ROWS) for _ in range(N_COLUMNS)],
        rng.integers(0, 2, size=N_ROWS).astype(np.int32),
    )


def test_ablation_column_grouping(run_once):
    cost = CostModel()
    results = {}

    def experiment():
        table = _wide_table()
        for group in GROUP_SIZES:
            fs = SimHdfs()
            layout = TableLayout(
                fs,
                f"/data/g{group}",
                LayoutConfig(columns_per_group=group, rows_per_group=1024),
            )
            layout.save(table)
            fs.reset_stats()
            layout.load_column_group(0)
            connections = fs.stats.connections_opened
            load_seconds = layout.estimated_load_seconds(
                cost.hdfs_connection_seconds,
                cost.bandwidth_bytes_per_second,
            )
            n_files = len(fs.listdir(f"/data/g{group}"))
            results[group] = (n_files, connections, load_seconds)

    run_once(experiment)

    rows = [
        [str(g), str(results[g][0]), str(results[g][1]), f"{results[g][2]:.3f}"]
        for g in GROUP_SIZES
    ]
    save_result(
        "ablation_column_grouping",
        format_table(
            f"Ablation — Fig.13 column grouping ({N_COLUMNS} cols x {N_ROWS} rows)",
            ["cols/group", "#files", "conns per group-load", "full load est(s)"],
            rows,
        ),
    )

    times = [results[g][2] for g in GROUP_SIZES]
    # Strictly fewer connections and monotonically faster loads as groups
    # grow; one-file-per-column is many times slower than 50-col groups.
    for a, b in zip(times, times[1:]):
        assert b < a
    assert times[0] / times[GROUP_SIZES.index(50)] > 3.0
