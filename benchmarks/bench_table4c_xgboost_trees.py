"""Table IV(c): XGBoost accuracy and time vs number of boosted trees.

Paper shape: boosting keeps improving accuracy as trees are added (unlike
bagging, which saturates — Table IV(a,b)), but time grows linearly and is
expensive, so "we cannot test too many trees".
"""

from repro.baselines import XGBoostConfig
from repro.evaluation import ExperimentRow, load_dataset, run_xgboost, sweep_table

from conftest import save_result

DATASETS = ["higgs_boson", "kdd99"]
ROUNDS = [10, 20, 40, 80, 100]


def test_table4c_xgboost_trees(run_once):
    results: dict[str, list[tuple[int, ExperimentRow]]] = {d: [] for d in DATASETS}

    def experiment():
        for dataset in DATASETS:
            train, test = load_dataset(dataset, small=True)
            for n_rounds in ROUNDS:
                row = run_xgboost(
                    dataset,
                    train,
                    test,
                    XGBoostConfig(n_rounds=n_rounds, max_depth=4, eta=0.1),
                )
                results[dataset].append((n_rounds, row))

    run_once(experiment)

    for dataset in DATASETS:
        save_result(
            f"table4c_xgboost_{dataset}",
            sweep_table(
                f"Table IV(c) — XGBoost #trees sweep on {dataset}",
                "#trees",
                results[dataset],
            ),
        )

    for dataset in DATASETS:
        rows = results[dataset]
        times = [r.sim_seconds for _, r in rows]
        accs = [r.quality for _, r in rows]
        # Time grows ~linearly with rounds (sequential dependency).
        assert times[-1] / times[0] > 5.0
        # Accuracy keeps improving with more trees (boosting's signature);
        # the best accuracy is reached in the later half of the sweep.
        assert accs[-1] > accs[0]
        assert max(accs) in accs[2:]
