"""Ablation: Section V — delegate-worker rows vs master relaying.

TreeServer never routes row-id sets through the master: child tasks fetch
``I_x`` directly from the parent task's delegate worker.  The counterfactual
(PLANET/Yggdrasil-style master relaying or broadcast) would serialize all
row-id traffic through the master's single NIC.

This ablation measures the actual row-id bytes on the data plane of a real
run and computes the extra serialized time the master's send channel would
need to carry them — the "outbound communication bottleneck" of Section V —
compared against what the master actually sent.
"""

from repro.core import SystemConfig, TreeConfig, TreeServer, random_forest_job
from repro.evaluation import load_dataset
from repro.evaluation.tables import format_table

from conftest import save_result


def test_ablation_row_relay(run_once):
    results = {}

    def experiment():
        for dataset in ("higgs_boson", "kdd99"):
            train, test = load_dataset(dataset)
            system = SystemConfig(n_workers=8, compers_per_worker=4).scaled_to(
                train.n_rows
            )
            job = random_forest_job("rf", 20, TreeConfig(max_depth=10), seed=11)
            report = TreeServer(system).fit(train, [job])
            kinds = report.cluster.bytes_by_kind
            row_bytes = kinds.get("row_response", 0)
            master_bytes = sum(
                kinds.get(k, 0)
                for k in ("column_plan", "subtree_plan", "split_confirm",
                          "task_delete", "expect_fetches")
            )
            bandwidth = system.bandwidth_bytes_per_second
            results[dataset] = {
                "run_seconds": report.sim_seconds,
                "master_bytes": master_bytes,
                "row_bytes": row_bytes,
                "master_send_seconds": master_bytes / bandwidth,
                "relay_send_seconds": (master_bytes + row_bytes) / bandwidth,
            }

    run_once(experiment)

    rows = []
    for dataset, r in results.items():
        rows.append(
            [
                dataset,
                f"{r['run_seconds']:.3f}",
                f"{r['master_bytes'] / 1e6:.2f}",
                f"{r['row_bytes'] / 1e6:.2f}",
                f"{r['master_send_seconds']:.3f}",
                f"{r['relay_send_seconds']:.3f}",
            ]
        )
    save_result(
        "ablation_row_relay",
        format_table(
            "Ablation — master NIC load: delegate rows vs hypothetical relay",
            ["dataset", "run t(s)", "master MB", "row-id MB",
             "master send(s)", "with relay(s)"],
            rows,
        ),
    )

    for dataset, r in results.items():
        # Row-id traffic dwarfs the master's control traffic ...
        assert r["row_bytes"] > 3 * r["master_bytes"]
        # ... and relaying it would make the master's send channel alone a
        # large fraction of (or exceed) the entire current run time.
        assert r["relay_send_seconds"] > 0.5 * r["run_seconds"]
