"""Table VIII(a,b): accuracy and time vs maximum tree depth ``d_max``.

Paper shape: accuracy keeps improving with deeper trees (models are not
overfitting at these depths) for both a single tree and a 20-tree forest;
time grows with depth then flattens as nodes become pure.
"""

from repro.core import TreeConfig
from repro.evaluation import ExperimentRow, load_dataset, run_treeserver, sweep_table

from conftest import save_result

DEPTHS = [2, 4, 6, 8, 10, 12]


def test_table8ab_dmax(run_once):
    single: list[tuple[int, ExperimentRow]] = []
    forest: list[tuple[int, ExperimentRow]] = []

    def experiment():
        train, test = load_dataset("higgs_boson")
        for dmax in DEPTHS:
            single.append(
                (dmax, run_treeserver(
                    "higgs_boson", train, test, TreeConfig(max_depth=dmax)
                ))
            )
        for dmax in DEPTHS:
            forest.append(
                (dmax, run_treeserver(
                    "higgs_boson", train, test, TreeConfig(max_depth=dmax),
                    n_trees=20, seed=8,
                ))
            )

    run_once(experiment)

    save_result(
        "table8a_dmax_single",
        sweep_table(
            "Table VIII(a) — dmax sweep, 1 tree, higgs_boson", "dmax", single
        ),
    )
    save_result(
        "table8b_dmax_forest",
        sweep_table(
            "Table VIII(b) — dmax sweep, 20 trees, higgs_boson", "dmax", forest
        ),
    )

    for series in (single, forest):
        accs = [row.quality for _, row in series]
        # Deeper is better overall: the deepest settings beat the shallow
        # ones clearly, and no late-depth collapse (no overfitting).
        assert max(accs[-2:]) > accs[0] + 0.02
        assert accs[-1] > accs[0]
        assert min(accs[2:]) >= max(accs[:1])  # depth >= 6 beats depth 2
