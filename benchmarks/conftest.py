"""Shared benchmark helpers.

Every benchmark here regenerates one table of the paper's Section VIII
(same rows and column meanings) at laptop scale, prints it, saves it under
``benchmarks/results/`` and asserts the paper's qualitative *shape* (who
wins, how trends move).  Times are simulated seconds from the shared cost
model; quality is measured on held-out test splits of the Table-I-shaped
synthetic datasets.

Each test takes the ``benchmark`` fixture so ``pytest --benchmark-only``
runs the suite; the measured callable runs exactly once (these are
experiment harnesses, not microbenchmarks).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark."""

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

    return runner


def save_result(name: str, text: str) -> None:
    """Persist a rendered table for EXPERIMENTS.md and print it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
