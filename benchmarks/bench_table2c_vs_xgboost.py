"""Table II(c): TreeServer 100-tree forest vs XGBoost 100 boosted trees.

Paper shape: XGBoost wins accuracy on roughly half the datasets (second-
order boosting), but is many times slower — boosted trees are sequentially
dependent while TreeServer trains its forest's trees together.  Run at
small-dataset scale so 100 real boosting rounds stay tractable in Python.
"""

from repro.baselines import XGBoostConfig
from repro.core import TreeConfig
from repro.evaluation import (
    ComparisonTable,
    load_dataset,
    run_treeserver,
    run_xgboost,
)

from conftest import save_result

DATASETS = ["allstate", "higgs_boson", "susy", "loan_m1"]
N_TREES = 100


def test_table2c_vs_xgboost(run_once):
    table = ComparisonTable(
        "Table II(c) — TreeServer RF(100) vs XGBoost(100 rounds)",
        ["TreeServer", "XGBoost"],
    )

    def experiment():
        for dataset in DATASETS:
            train, test = load_dataset(dataset, small=True)
            table.add(
                run_treeserver(
                    dataset, train, test, TreeConfig(max_depth=10),
                    n_trees=N_TREES, seed=2,
                )
            )
            table.add(
                run_xgboost(
                    dataset, train, test,
                    XGBoostConfig(n_rounds=N_TREES, max_depth=6),
                )
            )
        return table

    run_once(experiment)
    save_result("table2c_vs_xgboost", table.render())

    slowdowns = {
        d: table.speedup(d, "TreeServer", "XGBoost") for d in DATASETS
    }
    save_result(
        "table2c_slowdowns",
        "\n".join(f"{d}: XGBoost {s:.1f}x slower" for d, s in slowdowns.items()),
    )
    # Boosting's sequential dependency: XGBoost is slower everywhere, and
    # by a large factor somewhere (paper: up to ~56x).
    assert all(s > 1.5 for s in slowdowns.values())
    assert max(slowdowns.values()) >= 8.0
    # Boosting's accuracy potential: XGBoost wins quality on >= 1 dataset.
    xgb_wins = 0
    for dataset in DATASETS:
        ts = table.rows[dataset]["TreeServer"]
        xgb = table.rows[dataset]["XGBoost"]
        if ts.quality_metric == "rmse":
            xgb_wins += xgb.quality < ts.quality
        else:
            xgb_wins += xgb.quality > ts.quality
    assert xgb_wins >= 1
