"""Table II(b): 20-tree random forest (sqrt(|A|) columns per tree).

Paper shape: TreeServer stays several times faster than MLlib when training
a whole forest — tree-level parallelism (many node-centric tasks across all
20 trees at once) keeps its advantage; accuracy is comparable, with exact
splits ahead in most cases.
"""

from repro.core import TreeConfig
from repro.evaluation import (
    ComparisonTable,
    load_dataset,
    run_mllib,
    run_treeserver,
)

from conftest import save_result

DATASETS = ["allstate", "higgs_boson", "ms_ltrc", "covtype", "poker", "loan_m1"]
N_TREES = 20


def test_table2b_forest20(run_once):
    cfg = TreeConfig(max_depth=10)
    table = ComparisonTable(
        "Table II(b) — random forest, 20 trees, sqrt(|A|) columns",
        ["TreeServer", "MLlib (Parallel)", "MLlib (Single Thread)"],
    )

    def experiment():
        for dataset in DATASETS:
            train, test = load_dataset(dataset)
            table.add(
                run_treeserver(dataset, train, test, cfg, n_trees=N_TREES, seed=1)
            )
            table.add(
                run_mllib(dataset, train, test, cfg, n_trees=N_TREES, seed=1)
            )
            table.add(
                run_mllib(
                    dataset, train, test, cfg, n_trees=N_TREES, seed=1,
                    single_thread=True,
                )
            )
        return table

    run_once(experiment)
    save_result("table2b_forest20", table.render())

    speedups = {
        d: table.speedup(d, "TreeServer", "MLlib (Parallel)") for d in DATASETS
    }
    save_result(
        "table2b_speedups",
        "\n".join(f"{d}: {s:.1f}x" for d, s in speedups.items()),
    )
    assert all(s > 1.0 for s in speedups.values())
    assert max(speedups.values()) >= 4.0
    # Forest accuracy from both systems is close (same model class); the
    # two must agree within a few points on every dataset.
    for dataset in DATASETS:
        ts = table.rows[dataset]["TreeServer"]
        ml = table.rows[dataset]["MLlib (Parallel)"]
        if ts.quality_metric == "accuracy":
            assert abs(ts.quality - ml.quality) < 0.12
