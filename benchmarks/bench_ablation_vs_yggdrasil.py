"""Ablation: TreeServer vs a Yggdrasil-style exact columnar baseline.

Yggdrasil shares TreeServer's column partitioning and exact splits but
keeps top-down level-by-level construction with a master-broadcast
bitvector (paper Section II).  Comparing the two isolates TreeServer's
*task-based scheduling* contribution from its *column partitioning*:

* **Single tree** — roughly comparable (both exact and columnar; the level
  barrier vs task overheads trade off at this scale).
* **Forest** — TreeServer trains all trees' tasks concurrently through its
  tree pool, while the level-synchronous system runs trees one after
  another: a multi-x gap, matching the paper's positioning.

Both systems produce the *identical exact model* (asserted).
"""

from repro.baselines import YggdrasilConfig, YggdrasilTrainer
from repro.core import (
    SystemConfig,
    TreeConfig,
    TreeServer,
    decision_tree_job,
    random_forest_job,
    trees_equal,
)
from repro.evaluation import load_dataset
from repro.evaluation.tables import format_table

from conftest import save_result


def test_ablation_vs_yggdrasil(run_once):
    results = {}

    def experiment():
        cfg = TreeConfig(max_depth=10)
        for dataset in ("higgs_boson", "ms_ltrc"):
            train, test = load_dataset(dataset)
            system = SystemConfig(n_workers=15, compers_per_worker=10).scaled_to(
                train.n_rows
            )
            ygg = YggdrasilTrainer(
                YggdrasilConfig(n_machines=15, threads_per_machine=10)
            )
            ts_single = TreeServer(system).fit(
                train, [decision_tree_job("dt", cfg)]
            )
            yg_single = ygg.fit(train, cfg)
            ts_forest = TreeServer(system).fit(
                train, [random_forest_job("rf", 20, cfg, seed=13)]
            )
            yg_forest = ygg.fit(train, cfg, n_trees=20, seed=13)
            assert trees_equal(ts_single.tree("dt"), yg_single.tree())
            results[dataset] = {
                "ts_single": ts_single.sim_seconds,
                "yg_single": yg_single.sim_seconds,
                "ts_forest": ts_forest.sim_seconds,
                "yg_forest": yg_forest.sim_seconds,
            }

    run_once(experiment)

    rows = []
    for dataset, r in results.items():
        rows.append(
            [
                dataset,
                f"{r['ts_single']:.3f}",
                f"{r['yg_single']:.3f}",
                f"{r['ts_forest']:.3f}",
                f"{r['yg_forest']:.3f}",
            ]
        )
    save_result(
        "ablation_vs_yggdrasil",
        format_table(
            "Ablation — TreeServer vs Yggdrasil-style exact columnar",
            ["dataset", "TS 1-tree(s)", "Ygg 1-tree(s)",
             "TS RF-20(s)", "Ygg RF-20(s)"],
            rows,
        ),
    )

    for dataset, r in results.items():
        # Single tree: the two exact columnar systems are within ~3x.
        ratio = r["yg_single"] / r["ts_single"]
        assert 1 / 3.0 < ratio < 3.0
        # Forests: the tree pool's cross-tree task parallelism gives
        # TreeServer a clear multi-x win over sequential level-sync trees.
        assert r["yg_forest"] / r["ts_forest"] > 3.0
