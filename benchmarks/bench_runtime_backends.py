"""Runtime backends: wall-clock of the simulator vs real worker processes.

Trains the same forest on the same table through both runtimes —
``backend="sim"`` (the whole protocol and all worker compute in one
process, interleaved by the discrete-event engine) and ``backend="mp"``
(one OS process per worker) — at 1, 2 and 4 workers, and verifies the
parity guarantee along the way: every run must produce bit-identical
trees.

The workload is shaped to be *compute-dominated*, the regime the mp
backend exists for: ``tau_subtree`` is set so each tree's root splits as
a column task and both children train as fat CPU-bound subtree tasks,
and columns are fully replicated so subtree fetches are local.  Under
that shape the simulator executes all workers' numpy sequentially while
the mp backend spreads it across cores.

The asserted contract is hardware-aware, because wall-clock parallelism
is a property of the machine, not the code: with >= 2 usable cores, mp
must beat sim at >= 2 workers; on a single-core host (CI containers,
including the one this reproduction grows in) mp cannot possibly win —
every process shares the one core and the backend can only add overhead
— so the assertion degrades to a bounded-overhead check.  The JSON
written to ``BENCH_runtime.json`` records ``cores`` so a reader can tell
which regime produced the numbers.

A second experiment measures the shared-memory data plane
(``RuntimeOptions.use_shm``) against the pickle-everything baseline on a
*data-plane-heavy* shape — ``tau_subtree = 1`` so every node is a column
task and full replication so every split fans its row-id sets out to all
workers.  The headline, deterministic metric is per-worker
``bytes_pickled``: descriptors instead of arrays must cut it by well
over half.  Wall clock is reported min-of-N with the same hardware
awareness: on one core the copies saved are a small slice of a fully
serialized run, so shm must merely stay within a noise-bound factor of
the baseline; with real cores it must win somewhere.
"""

import json
import os
import time
from pathlib import Path

from repro import (
    SystemConfig,
    TreeConfig,
    TreeServer,
    random_forest_job,
    trees_equal,
)
from repro.datasets import SyntheticSpec, generate
from repro.runtime import RuntimeOptions

from conftest import save_result

N_ROWS = 24_000
N_TREES = 8
MAX_DEPTH = 10
WORKER_COUNTS = (1, 2, 4)
#: mp may cost at most this factor over sim when no parallelism exists.
MAX_SINGLE_CORE_OVERHEAD = 2.0

# -- shared-memory data-plane experiment --------------------------------
DP_N_ROWS = 48_000
DP_N_TREES = 4
DP_MAX_DEPTH = 8
DP_REPEATS = 3
#: shm must cut per-worker pickled bytes by at least this factor.
MIN_PICKLED_REDUCTION = 0.5
#: On a single core the shm path may lag the baseline by at most this
#: factor (scheduler noise dwarfs the few-ms copy savings there).
SHM_SINGLE_CORE_TOLERANCE = 1.15

REPO_ROOT = Path(__file__).parents[1]


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _system(n_workers: int, n_rows: int) -> SystemConfig:
    # Subtree-heavy shape: root = column task, children = CPU-bound
    # subtree tasks; full replication keeps subtree fetches local.
    return SystemConfig(
        n_workers=n_workers,
        compers_per_worker=2,
        tau_subtree=n_rows // 2,
        tau_dfs=n_rows // 2,
        column_replication=n_workers,
    )


def test_runtime_backends(run_once):
    spec = SyntheticSpec(
        name="runtime-bench",
        n_rows=N_ROWS,
        n_numeric=12,
        n_categorical=4,
        n_classes=5,
        planted_depth=6,
        noise=0.1,
        missing_rate=0.02,
        seed=3,
    )
    table = generate(spec)
    jobs = [random_forest_job("rf", N_TREES, TreeConfig(max_depth=MAX_DEPTH), seed=1)]
    options = RuntimeOptions(message_timeout_seconds=120.0)

    def experiment():
        rows = []
        reference = None
        for n_workers in WORKER_COUNTS:
            system = _system(n_workers, table.n_rows)
            walls = {}
            for backend in ("sim", "mp"):
                server = TreeServer(
                    system, backend=backend, runtime_options=options
                )
                start = time.perf_counter()
                report = server.fit(table, jobs)
                walls[backend] = time.perf_counter() - start
                trees = report.trees("rf")
                if reference is None:
                    reference = trees
                else:  # the model is invariant to backend and scale
                    assert all(
                        trees_equal(a, b) for a, b in zip(reference, trees)
                    )
            rows.append(
                {
                    "n_workers": n_workers,
                    "sim_wall_seconds": walls["sim"],
                    "mp_wall_seconds": walls["mp"],
                    "mp_speedup": walls["sim"] / walls["mp"],
                }
            )
        return {
            "n_rows": table.n_rows,
            "n_trees": N_TREES,
            "max_depth": MAX_DEPTH,
            "cores": _cores(),
            "parity": "bit-identical across all runs",
            "runs": rows,
        }

    result = run_once(experiment)

    cores = result["cores"]
    lines = [
        f"Runtime backends ({result['n_rows']:,} rows, {N_TREES} trees, "
        f"depth {MAX_DEPTH}, {cores} core(s))",
        f"{'workers':>8s}{'sim wall':>12s}{'mp wall':>12s}{'mp speedup':>12s}",
    ]
    for row in result["runs"]:
        lines.append(
            f"{row['n_workers']:>8d}"
            f"{row['sim_wall_seconds']:>11.2f}s"
            f"{row['mp_wall_seconds']:>11.2f}s"
            f"{row['mp_speedup']:>11.2f}x"
        )
    lines.append("")
    lines.append(
        "models bit-identical across backends and worker counts"
        + ("" if cores >= 2 else "; single core: mp overhead bounded, "
           "no parallel speedup physically possible")
    )
    save_result("runtime_backends", "\n".join(lines))
    bench_path = REPO_ROOT / "BENCH_runtime.json"
    merged = (
        json.loads(bench_path.read_text()) if bench_path.exists() else {}
    )
    merged.update(result)  # keep the dataplane section, if present
    bench_path.write_text(json.dumps(merged, indent=2) + "\n")

    multi_worker = [r for r in result["runs"] if r["n_workers"] >= 2]
    if cores >= 2:
        # The tentpole claim: real processes beat the sequential simulator
        # as soon as there is real hardware to spread over.
        assert any(r["mp_speedup"] > 1.0 for r in multi_worker), result
    else:
        # One core: no parallelism exists to harvest; the backend must at
        # least keep its messaging overhead within a constant factor.
        assert all(
            r["mp_speedup"] >= 1.0 / MAX_SINGLE_CORE_OVERHEAD
            for r in multi_worker
        ), result


def test_shm_data_plane(run_once):
    spec = SyntheticSpec(
        name="dataplane-bench",
        n_rows=DP_N_ROWS,
        n_numeric=8,
        n_categorical=2,
        n_classes=4,
        planted_depth=7,
        noise=0.25,
        missing_rate=0.0,
        seed=7,
    )
    table = generate(spec)
    jobs = [
        random_forest_job(
            "rf", DP_N_TREES, TreeConfig(max_depth=DP_MAX_DEPTH), seed=1
        )
    ]

    def system(n_workers: int) -> SystemConfig:
        # Data-plane-heavy shape: tau_subtree = 1 keeps every node a
        # column task, and full replication fans each node's row-id sets
        # out to every worker — the traffic the shm arena exists for.
        return SystemConfig(
            n_workers=n_workers,
            compers_per_worker=2,
            tau_subtree=1,
            tau_dfs=1,
            column_replication=n_workers,
        )

    def fit_once(n_workers: int, use_shm: bool):
        server = TreeServer(
            system(n_workers),
            backend="mp",
            runtime_options=RuntimeOptions(
                message_timeout_seconds=120.0, use_shm=use_shm
            ),
        )
        start = time.perf_counter()
        report = server.fit(table, jobs)
        return time.perf_counter() - start, report

    def experiment():
        reference = (
            TreeServer(system(2), backend="sim").fit(table, jobs).trees("rf")
        )
        rows = []
        for n_workers in WORKER_COUNTS:
            walls = {True: [], False: []}
            transports = {}
            for _ in range(DP_REPEATS):  # interleaved: fair under noise
                for use_shm in (True, False):
                    wall, report = fit_once(n_workers, use_shm)
                    walls[use_shm].append(wall)
                    transports[use_shm] = report.cluster.transport
                    trees = report.trees("rf")
                    assert all(
                        trees_equal(a, b) for a, b in zip(reference, trees)
                    )

            def per_worker_pickled(transport) -> float:
                counters = transport["per_worker"].values()
                return sum(c["bytes_pickled"] for c in counters) / len(
                    transport["per_worker"]
                )

            on, off = transports[True], transports[False]
            rows.append(
                {
                    "n_workers": n_workers,
                    "shm_wall_seconds": min(walls[True]),
                    "baseline_wall_seconds": min(walls[False]),
                    "shm_speedup": min(walls[False]) / min(walls[True]),
                    "shm_bytes_pickled_per_worker": per_worker_pickled(on),
                    "baseline_bytes_pickled_per_worker": per_worker_pickled(
                        off
                    ),
                    "pickled_ratio": per_worker_pickled(on)
                    / per_worker_pickled(off),
                    "shm_bytes_mapped": on["shm_bytes_mapped"],
                    "coalesced_batches": on["coalesced_batches"],
                }
            )
        return {
            "n_rows": table.n_rows,
            "n_trees": DP_N_TREES,
            "max_depth": DP_MAX_DEPTH,
            "repeats": DP_REPEATS,
            "cores": _cores(),
            "parity": "bit-identical across sim, mp+shm, mp baseline",
            "runs": rows,
        }

    result = run_once(experiment)

    cores = result["cores"]
    lines = [
        f"Shared-memory data plane ({result['n_rows']:,} rows, "
        f"{DP_N_TREES} trees, depth {DP_MAX_DEPTH}, column tasks only, "
        f"min of {DP_REPEATS}, {cores} core(s))",
        f"{'workers':>8s}{'shm wall':>12s}{'base wall':>12s}"
        f"{'speedup':>10s}{'pickled/worker':>18s}{'ratio':>8s}",
    ]
    for row in result["runs"]:
        lines.append(
            f"{row['n_workers']:>8d}"
            f"{row['shm_wall_seconds']:>11.2f}s"
            f"{row['baseline_wall_seconds']:>11.2f}s"
            f"{row['shm_speedup']:>9.2f}x"
            f"{row['shm_bytes_pickled_per_worker'] / 1e6:>8.2f}"
            f"/{row['baseline_bytes_pickled_per_worker'] / 1e6:<.2f}MB"
            f"{row['pickled_ratio']:>8.2f}"
        )
    save_result("shm_data_plane", "\n".join(lines))

    bench_path = REPO_ROOT / "BENCH_runtime.json"
    merged = (
        json.loads(bench_path.read_text()) if bench_path.exists() else {}
    )
    merged["dataplane"] = result
    bench_path.write_text(json.dumps(merged, indent=2) + "\n")

    # Deterministic headline: descriptors instead of arrays must cut each
    # worker's pickled bytes by more than half, at every worker count.
    assert all(
        r["pickled_ratio"] <= MIN_PICKLED_REDUCTION for r in result["runs"]
    ), result
    if cores >= 2:
        # Real cores: less serialized copying must show up somewhere as
        # wall-clock, and never cost wall-clock anywhere.
        assert any(r["shm_speedup"] >= 1.0 for r in result["runs"]), result
        assert all(
            r["shm_speedup"] >= 1.0 / SHM_SINGLE_CORE_TOLERANCE
            for r in result["runs"]
        ), result
    else:
        # One core: every byte moves through the same CPU either way, so
        # only a noise-bounded regression would indicate a real problem.
        assert all(
            r["shm_speedup"] >= 1.0 / SHM_SINGLE_CORE_TOLERANCE
            for r in result["runs"]
        ), result
