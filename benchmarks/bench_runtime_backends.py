"""Runtime backends: wall-clock of the simulator vs real worker processes.

Trains the same forest on the same table through both runtimes —
``backend="sim"`` (the whole protocol and all worker compute in one
process, interleaved by the discrete-event engine) and ``backend="mp"``
(one OS process per worker) — at 1, 2 and 4 workers, and verifies the
parity guarantee along the way: every run must produce bit-identical
trees.

The workload is shaped to be *compute-dominated*, the regime the mp
backend exists for: ``tau_subtree`` is set so each tree's root splits as
a column task and both children train as fat CPU-bound subtree tasks,
and columns are fully replicated so subtree fetches are local.  Under
that shape the simulator executes all workers' numpy sequentially while
the mp backend spreads it across cores.

The asserted contract is hardware-aware, because wall-clock parallelism
is a property of the machine, not the code: with >= 2 usable cores, mp
must beat sim at >= 2 workers; on a single-core host (CI containers,
including the one this reproduction grows in) mp cannot possibly win —
every process shares the one core and the backend can only add overhead
— so the assertion degrades to a bounded-overhead check.  The JSON
written to ``BENCH_runtime.json`` records ``cores`` so a reader can tell
which regime produced the numbers.
"""

import json
import os
import time
from pathlib import Path

from repro import (
    SystemConfig,
    TreeConfig,
    TreeServer,
    random_forest_job,
    trees_equal,
)
from repro.datasets import SyntheticSpec, generate
from repro.runtime import RuntimeOptions

from conftest import save_result

N_ROWS = 24_000
N_TREES = 8
MAX_DEPTH = 10
WORKER_COUNTS = (1, 2, 4)
#: mp may cost at most this factor over sim when no parallelism exists.
MAX_SINGLE_CORE_OVERHEAD = 2.0

REPO_ROOT = Path(__file__).parents[1]


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _system(n_workers: int, n_rows: int) -> SystemConfig:
    # Subtree-heavy shape: root = column task, children = CPU-bound
    # subtree tasks; full replication keeps subtree fetches local.
    return SystemConfig(
        n_workers=n_workers,
        compers_per_worker=2,
        tau_subtree=n_rows // 2,
        tau_dfs=n_rows // 2,
        column_replication=n_workers,
    )


def test_runtime_backends(run_once):
    spec = SyntheticSpec(
        name="runtime-bench",
        n_rows=N_ROWS,
        n_numeric=12,
        n_categorical=4,
        n_classes=5,
        planted_depth=6,
        noise=0.1,
        missing_rate=0.02,
        seed=3,
    )
    table = generate(spec)
    jobs = [random_forest_job("rf", N_TREES, TreeConfig(max_depth=MAX_DEPTH), seed=1)]
    options = RuntimeOptions(message_timeout_seconds=120.0)

    def experiment():
        rows = []
        reference = None
        for n_workers in WORKER_COUNTS:
            system = _system(n_workers, table.n_rows)
            walls = {}
            for backend in ("sim", "mp"):
                server = TreeServer(
                    system, backend=backend, runtime_options=options
                )
                start = time.perf_counter()
                report = server.fit(table, jobs)
                walls[backend] = time.perf_counter() - start
                trees = report.trees("rf")
                if reference is None:
                    reference = trees
                else:  # the model is invariant to backend and scale
                    assert all(
                        trees_equal(a, b) for a, b in zip(reference, trees)
                    )
            rows.append(
                {
                    "n_workers": n_workers,
                    "sim_wall_seconds": walls["sim"],
                    "mp_wall_seconds": walls["mp"],
                    "mp_speedup": walls["sim"] / walls["mp"],
                }
            )
        return {
            "n_rows": table.n_rows,
            "n_trees": N_TREES,
            "max_depth": MAX_DEPTH,
            "cores": _cores(),
            "parity": "bit-identical across all runs",
            "runs": rows,
        }

    result = run_once(experiment)

    cores = result["cores"]
    lines = [
        f"Runtime backends ({result['n_rows']:,} rows, {N_TREES} trees, "
        f"depth {MAX_DEPTH}, {cores} core(s))",
        f"{'workers':>8s}{'sim wall':>12s}{'mp wall':>12s}{'mp speedup':>12s}",
    ]
    for row in result["runs"]:
        lines.append(
            f"{row['n_workers']:>8d}"
            f"{row['sim_wall_seconds']:>11.2f}s"
            f"{row['mp_wall_seconds']:>11.2f}s"
            f"{row['mp_speedup']:>11.2f}x"
        )
    lines.append("")
    lines.append(
        "models bit-identical across backends and worker counts"
        + ("" if cores >= 2 else "; single core: mp overhead bounded, "
           "no parallel speedup physically possible")
    )
    save_result("runtime_backends", "\n".join(lines))
    (REPO_ROOT / "BENCH_runtime.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )

    multi_worker = [r for r in result["runs"] if r["n_workers"] >= 2]
    if cores >= 2:
        # The tentpole claim: real processes beat the sequential simulator
        # as soon as there is real hardware to spread over.
        assert any(r["mp_speedup"] > 1.0 for r in multi_worker), result
    else:
        # One core: no parallelism exists to harvest; the backend must at
        # least keep its messaging overhead within a constant factor.
        assert all(
            r["mp_speedup"] >= 1.0 / MAX_SINGLE_CORE_OVERHEAD
            for r in multi_worker
        ), result
