"""Table VI: horizontal scalability — machine count, CPU rate, send Mbps.

Paper shape: time falls as machines grow 4 -> 12, flattening toward 15 as
the send channels saturate; CPU rate per machine decreases as the same work
spreads wider; MLlib improves less and stays slower.

Dataset note: the paper ran Allstate and Higgs-boson (5-13 M rows).  At
our ~1000x smaller scale only some (dataset, tree-count) pairs have enough
per-machine work for the paper's shape to survive: single trees on
allstate and the 20-tree forest on the largest dataset (loan_y2).  The
others are latency-dominated (e.g. single-tree loan_y2 at 4 machines is
row-id-traffic-bound and loses to the histogram baseline) — a scale
artifact documented in EXPERIMENTS.md.
"""

from repro.baselines import PlanetConfig, PlanetTrainer
from repro.core import (
    SystemConfig,
    TreeConfig,
    TreeServer,
    decision_tree_job,
    random_forest_job,
)
from repro.evaluation import load_dataset
from repro.evaluation.tables import format_table

from conftest import save_result

MACHINES = [4, 8, 12, 15]
CASES = [("allstate", 1), ("loan_y2", 20)]


def test_table6_horizontal(run_once):
    results: dict[tuple[str, int, int], dict] = {}

    def experiment():
        cfg = TreeConfig(max_depth=10)
        for dataset, n_trees in CASES:
            train, test = load_dataset(dataset)
            for machines in MACHINES:
                system = SystemConfig(
                    n_workers=machines, compers_per_worker=10
                ).scaled_to(train.n_rows)
                if n_trees == 1:
                    job = decision_tree_job("m", cfg)
                else:
                    job = random_forest_job("m", n_trees, cfg, seed=7)
                report = TreeServer(system).fit(train, [job])
                planet = PlanetTrainer(
                    PlanetConfig(n_machines=machines, threads_per_machine=10)
                ).fit(train, cfg, n_trees=n_trees, seed=7)
                results[(dataset, n_trees, machines)] = {
                    "ts_time": report.sim_seconds,
                    "cpu": report.cluster.avg_worker_cpu_percent,
                    "send": report.cluster.max_worker_send_mbps,
                    "ml_time": planet.sim_seconds,
                }

    run_once(experiment)

    for dataset, n_trees in CASES:
        rows = []
        for machines in MACHINES:
            r = results[(dataset, n_trees, machines)]
            rows.append(
                [
                    str(machines),
                    f"{r['ts_time']:.3f}",
                    f"{r['cpu']:.0f}%",
                    f"{r['send']:.0f}",
                    f"{r['ml_time']:.3f}",
                ]
            )
        save_result(
            f"table6_horizontal_{dataset}_{n_trees}trees",
            format_table(
                f"Table VI — horizontal scalability, {dataset}, "
                f"{n_trees} tree(s)",
                ["#machines", "TS time(s)", "TS CPU", "TS send(Mbps)",
                 "MLlib time(s)"],
                rows,
            ),
        )

    for dataset, n_trees in CASES:
        times = [
            results[(dataset, n_trees, m)]["ts_time"] for m in MACHINES
        ]
        # Scaling out helps: 4 -> 15 machines is a clear win.
        assert times[-1] < times[0]
        # Diminishing returns: the 12 -> 15 step gains less than 4 -> 8.
        assert times[2] / times[3] < times[0] / times[1] + 0.25
        # TreeServer beats MLlib at every scale.
        for m in MACHINES:
            r = results[(dataset, n_trees, m)]
            assert r["ts_time"] < r["ml_time"]
        # Per-machine CPU rate decreases as work spreads across machines.
        cpus = [results[(dataset, n_trees, m)]["cpu"] for m in MACHINES]
        assert cpus[-1] < cpus[0]
