"""Table III(a-c): effect of the tree pool size ``n_pool``.

Paper shape: with a 20-tree forest, running time drops steeply from
``n_pool = 1`` (trees trained one after another — no cross-tree task
parallelism) to ``n_pool = 20``, with diminishing returns once the CPUs
saturate; peak memory grows only mildly because data columns, not task
state, dominate worker memory.
"""

from repro.core import SystemConfig, TreeConfig, TreeServer, random_forest_job
from repro.evaluation import ExperimentRow, load_dataset, sweep_table
from repro.evaluation.metrics import accuracy, rmse
from repro.data.schema import ProblemKind

from conftest import save_result

DATASETS = ["allstate", "higgs_boson", "kdd99"]
POOL_SIZES = [1, 5, 10, 20]
N_TREES = 20


def test_table3_npool(run_once):
    all_rows: dict[str, list[tuple[int, ExperimentRow]]] = {}

    def experiment():
        for dataset in DATASETS:
            train, test = load_dataset(dataset, small=True)
            rows = []
            for n_pool in POOL_SIZES:
                system = SystemConfig(
                    n_workers=8, compers_per_worker=4, n_pool=n_pool
                ).scaled_to(train.n_rows)
                job = random_forest_job(
                    "rf", N_TREES, TreeConfig(max_depth=10), seed=3
                )
                report = TreeServer(system).fit(train, [job])
                model = report.forest("rf")
                if train.problem is ProblemKind.CLASSIFICATION:
                    quality, metric = accuracy(
                        test.target, model.predict(test)
                    ), "accuracy"
                else:
                    quality, metric = rmse(
                        test.target, model.predict(test)
                    ), "rmse"
                rows.append(
                    (
                        n_pool,
                        ExperimentRow(
                            system="TreeServer",
                            dataset=dataset,
                            sim_seconds=report.sim_seconds,
                            quality=quality,
                            quality_metric=metric,
                            peak_memory_mb=report.cluster.avg_peak_memory_bytes
                            / 1e6,
                        ),
                    )
                )
            all_rows[dataset] = rows

    run_once(experiment)

    rendered = []
    for dataset in DATASETS:
        rows = all_rows[dataset]
        mem = [f"{row.peak_memory_mb:.3f}" for _, row in rows]
        rendered.append(
            sweep_table(
                f"Table III — effect of n_pool on {dataset} (RF-{N_TREES})",
                "n_pool",
                rows,
                extra_columns={"mem(MB)": mem},
            )
        )
    save_result("table3_npool", "\n\n".join(rendered))

    for dataset in DATASETS:
        rows = all_rows[dataset]
        times = [row.sim_seconds for _, row in rows]
        mems = [row.peak_memory_mb for _, row in rows]
        # Strong win from 1 -> 20 (paper: ~6x on Allstate).
        assert times[0] / times[-1] > 2.0
        # Monotone non-increasing trend (allow tiny wiggle).
        for a, b in zip(times, times[1:]):
            assert b <= a * 1.10
        # Memory grows only mildly with the pool.
        assert mems[-1] <= mems[0] * 30 + 1.0
        # The model itself is pool-invariant: quality identical.
        qualities = {round(row.quality, 12) for _, row in rows}
        assert len(qualities) == 1
