"""Table VIII(c,d): accuracy and time vs the per-tree column ratio |C|/|A|.

Paper shape: training time grows with the ratio (more columns to scan per
node); accuracy rises from 20% and then flattens well before 100% — a
moderate column sample per tree is already sufficient (and on Allstate the
RMSE barely moves at all).
"""

from repro.core import ColumnSampling, TreeConfig
from repro.evaluation import ExperimentRow, load_dataset, run_treeserver, sweep_table

from conftest import save_result

RATIOS = [0.2, 0.4, 0.6, 0.8, 1.0]
N_TREES = 20


def test_table8cd_column_ratio(run_once):
    results: dict[str, list[tuple[str, ExperimentRow]]] = {}

    def experiment():
        for dataset in ("allstate", "higgs_boson"):
            train, test = load_dataset(dataset)
            rows = []
            for ratio in RATIOS:
                cfg = TreeConfig(
                    max_depth=10,
                    column_sampling=ColumnSampling.RATIO,
                    column_ratio=ratio,
                )
                rows.append(
                    (
                        f"{int(ratio * 100)}%",
                        run_treeserver(
                            dataset, train, test, cfg, n_trees=N_TREES, seed=9
                        ),
                    )
                )
            results[dataset] = rows

    run_once(experiment)

    for dataset, rows in results.items():
        save_result(
            f"table8cd_ratio_{dataset}",
            sweep_table(
                f"Table VIII(c,d) — column ratio sweep on {dataset} "
                f"(RF-{N_TREES})",
                "|C|/|A|",
                rows,
            ),
        )

    for dataset, rows in results.items():
        times = [r.sim_seconds for _, r in rows]
        # More columns per tree cost more time.
        assert times[-1] > times[0] * 1.3
        qualities = [r.quality for _, r in rows]
        metric = rows[0][1].quality_metric
        if metric == "rmse":
            # Regression: more columns never hurt; RMSE improves (or holds)
            # monotonically.  (The paper's Allstate is *flat* across the
            # sweep thanks to extreme real-data redundancy our synthetic
            # stand-in only partially reproduces — see EXPERIMENTS.md.)
            for a, b in zip(qualities, qualities[1:]):
                assert b <= a * 1.05
            assert qualities[-1] < qualities[0]
        else:
            # Higgs-style: accuracy rises from 20% then levels off; the
            # 60%+ region is within a few points of the best.
            best = max(qualities)
            assert qualities[0] <= best  # 20% is not the best
            assert min(qualities[2:]) >= best - 0.06
