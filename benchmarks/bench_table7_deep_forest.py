"""Table VII: deep forest on MNIST-like images — per-step time + accuracy.

Paper shape: MGS forest training dominates the time (win3/5/7 train),
extraction steps are cheap row-parallel jobs, each cascade layer trains
quickly, and test accuracy is high from CF0 onward, improving over the
first layers.  Forests here train as real TreeServer jobs on the simulated
cluster, so the per-step seconds are simulated cluster time.
"""

from repro.core import SystemConfig
from repro.datasets import train_test_images
from repro.deepforest import (
    CascadeConfig,
    DeepForest,
    MGSConfig,
    TreeServerBackend,
)
from repro.evaluation.tables import format_table

from conftest import save_result


def test_table7_deep_forest(run_once):
    holder = {}

    def experiment():
        train, test = train_test_images(300, 150, seed=11)
        system = SystemConfig(n_workers=15, compers_per_worker=10)
        model = DeepForest(
            mgs_config=MGSConfig(
                window_sizes=(3, 5, 7),
                stride=5,
                n_forests=2,
                trees_per_forest=8,
                seed=2,
            ),
            cascade_config=CascadeConfig(
                n_layers=6, n_forests=2, trees_per_forest=8, seed=2
            ),
            backend=TreeServerBackend(system),
            system=system,
        )
        holder["report"] = model.fit_report(train, test)

    run_once(experiment)
    report = holder["report"]

    rows = []
    for step in report.steps:
        rows.append(
            [
                step.step,
                f"{step.train_seconds:.3f}",
                f"{step.test_seconds:.3f}" if step.test_seconds else "-",
                f"{step.test_accuracy:.2%}" if step.test_accuracy is not None else "-",
            ]
        )
    save_result(
        "table7_deep_forest",
        format_table(
            "Table VII — deep forest steps (simulated seconds)",
            ["step", "train(s)", "test(s)", "test accuracy"],
            rows,
        ),
    )

    cf_accs = [
        s.test_accuracy for s in report.steps if s.test_accuracy is not None
    ]
    assert len(cf_accs) == 6
    # High accuracy from the first cascade layer, improving over layers.
    assert cf_accs[0] > 0.7
    assert max(cf_accs) >= cf_accs[0]
    assert max(cf_accs) > 0.85
    # MGS training dominates cascade training (windows see far more rows).
    mgs_train = sum(
        s.train_seconds for s in report.steps if s.step.startswith("win")
        and s.step.endswith("train")
    )
    cf_train = sum(
        s.train_seconds for s in report.steps
        if s.step.startswith("CF") and s.step.endswith("train")
    )
    assert mgs_train > cf_train
