"""The Hadoop-ecosystem workflow: ``put`` a CSV, load by columns, train.

Demonstrates the paper's Fig. 13 data organization on the simulated DFS:
the dedicated ``put`` program streams a CSV into column-group x row-group
files; a TreeServer worker then loads whole column-groups with few, large
reads, while a row-parallel job (like deep forest's feature extraction)
loads row partitions from the same files.  The connection accounting shows
why grouping matters — the effect the paper measured when thousands of
per-column files made HDFS connection time dominate.

Run:  python examples/hdfs_workflow.py
"""

import os
import tempfile

from repro import SystemConfig, TreeConfig, TreeServer, decision_tree_job
from repro.data import write_csv
from repro.datasets import dataset_spec, generate
from repro.evaluation import accuracy
from repro.hdfs import LayoutConfig, SimHdfs, TableLayout, put_csv


def main() -> None:
    table = generate(dataset_spec("kdd99", small=True))
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = os.path.join(tmp, "kdd99.csv")
        write_csv(table, csv_path)
        print(f"wrote {os.path.getsize(csv_path) / 1e3:.0f} kB CSV")

        fs = SimHdfs()
        layout = put_csv(
            fs,
            csv_path,
            "/data/kdd99",
            target="label",
            layout=LayoutConfig(columns_per_group=8, rows_per_group=256),
        )
        files = fs.listdir("/data/kdd99")
        print(f"put: {len(files)} files on DFS "
              f"({fs.stats.bytes_written / 1e3:.0f} kB written)")

    # A worker loads one whole column-group (its training partition)...
    fs.reset_stats()
    columns = layout.load_column_group(0)
    print(f"column-group 0: {len(columns)} whole columns via "
          f"{fs.stats.connections_opened} connections")

    # ...while a row-parallel job loads one row partition.
    fs.reset_stats()
    rows = layout.load_row_group(0)
    print(f"row-group 0: {rows.n_rows} rows via "
          f"{fs.stats.connections_opened} connections")

    # Grouping vs per-column files: estimated worker load time.
    grouped = layout.estimated_load_seconds(5e-3, 125e6)
    fs2 = SimHdfs()
    ungrouped = TableLayout(
        fs2, "/flat", LayoutConfig(columns_per_group=1, rows_per_group=256)
    )
    loaded = layout.load_table()
    ungrouped.save(loaded)
    flat = ungrouped.estimated_load_seconds(5e-3, 125e6)
    print(f"estimated load: grouped {grouped * 1e3:.1f} ms vs "
          f"one-file-per-column {flat * 1e3:.1f} ms "
          f"({flat / grouped:.1f}x slower)")

    # Finally: train on the table loaded back from the DFS.
    train, test = loaded.split_train_test(0.25, seed=1)
    system = SystemConfig(n_workers=6, compers_per_worker=2).scaled_to(
        train.n_rows
    )
    report = TreeServer(system).fit(
        train, [decision_tree_job("dt", TreeConfig(max_depth=8))]
    )
    acc = accuracy(test.target, report.tree("dt").predict(test))
    print(f"trained from DFS data: sim {report.sim_seconds:.2f}s, "
          f"test accuracy {acc:.2%}")


if __name__ == "__main__":
    main()
