"""An end-to-end ensemble pipeline: train, publish to DFS, predict, boost.

Shows TreeServer as the "building block for training larger tree ensembles
in a Hadoop analytics workflow" (paper Section I):

1. train a random forest as a TreeServer job on the simulated cluster;
2. publish the model to the simulated DFS and run the paper's row-parallel
   distributed prediction job against it;
3. train a gradient-boosted model round-by-round on TreeServer (the
   boosting dependency pattern of Section III) and compare quality.

Run:  python examples/ensemble_pipeline.py
"""

from repro import SystemConfig, TreeConfig, TreeServer, random_forest_job
from repro.core.predictor import publish_and_predict
from repro.datasets import dataset_spec, train_test
from repro.ensemble import GBDTConfig, TreeServerGBDT
from repro.evaluation import accuracy
from repro.hdfs import SimHdfs


def main() -> None:
    train, test = train_test(dataset_spec("loan_m1"))
    system = SystemConfig(n_workers=8, compers_per_worker=4).scaled_to(
        train.n_rows
    )
    print(f"dataset: {train.n_rows} train rows, {train.n_columns} columns")

    # 1. Random forest as a TreeServer job.
    report = TreeServer(system).fit(
        train,
        [random_forest_job("rf", 20, TreeConfig(max_depth=10), seed=11)],
    )
    forest = report.forest("rf")
    print(f"\nforest: trained 20 trees in {report.sim_seconds:.3f} simulated s "
          f"({forest.total_nodes()} total nodes)")

    # 2. Publish to the DFS; run the distributed prediction job.
    fs = SimHdfs()
    prediction = publish_and_predict(
        fs, "/models/loan_rf", "loan_rf", forest, test, system
    )
    acc_rf = accuracy(test.target, prediction.predictions)
    print(f"distributed prediction: {prediction.sim_seconds:.3f}s simulated "
          f"(model load {prediction.model_load_seconds:.3f}s, "
          f"traversal {prediction.traversal_seconds:.3f}s), "
          f"accuracy {acc_rf:.2%}")

    # 3. Gradient boosting: one TreeServer job per round, sequentially
    # dependent — the paper's boosting scheduling pattern.
    gbdt = TreeServerGBDT(
        GBDTConfig(n_rounds=15, max_depth=4, learning_rate=0.3, seed=11),
        system,
    ).fit(train)
    acc_gbdt = accuracy(test.target, gbdt.model.predict(test))
    print(f"\nGBDT: {gbdt.model.n_trees} sequential rounds, "
          f"{gbdt.sim_seconds:.3f}s simulated total "
          f"(mean {1e3 * gbdt.sim_seconds / gbdt.model.n_trees:.1f} ms/round), "
          f"accuracy {acc_gbdt:.2%}")
    print("\nnote the structural contrast: the forest's 20 trees trained "
          "concurrently; the GBDT's rounds could not.")


if __name__ == "__main__":
    main()
