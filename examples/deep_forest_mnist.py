"""Deep forest on MNIST-like images — the paper's Section VII case study.

Builds the full pipeline of Fig. 11: multi-grained scanning with three
window sizes re-represents each image through per-grain forests, then a
cascade of forest layers refines the prediction.  Per-step timings mirror
the rows of the paper's Table VII.

Run:  python examples/deep_forest_mnist.py
"""

from repro.datasets import train_test_images
from repro.deepforest import CascadeConfig, DeepForest, MGSConfig
from repro.evaluation import accuracy


def main() -> None:
    # Scaled-down MNIST stand-in: 400 train / 200 test synthetic digits
    # (the paper itself used only 10% of MNIST to keep training tractable).
    train, test = train_test_images(400, 200, seed=11)
    print(f"{train.n_images} train / {test.n_images} test images, "
          f"{train.side}x{train.side}, {train.n_classes} classes")

    model = DeepForest(
        mgs_config=MGSConfig(
            window_sizes=(3, 5, 7),
            stride=5,  # coarser stride than the paper keeps this quick
            n_forests=2,
            trees_per_forest=10,
            seed=3,
        ),
        cascade_config=CascadeConfig(
            n_layers=4, n_forests=2, trees_per_forest=10, seed=3
        ),
    )
    report = model.fit_report(train, test)

    print(f"\n{'step':14s} {'train(s)':>9s} {'test(s)':>8s} {'accuracy':>9s}")
    for step in report.steps:
        test_s = f"{step.test_seconds:.3f}" if step.test_seconds else "-"
        acc = (
            f"{step.test_accuracy:.2%}" if step.test_accuracy is not None else "-"
        )
        print(f"{step.step:14s} {step.train_seconds:9.3f} {test_s:>8s} {acc:>9s}")

    predictions = model.predict(test)
    print(f"\nfinal test accuracy: {accuracy(test.labels, predictions):.2%}")


if __name__ == "__main__":
    main()
