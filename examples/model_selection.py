"""Hyperparameter search: many candidate models, one TreeServer run.

The paper's Section III motivates the tree pool with model selection: many
models with different hyperparameters train *together*, so node-centric
tasks from all candidates keep the cluster's cores busy.  This example
grid-searches depth and leaf-size for a single tree and a forest, compares
the pooled run against training candidates one at a time, and reports the
winner on a validation split.

Run:  python examples/model_selection.py
"""

from repro import SystemConfig, TreeConfig
from repro.datasets import dataset_spec, train_test
from repro.evaluation import accuracy, expand_grid, grid_search


def main() -> None:
    train, test = train_test(dataset_spec("kdd99"))
    system = SystemConfig(n_workers=8, compers_per_worker=4)

    candidates = expand_grid(
        TreeConfig(),
        {"max_depth": [4, 8, 12], "tau_leaf": [1, 32]},
    )
    print(f"searching {len(candidates)} candidate configurations "
          f"on {train.n_rows} rows\n")

    result = grid_search(train, candidates, system, seed=3)

    print(f"{'candidate':28s} {'validation':>10s}")
    for row in result.ranking():
        print(f"{row.candidate.name:28s} {row.quality:>9.2%}")

    print(f"\nbest: {result.best.candidate.name} "
          f"({result.best.quality:.2%} validation accuracy)")
    print(f"pooled run:     {result.sim_seconds:.3f} simulated s")
    print(f"one-at-a-time:  {result.sequential_sim_seconds:.3f} simulated s "
          f"({result.sequential_sim_seconds / result.sim_seconds:.2f}x)")

    best_model = result.models[result.best.candidate.name]
    print(f"test accuracy of the winner: "
          f"{accuracy(test.target, best_model.predict(test)):.2%}")


if __name__ == "__main__":
    main()
