"""The paper's Fig. 1 scenario: credit-card default prediction from CSV.

Builds the exact data table of the paper's running example (10 customers,
mixed numeric/categorical attributes), trains an exact decision tree, prints
the learned split conditions in the paper's notation, and demonstrates
Appendix D's handling of missing values and categories unseen during
training: prediction simply stops at the current node and reports its PMF.

Run:  python examples/credit_default.py
"""

import io

import numpy as np

from repro import TreeConfig, train_tree
from repro.data import read_csv

FIG1_CSV = """age,education,home_owner,income,default
24,Bachelor,No,5000,No
28,Master,Yes,7500,No
44,Bachelor,Yes,5500,No
32,Secondary,Yes,6000,Yes
36,PhD,No,10000,No
48,Bachelor,Yes,6500,No
37,Secondary,No,3000,Yes
42,Bachelor,No,6000,No
54,Secondary,No,4000,Yes
47,PhD,Yes,8000,No
"""


def print_tree(node, table, indent: str = "") -> None:
    """Pretty-print a tree with split conditions in the paper's style."""
    if node.is_leaf:
        label = table.schema.target.categories[node.predicted_label()]
        pmf = ", ".join(
            f"{c}: {p:.0%}"
            for c, p in zip(table.schema.target.categories, node.prediction)
        )
        print(f"{indent}leaf -> {label}  ({pmf}, {node.n_rows} rows)")
        return
    name = table.column_spec(node.split.column).name
    if node.split.threshold is not None:
        condition = f"{name} <= {node.split.threshold:g}"
    else:
        cats = sorted(
            table.column_spec(node.split.column).categories[c]
            for c in node.split.left_categories
        )
        condition = f"{name} in {cats}"
    print(f"{indent}{condition}?")
    print_tree(node.left, table, indent + "  yes: ")
    print_tree(node.right, table, indent + "  no:  ")


def main() -> None:
    table = read_csv(io.StringIO(FIG1_CSV), target="default")
    print(f"loaded {table.n_rows} customers, {table.n_columns} attributes\n")

    tree = train_tree(table, TreeConfig(max_depth=4))
    print("learned decision tree:")
    print_tree(tree.root, table)

    # A new applicant: 30 years old, Bachelor, not a home owner, $5.5k.
    edu = table.column_spec(1)
    home = table.column_spec(2)
    applicant = [30.0, edu.code_of("Bachelor"), home.code_of("No"), 5500.0]
    pmf = tree.predict_row(applicant)
    classes = table.schema.target.categories
    print(f"\napplicant prediction: {classes[int(np.argmax(pmf))]} "
          f"(PMF: {dict(zip(classes, np.round(pmf, 2)))})")

    # Appendix D: a missing income stops the descent at the node testing
    # income and reports that node's PMF instead of guessing a branch.
    applicant_missing = [30.0, edu.code_of("Bachelor"), home.code_of("No"),
                         float("nan")]
    pmf_missing = tree.predict_row(applicant_missing)
    print(f"with missing income:  {classes[int(np.argmax(pmf_missing))]} "
          f"(PMF: {dict(zip(classes, np.round(pmf_missing, 2)))})")

    # An education level never seen in training ('Primary' appears in the
    # schema but not in any training row of some node's D_x) behaves the
    # same way: the descent stops where the value is unseen.
    applicant_unseen = [30.0, -1, home.code_of("No"), 5500.0]
    pmf_unseen = tree.predict_row(applicant_unseen)
    print(f"with unknown school:  {classes[int(np.argmax(pmf_unseen))]} "
          f"(PMF: {dict(zip(classes, np.round(pmf_unseen, 2)))})")

    # Depth-truncated prediction (train once, predict at any depth).
    for depth in (1, 2):
        pmf_d = tree.predict_row(applicant, max_depth=depth)
        print(f"prediction at depth <= {depth}: "
              f"{classes[int(np.argmax(pmf_d))]}")


if __name__ == "__main__":
    main()
