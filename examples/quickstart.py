"""Quickstart: train tree models on a (simulated) TreeServer cluster.

Trains one exact decision tree and a 20-tree random forest on a synthetic
dataset shaped like the paper's Higgs-boson table, on a simulated cluster of
8 worker machines with 4 compers each, and prints paper-style run metrics:
simulated training seconds, worker CPU utilization, network throughput and
test accuracy.

Run:  python examples/quickstart.py
"""

from repro import (
    SystemConfig,
    TreeConfig,
    TreeServer,
    decision_tree_job,
    random_forest_job,
)
from repro.datasets import dataset_spec, train_test
from repro.evaluation import accuracy


def main() -> None:
    # A 14k-row binary classification dataset with 28 numeric columns.
    train, test = train_test(dataset_spec("higgs_boson"))
    print(f"dataset: {train.n_rows} train rows, {test.n_rows} test rows, "
          f"{train.n_columns} columns")

    # A TreeServer deployment: 8 workers x 4 compers, thresholds scaled to
    # the dataset size (the paper's tau_D/tau_dfs were tuned for tables
    # ~1000x larger).
    system = SystemConfig(n_workers=8, compers_per_worker=4).scaled_to(
        train.n_rows
    )
    server = TreeServer(system)

    # Submit two jobs at once — the master trains all trees concurrently,
    # keeping at most n_pool under construction.
    report = server.fit(
        train,
        [
            decision_tree_job("tree", TreeConfig(max_depth=10)),
            random_forest_job("forest", n_trees=20,
                              config=TreeConfig(max_depth=10), seed=7),
        ],
    )

    tree = report.tree("tree")
    forest = report.forest("forest")
    print(f"\nsimulated training time: {report.sim_seconds:.2f}s")
    print(f"worker CPU: {report.cluster.avg_worker_cpu_percent:.0f}%  "
          f"send: {report.cluster.avg_worker_send_mbps:.0f} Mbps  "
          f"peak task memory: {report.cluster.avg_peak_memory_bytes / 1e6:.1f} MB")
    print(f"tasks: {report.counters.column_tasks} column-tasks, "
          f"{report.counters.subtree_tasks} subtree-tasks")

    print(f"\ndecision tree:  {tree.n_nodes} nodes, depth {tree.depth}, "
          f"test accuracy {accuracy(test.target, tree.predict(test)):.4f}")
    print(f"random forest:  {forest.n_trees} trees, "
          f"test accuracy {accuracy(test.target, forest.predict(test)):.4f}")

    # Appendix D: the same deep tree can predict at any depth cutoff
    # without retraining.
    for depth in (2, 4, 8):
        acc = accuracy(test.target, tree.predict(test, max_depth=depth))
        print(f"tree truncated at depth {depth}: accuracy {acc:.4f}")


if __name__ == "__main__":
    main()
