"""Deep-forest-style sequence classification with 1-D multi-grained scanning.

The deep-forest design applies MGS to sequences exactly as to images:
windows of several lengths slide along each sequence, forests trained on
window vectors re-represent the data, and a downstream forest classifies
the representation.  This example classifies synthetic sensor-like
sequences whose classes differ by short local motifs — invisible to a
whole-sequence model, easy for windows.

Run:  python examples/sequence_classification.py
"""

import numpy as np

from repro.core import TreeConfig, train_tree
from repro.core.jobs import random_forest_job
from repro.deepforest import LocalBackend
from repro.deepforest.cascade import features_to_table
from repro.deepforest.sequences import (
    SequenceMGSConfig,
    SequenceScanner,
    generate_sequences,
)
from repro.ensemble import ForestModel
from repro.evaluation import accuracy


def train_forest(table, n_trees, seed):
    job = random_forest_job("rf", n_trees, TreeConfig(max_depth=10), seed=seed)
    return ForestModel(
        [train_tree(table, t.config) for t in job.stages[0].trees]
    )


def main() -> None:
    train = generate_sequences(240, length=32, n_classes=4, seed=21)
    test = generate_sequences(120, length=32, n_classes=4, seed=22)
    print(f"{train.n_sequences} train / {test.n_sequences} test sequences, "
          f"length {train.length}, {train.n_classes} classes")

    # Baseline: a forest on raw sequence values (positions as columns).
    raw_train = features_to_table(train.sequences, train.labels, 4)
    raw_test = features_to_table(test.sequences, test.labels, 4)
    raw_forest = train_forest(raw_train, 10, seed=1)
    raw_acc = accuracy(raw_test.target, raw_forest.predict(raw_test))
    print(f"\nforest on raw positions:        {raw_acc:.2%}")

    # MGS re-representation: windows of lengths 4 and 8.
    scanner = SequenceScanner(
        SequenceMGSConfig(
            window_sizes=(4, 8), stride=2, n_forests=2, trees_per_forest=8,
            seed=2,
        ),
        LocalBackend(),
    )
    scanner.fit(train)
    train_features = scanner.transform(train)
    test_features = scanner.transform(test)
    print(f"MGS re-representation: {train_features.shape[1]} features")

    mgs_train = features_to_table(train_features, train.labels, 4)
    mgs_test = features_to_table(test_features, test.labels, 4)
    mgs_forest = train_forest(mgs_train, 10, seed=3)
    mgs_acc = accuracy(mgs_test.target, mgs_forest.predict(mgs_test))
    print(f"forest on MGS representation:   {mgs_acc:.2%}")

    if mgs_acc > raw_acc:
        print("\nmulti-grained scanning recovered the local motif structure "
              "that raw-position splits missed.")


if __name__ == "__main__":
    main()
