"""Fault tolerance: a worker crashes mid-training, the job still finishes.

TreeServer replicates every column on ``k = 2`` machines (paper Section
III), so when a worker dies the master reassigns the lost columns to the
surviving replicas, revokes affected work and re-runs it.  This example
kills one of six workers partway through a forest job and verifies the
trained model is *bit-identical* to a crash-free run — fault recovery never
changes the model, only the schedule.

Run:  python examples/fault_tolerance.py
"""

from repro import SystemConfig, TreeConfig, TreeServer, random_forest_job, trees_equal
from repro.cluster import CrashPlan
from repro.datasets import dataset_spec, train_test
from repro.evaluation import accuracy


def main() -> None:
    train, test = train_test(dataset_spec("susy", small=True))
    system = SystemConfig(
        n_workers=6, compers_per_worker=2, column_replication=2
    ).scaled_to(train.n_rows)
    job = random_forest_job(
        "rf", n_trees=8, config=TreeConfig(max_depth=8), seed=5
    )

    clean = TreeServer(system).fit(train, [job])
    print(f"crash-free run:   {clean.sim_seconds:.3f}s simulated")

    crashed = TreeServer(system).fit(
        train,
        [random_forest_job("rf", n_trees=8, config=TreeConfig(max_depth=8), seed=5)],
        crash_plans=[CrashPlan(machine_id=4, at_time=clean.sim_seconds / 3)],
    )
    print(f"with worker crash: {crashed.sim_seconds:.3f}s simulated "
          f"({crashed.counters.revoked_trees} trees revoked and re-run)")

    identical = all(
        trees_equal(a, b)
        for a, b in zip(clean.trees("rf"), crashed.trees("rf"))
    )
    print(f"models identical after recovery: {identical}")
    acc = accuracy(test.target, crashed.forest("rf").predict(test))
    print(f"test accuracy: {acc:.2%}")
    assert identical, "fault recovery changed the model!"

    # The master itself can die too, if a secondary master stands by
    # (paper Appendix E): completed trees were checkpointed to the standby,
    # the rest retrain under the new master.
    master_crash = TreeServer(system).fit(
        train,
        [random_forest_job("rf", n_trees=8, config=TreeConfig(max_depth=8), seed=5)],
        crash_plans=[CrashPlan(machine_id=0, at_time=clean.sim_seconds / 2)],
        secondary_master=True,
    )
    identical = all(
        trees_equal(a, b)
        for a, b in zip(clean.trees("rf"), master_crash.trees("rf"))
    )
    print(f"\nmaster crash with secondary: {master_crash.sim_seconds:.3f}s, "
          f"models identical: {identical}")
    assert identical, "master failover changed the model!"


if __name__ == "__main__":
    main()
