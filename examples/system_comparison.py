"""Mini system comparison: TreeServer vs MLlib-style vs XGBoost-style.

A condensed version of the paper's Table II on two datasets: exact
distributed training (TreeServer) against histogram-approximate
level-synchronous training (the MLlib/PLANET baseline, parallel and
single-thread) and sequential second-order boosting (the XGBoost baseline).
Times are simulated seconds on the shared cost model; quality is measured
on a held-out test split.

Run:  python examples/system_comparison.py
"""

from repro import TreeConfig
from repro.baselines import XGBoostConfig
from repro.evaluation import (
    ComparisonTable,
    load_dataset,
    run_mllib,
    run_treeserver,
    run_xgboost,
)


def main() -> None:
    table = ComparisonTable(
        "System comparison (20-tree forests; XGBoost: 20 rounds)",
        ["TreeServer", "MLlib (Parallel)", "MLlib (Single Thread)", "XGBoost"],
    )
    cfg = TreeConfig(max_depth=8)
    for dataset in ("covtype", "loan_m1"):
        train, test = load_dataset(dataset, small=True)
        table.add(run_treeserver(dataset, train, test, cfg, n_trees=20, seed=1))
        table.add(run_mllib(dataset, train, test, cfg, n_trees=20, seed=1))
        table.add(
            run_mllib(
                dataset, train, test, cfg, n_trees=20, seed=1, single_thread=True
            )
        )
        table.add(
            run_xgboost(
                dataset,
                train,
                test,
                XGBoostConfig(n_rounds=20, max_depth=6),
            )
        )
    print(table.render())
    for dataset in ("covtype", "loan_m1"):
        speed = table.speedup(dataset, "TreeServer", "MLlib (Parallel)")
        print(f"{dataset}: TreeServer is {speed:.1f}x faster than MLlib")


if __name__ == "__main__":
    main()
