"""Multi-process serving fleet: shard micro-batches, map models via shm.

One :class:`~repro.serving.server.PredictionServer` dispatcher thread can
coalesce requests faster than one Python process can traverse trees, so
the fleet puts N OS worker processes behind it.  Three rules shape the
design, all inherited from the training runtime and the compact-layout
papers:

* **models are mapped, never copied** — a published model is one
  :class:`~repro.serving.shm_model.SharedCompiledModel` segment; each
  worker attaches read-only views (one ``mmap``), so publishing to 16
  workers costs the same memory as publishing to 1.  The per-worker
  ``shm_bytes_mapped`` counter pins this: it equals the model image
  size, not ``n_workers`` multiples of it.
* **micro-batches shard, rows move, models stay** — each batch matrix is
  cut into contiguous per-worker shards; only the shard rows and a tiny
  handle cross the task queues.  Workers re-attach when the handle's
  content hash changes (hot swap), and a retired model's segment is
  unlinked once its last in-flight shard resolves.
* **worker death is survivable** — a dead worker is respawned and its
  in-flight shards are re-dispatched; results are deduplicated by
  ``(batch, shard)`` so a retried shard can never be double-counted.  A
  shard that keeps dying takes the structured
  :class:`~repro.runtime.base.WorkerDiedError` path, exactly like the
  training runtime's fail-fast policy.

The fleet is an internal engine: most callers reach it through
``PredictionServer(model, n_workers=...)`` / ``repro serve --workers N``,
which keeps the micro-batching front door unchanged and swaps only the
kernel call.  Exact-mode fleet output is bit-identical to the
single-process server — shards are contiguous row ranges and every
per-row operation is row-local.
"""

from __future__ import annotations

import os
import threading
import traceback
from dataclasses import dataclass, field
from queue import Empty

import numpy as np

from ..core.tree import DecisionTree
from ..data.shm import new_run_prefix
from ..ensemble.forest import ForestModel
from ..runtime.base import WorkerDiedError
from ..runtime.process import CRASH_EXITCODE, parse_kill_spec, resolve_start_method
from .batch import BatchPredictor
from .compiler import FlatForest
from .registry import ModelRegistry, default_registry
from .shm_model import SharedCompiledModel, flat_fingerprint

#: Environment fault-injection hook: ``REPRO_FLEET_KILL=worker:after_n``
#: hard-kills that fleet worker (1-based id) while it serves its n-th
#: shard, *before* the result is sent — the serving twin of the
#: runtime's ``REPRO_MP_KILL``, aimed at the lost-shard recovery path.
#: Only the first incarnation honours it; respawns serve normally, so
#: injected faults converge instead of looping the retry budget dry.
FLEET_KILL_ENV = "REPRO_FLEET_KILL"


class FleetError(RuntimeError):
    """Base class of structured serving-fleet failures."""


class FleetClosedError(FleetError):
    """The fleet was closed while the request was in flight."""


class FleetWorkerError(FleetError):
    """A worker's kernel raised; carries the remote traceback."""

    def __init__(self, worker_id: int, remote_traceback: str) -> None:
        self.worker_id = worker_id
        self.remote_traceback = remote_traceback
        super().__init__(
            f"fleet worker {worker_id} failed serving a shard:\n"
            f"{remote_traceback}"
        )


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _fleet_worker_main(
    worker_id: int, task_queue, result_queue, incarnation: int = 0
) -> None:
    """Entry point of one serving worker process.

    Pulls ``("predict", ...)`` tasks until a ``("stop",)`` sentinel.
    Keeps exactly one model attached: a task whose handle hashes
    differently detaches the old mapping and attaches the new one (hot
    swap).  Counters travel with every result, so the parent's view is
    always as fresh as the last completed shard.
    """
    import signal

    # The parent coordinates shutdown; a Ctrl-C must not kill workers
    # mid-batch (mirrors the training runtime's signal discipline).
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main thread (tests)
        pass

    kill_after: int | None = None
    spec = os.environ.get(FLEET_KILL_ENV)
    if spec and incarnation == 0:
        target, after = parse_kill_spec(spec, FLEET_KILL_ENV)
        if target == worker_id:
            kill_after = after

    attached = None
    attached_key: str | None = None
    counters = {
        "rows": 0,
        "batches": 0,
        "shm_bytes_mapped": 0,
        "model_attaches": 0,
    }
    served = 0
    try:
        while True:
            task = task_queue.get()
            if task[0] == "stop":
                return
            _, batch_id, shard_id, handle, rows, proba, max_depth = task
            try:
                if handle.key != attached_key:
                    if attached is not None:
                        attached.close()
                        attached = None
                        attached_key = None
                    attached = handle.attach()
                    attached_key = handle.key
                    counters["model_attaches"] += 1
                    counters["shm_bytes_mapped"] = attached.nbytes
                if proba:
                    payload = attached.predictor.predict_proba_matrix(
                        rows, max_depth
                    )
                else:
                    payload = attached.predictor.predict_matrix(
                        rows, max_depth
                    )
            except BaseException:  # noqa: BLE001 - shipped to the parent
                result_queue.put(
                    (
                        "error",
                        batch_id,
                        shard_id,
                        worker_id,
                        traceback.format_exc(),
                        dict(counters),
                    )
                )
                continue
            served += 1
            if kill_after is not None and served >= kill_after:
                # Die mid-serve, result unsent: the shard is genuinely
                # lost and must come back via respawn + re-dispatch.
                os._exit(CRASH_EXITCODE)
            counters["rows"] += len(rows)
            counters["batches"] += 1
            result_queue.put(
                (
                    "done",
                    batch_id,
                    shard_id,
                    worker_id,
                    payload,
                    dict(counters),
                )
            )
    finally:
        if attached is not None:
            attached.close()


# ----------------------------------------------------------------------
# parent-side bookkeeping
# ----------------------------------------------------------------------
@dataclass
class _ShardTask:
    """One dispatched shard: everything needed to (re-)send and track it."""

    batch_id: int
    shard_id: int
    handle: SharedCompiledModel
    rows: np.ndarray
    proba: bool
    max_depth: int | None
    worker_index: int
    retries: int = 0

    def message(self) -> tuple:
        return (
            "predict",
            self.batch_id,
            self.shard_id,
            self.handle,
            self.rows,
            self.proba,
            self.max_depth,
        )


@dataclass
class _Batch:
    """One in-flight micro-batch: shard results gather here."""

    batch_id: int
    n_shards: int
    results: dict[int, np.ndarray] = field(default_factory=dict)
    error: BaseException | None = None
    event: threading.Event = field(default_factory=threading.Event)


class _WorkerSlot:
    """Parent-side state of one worker seat (survives respawns)."""

    def __init__(self, worker_id: int, task_queue) -> None:
        self.worker_id = worker_id
        self.task_queue = task_queue
        self.process = None
        self.respawns = 0
        #: Dispatched-but-unresolved shards, keyed ``(batch, shard)``.
        self.outstanding: dict[tuple[int, int], _ShardTask] = {}
        #: Latest cumulative counters of the live incarnation.
        self.counters: dict[str, int] = {}
        #: Counter totals of dead incarnations (gauges excluded).
        self.retired_counters: dict[str, int] = {}

    def merged_counters(self) -> dict[str, int]:
        """Counters across incarnations; gauges come from the live one."""
        merged = {
            "rows": 0,
            "batches": 0,
            "model_attaches": 0,
            "shm_bytes_mapped": 0,
        }
        for source in (self.retired_counters, self.counters):
            for key in ("rows", "batches", "model_attaches"):
                merged[key] += source.get(key, 0)
        # A gauge, not a counter: mapped bytes of the current mapping.
        merged["shm_bytes_mapped"] = self.counters.get("shm_bytes_mapped", 0)
        return merged


class ServingFleet:
    """N worker processes serving shards of micro-batches from shm models.

    Use as a context manager, publish a model, then feed it batches::

        with ServingFleet(n_workers=4) as fleet:
            fleet.publish(forest)                  # content-hash keyed
            proba = fleet.predict_batch(matrix, proba=True)

    ``publish`` of content already live is a no-op; publishing different
    content hot-swaps every worker on its next shard.  ``close`` (or the
    context exit) reaps workers and unlinks every model segment.
    """

    def __init__(
        self,
        n_workers: int,
        registry: ModelRegistry | None = None,
        start_method: str | None = None,
        max_shard_retries: int = 2,
        poll_seconds: float = 0.05,
    ) -> None:
        if n_workers < 1:
            raise ValueError("a serving fleet needs at least 1 worker")
        if max_shard_retries < 0:
            raise ValueError("max_shard_retries must be >= 0")
        self.n_workers = n_workers
        self.registry = default_registry() if registry is None else registry
        self.start_method = start_method
        self.max_shard_retries = max_shard_retries
        self.poll_seconds = poll_seconds
        self._prefix = new_run_prefix()
        self._ctx = None
        self._result_queue = None
        self._slots: list[_WorkerSlot] = []
        self._collector: threading.Thread | None = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self._batches: dict[int, _Batch] = {}
        self._next_batch_id = 0
        self._publish_seq = 0
        self._current: SharedCompiledModel | None = None
        self._retired: dict[str, SharedCompiledModel] = {}
        #: In-flight shard count per model key (retire gate).
        self._key_outstanding: dict[str, int] = {}
        self._total_respawns = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServingFleet":
        """Launch the worker processes and the collector thread."""
        if self._collector is not None:
            return self
        import multiprocessing

        method = resolve_start_method(self.start_method)
        self._ctx = multiprocessing.get_context(method)
        self._result_queue = self._ctx.Queue()
        self._stopping.clear()
        self._slots = [
            _WorkerSlot(worker_id, self._ctx.Queue())
            for worker_id in range(1, self.n_workers + 1)
        ]
        for slot in self._slots:
            self._spawn(slot)
        self._collector = threading.Thread(
            target=self._collect, name="repro-fleet-collector", daemon=True
        )
        self._collector.start()
        return self

    def _spawn(self, slot: _WorkerSlot) -> None:
        slot.process = self._ctx.Process(
            target=_fleet_worker_main,
            args=(
                slot.worker_id,
                slot.task_queue,
                self._result_queue,
                slot.respawns,
            ),
            name=f"repro-fleet-worker-{slot.worker_id}",
            daemon=True,
        )
        slot.process.start()

    def close(self) -> None:
        """Stop workers, fail in-flight batches, unlink every segment."""
        if self._collector is None:
            self._unlink_models()
            return
        self._stopping.set()
        for slot in self._slots:
            try:
                slot.task_queue.put(("stop",))
            except (OSError, ValueError):  # pragma: no cover - queue gone
                pass
        self._collector.join(timeout=10.0)
        self._collector = None
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=5.0)
        with self._lock:
            for batch in self._batches.values():
                batch.error = FleetClosedError("fleet closed mid-request")
                batch.event.set()
            self._batches.clear()
        for slot in self._slots:
            slot.task_queue.close()
            slot.task_queue.cancel_join_thread()
        self._result_queue.close()
        self._result_queue.cancel_join_thread()
        self._slots = []
        self._unlink_models()

    def _unlink_models(self) -> None:
        with self._lock:
            handles = list(self._retired.values())
            self._retired.clear()
            if self._current is not None:
                handles.append(self._current)
                self._current = None
            self._key_outstanding.clear()
        for handle in handles:
            handle.unlink()

    def __enter__(self) -> "ServingFleet":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def running(self) -> bool:
        """Whether the fleet has live workers behind it."""
        return self._collector is not None

    # ------------------------------------------------------------------
    # model publication (hot swap)
    # ------------------------------------------------------------------
    def publish(
        self,
        model: ForestModel | DecisionTree | FlatForest | BatchPredictor,
        quantize: bool = False,
    ) -> str:
        """Publish a model to the fleet; returns its content-hash key.

        Node-based models compile through the registry (so repeated
        publishes of the same content hit the cache); already-compiled
        forests hash their arrays directly.  Publishing the key that is
        already live is a no-op — the content hash *is* the identity, so
        rollback is just publishing the previous model again.  Workers
        re-attach lazily, on their next shard whose handle carries the
        new key; the old segment is unlinked once its last in-flight
        shard resolves.
        """
        if isinstance(model, BatchPredictor):
            model = model.forest
        if isinstance(model, FlatForest):
            flat = model.quantized_copy() if quantize else model
            key = flat_fingerprint(flat)
        else:
            entry, _ = self.registry.get_or_compile(model, quantize=quantize)
            flat, key = entry.compiled, entry.key
        with self._lock:
            if self._current is not None and self._current.key == key:
                return key
            # A retired-but-still-draining model coming back (rollback
            # mid-drain): promote the live handle instead of re-creating.
            handle = self._retired.pop(key, None)
            if handle is None:
                self._publish_seq += 1
                handle = SharedCompiledModel.create(
                    flat, key, prefix=f"{self._prefix}-m{self._publish_seq}"
                )
            old = self._current
            self._current = handle
            unlink_now = None
            if old is not None:
                if self._key_outstanding.get(old.key, 0) > 0:
                    self._retired[old.key] = old
                else:
                    unlink_now = old
        if unlink_now is not None:
            unlink_now.unlink()
        return key

    @property
    def model_key(self) -> str | None:
        """Content hash of the currently published model, if any."""
        current = self._current
        return current.key if current is not None else None

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def predict_batch(
        self,
        matrix: np.ndarray,
        proba: bool,
        max_depth: int | None = None,
        timeout: float | None = 60.0,
    ) -> np.ndarray:
        """Serve one micro-batch across the fleet; blocks for the result.

        The matrix is cut into up to ``n_workers`` contiguous row shards
        (one per worker); the reassembled output is ordered exactly like
        the input rows, so exact-mode results are bit-identical to a
        single-process kernel call over the whole matrix.
        """
        if self._collector is None:
            raise FleetError("fleet is not running (call start())")
        current = self._current
        if current is None:
            raise FleetError("no model published (call publish())")
        n_rows = len(matrix)
        if n_rows == 0:
            raise ValueError("a batch needs at least one row")
        n_shards = min(self.n_workers, n_rows)
        bounds = np.linspace(0, n_rows, n_shards + 1, dtype=np.int64)
        with self._lock:
            batch_id = self._next_batch_id
            self._next_batch_id += 1
            batch = _Batch(batch_id=batch_id, n_shards=n_shards)
            self._batches[batch_id] = batch
            tasks = []
            for shard_id in range(n_shards):
                rows = matrix[bounds[shard_id] : bounds[shard_id + 1]]
                task = _ShardTask(
                    batch_id=batch_id,
                    shard_id=shard_id,
                    handle=current,
                    rows=rows,
                    proba=proba,
                    max_depth=max_depth,
                    worker_index=shard_id,
                )
                slot = self._slots[task.worker_index]
                slot.outstanding[(batch_id, shard_id)] = task
                self._key_outstanding[current.key] = (
                    self._key_outstanding.get(current.key, 0) + 1
                )
                tasks.append(task)
        for task in tasks:
            self._slots[task.worker_index].task_queue.put(task.message())
        if not batch.event.wait(timeout):
            with self._lock:
                self._batches.pop(batch_id, None)
            raise TimeoutError(
                f"fleet batch of {n_rows} rows not served in {timeout}s"
            )
        with self._lock:
            self._batches.pop(batch_id, None)
        if batch.error is not None:
            raise batch.error
        return np.concatenate(
            [batch.results[shard] for shard in range(n_shards)]
        )

    # ------------------------------------------------------------------
    # collector: results, liveness, respawn
    # ------------------------------------------------------------------
    def _collect(self) -> None:
        while True:
            try:
                result = self._result_queue.get(timeout=self.poll_seconds)
            except Empty:
                result = None
            except (OSError, ValueError):  # pragma: no cover - queue gone
                return
            if result is not None:
                self._handle_result(result)
                continue
            if self._stopping.is_set():
                return
            self._check_liveness()

    def _handle_result(self, result: tuple) -> None:
        kind, batch_id, shard_id, worker_id, payload, counters = result
        retired_handle = None
        with self._lock:
            slot = self._slots[worker_id - 1]
            slot.counters = counters
            task = slot.outstanding.pop((batch_id, shard_id), None)
            if task is None:
                # A shard served twice (respawn re-dispatch raced a live
                # result) or a batch abandoned on timeout: drop the
                # duplicate — dedup is what makes retries safe.
                return
            key = task.handle.key
            left = self._key_outstanding.get(key, 0) - 1
            if left <= 0:
                self._key_outstanding.pop(key, None)
                retired_handle = self._retired.pop(key, None)
            else:
                self._key_outstanding[key] = left
            batch = self._batches.get(batch_id)
            if batch is not None and batch.error is None:
                if kind == "error":
                    batch.error = FleetWorkerError(worker_id, payload)
                    batch.event.set()
                else:
                    batch.results[shard_id] = payload
                    if len(batch.results) == batch.n_shards:
                        batch.event.set()
        if retired_handle is not None:
            retired_handle.unlink()

    def _check_liveness(self) -> None:
        for slot in self._slots:
            process = slot.process
            if process is None or process.is_alive():
                continue
            if self._stopping.is_set():  # pragma: no cover - close race
                return
            self._respawn(slot, process.exitcode)

    def _respawn(self, slot: _WorkerSlot, exitcode: int | None) -> None:
        """Replace a dead worker and re-dispatch its in-flight shards."""
        with self._lock:
            slot.respawns += 1
            self._total_respawns += 1
            for key in ("rows", "batches", "model_attaches"):
                slot.retired_counters[key] = slot.retired_counters.get(
                    key, 0
                ) + slot.counters.get(key, 0)
            slot.counters = {}
            retry, abandoned = [], []
            for task in slot.outstanding.values():
                task.retries += 1
                if task.retries > self.max_shard_retries:
                    abandoned.append(task)
                else:
                    retry.append(task)
            for task in abandoned:
                del slot.outstanding[(task.batch_id, task.shard_id)]
                key = task.handle.key
                left = self._key_outstanding.get(key, 0) - 1
                if left <= 0:
                    self._key_outstanding.pop(key, None)
                else:
                    self._key_outstanding[key] = left
                batch = self._batches.get(task.batch_id)
                if batch is not None and batch.error is None:
                    batch.error = WorkerDiedError(
                        slot.worker_id,
                        exitcode,
                        detail=(
                            f"serving shard {task.shard_id} of batch "
                            f"{task.batch_id} died "
                            f"{task.retries} time(s); giving up"
                        ),
                    )
                    batch.event.set()
        self._spawn(slot)
        # Re-dispatch after the replacement is live.  The queue may still
        # hold copies of these tasks (death between queue and take): the
        # respawned worker will then serve a shard twice, and the second
        # result is dropped by the (batch, shard) dedup above.
        for task in retry:
            slot.task_queue.put(task.message())

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Per-worker counters plus fleet-level model/respawn state."""
        with self._lock:
            current = self._current
            workers = [
                {
                    "worker_id": slot.worker_id,
                    "respawns": slot.respawns,
                    **slot.merged_counters(),
                }
                for slot in self._slots
            ]
        return {
            "n_workers": self.n_workers,
            "respawns": self._total_respawns,
            "model_key": current.key if current is not None else None,
            "model_nbytes": current.nbytes if current is not None else 0,
            "model_quantized": (
                current.quantized if current is not None else False
            ),
            "workers": workers,
        }
