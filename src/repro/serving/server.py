"""In-process prediction server with bounded queueing and micro-batching.

The serving front door.  Callers submit small requests (one or a few rows);
a dispatcher thread coalesces them into micro-batches so the vectorized
kernel amortizes its per-call overhead, flushing a batch when either

* the accumulated rows reach ``max_batch_size``, or
* the **oldest** queued request has waited ``max_delay_seconds``

— the classic throughput/latency trade dial.  The request queue is bounded;
when it is full, :meth:`PredictionServer.submit` fails fast with
:class:`QueueFullError` instead of buffering unboundedly (load shedding).
Rejections are counted *structurally* — queue-full backpressure separately
from submits that arrive after shutdown began — so a saturated server and
a mis-sequenced client look different in the shutdown summary.

With ``n_workers=N`` the kernel call is delegated to a
:class:`~repro.serving.fleet.ServingFleet`: N OS processes attach the
compiled model from one shared-memory segment and each serves a
contiguous shard of every micro-batch.  The front door (submit / futures
/ micro-batching) is identical; exact-mode results are bit-identical to
the in-process path.  ``swap_model`` hot-swaps the served model in both
modes.

Per-request latency and throughput counters are kept in the same spirit as
``cluster/metrics.py``: a :class:`ServingReport` dataclass with paper-style
units (rows/sec, p50/p99 milliseconds) and a one-line ``summary()``.
Unlike the cluster simulator these are *wall-clock* numbers — serving runs
for real.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from queue import Empty, Full, Queue

import numpy as np

from ..core.tree import DecisionTree
from ..data.schema import ProblemKind
from ..ensemble.forest import ForestModel
from .batch import BatchPredictor
from .compiler import FlatForest
from .fleet import ServingFleet
from .registry import ModelRegistry, default_registry


class QueueFullError(RuntimeError):
    """Raised by ``submit`` when the bounded request queue is full.

    Carries the structural facts a client needs to compute a backoff
    hint — ``queue_depth`` (requests admitted but unserved at rejection
    time) and ``capacity`` (the configured bound) — so callers like the
    HTTP gateway derive ``Retry-After`` from state, not message parsing.
    """

    def __init__(self, queue_depth: int, capacity: int) -> None:
        self.queue_depth = queue_depth
        self.capacity = capacity
        super().__init__(
            f"queue full ({queue_depth}/{capacity} requests)"
        )


@dataclass(frozen=True)
class ServerConfig:
    """Micro-batching knobs.

    ``max_delay_seconds`` bounds the queueing delay any request absorbs for
    the benefit of batching; ``max_batch_size`` bounds the rows per kernel
    call; ``queue_capacity`` bounds admitted-but-unserved requests.
    """

    max_batch_size: int = 256
    max_delay_seconds: float = 0.002
    queue_capacity: int = 1024
    max_depth: int | None = None

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_delay_seconds < 0:
            raise ValueError("max_delay_seconds must be >= 0")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")


@dataclass
class ServingStats:
    """Raw counters accumulated by the dispatcher thread."""

    n_requests: int = 0
    n_rows: int = 0
    n_batches: int = 0
    #: Submits shed because the bounded queue was full (backpressure).
    rejected_queue_full: int = 0
    #: Submits refused because the server was stopping or stopped.
    rejected_shutdown: int = 0
    kernel_seconds: float = 0.0
    first_enqueue: float | None = None
    last_complete: float | None = None
    #: Most recent per-request latencies (seconds); bounded window.
    latencies: deque = field(default_factory=lambda: deque(maxlen=65536))

    @property
    def rejected(self) -> int:
        """Total rejected submits, all causes (compat roll-up)."""
        return self.rejected_queue_full + self.rejected_shutdown

    def latency_percentile_ms(self, q: float) -> float:
        """Latency percentile over the recorded window, in milliseconds."""
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), q) * 1e3)


@dataclass
class ServingReport:
    """Point-in-time summary of a server's counters (metrics-style)."""

    n_requests: int
    n_rows: int
    n_batches: int
    rejected: int
    avg_batch_rows: float
    rows_per_second: float
    p50_latency_ms: float
    p99_latency_ms: float
    max_latency_ms: float
    kernel_seconds: float
    #: Structured rejection causes (``rejected`` is their roll-up).
    rejected_queue_full: int = 0
    rejected_shutdown: int = 0
    #: Fleet-mode counters (``ServingFleet.stats()``); ``None`` in-process.
    fleet: dict | None = None
    #: Gateway counters (``Gateway.stats.to_dict()``) when this report is
    #: served through the HTTP gateway's ``/stats``; ``None`` otherwise.
    gateway: dict | None = None

    def summary(self) -> str:
        """One-line human-readable digest."""
        line = (
            f"req={self.n_requests} rows={self.n_rows} "
            f"batches={self.n_batches} (avg {self.avg_batch_rows:.1f} rows) "
            f"{self.rows_per_second:.0f} rows/s "
            f"p50={self.p50_latency_ms:.2f}ms p99={self.p99_latency_ms:.2f}ms "
            f"rejected={self.rejected}"
        )
        if self.rejected:
            line += (
                f" (queue_full={self.rejected_queue_full}"
                f" shutdown={self.rejected_shutdown})"
            )
        if self.fleet is not None:
            line += (
                f" workers={self.fleet['n_workers']}"
                f" respawns={self.fleet['respawns']}"
            )
        return line

    def to_dict(self) -> dict:
        """Plain-dict form for JSON emission."""
        out = {
            "n_requests": self.n_requests,
            "n_rows": self.n_rows,
            "n_batches": self.n_batches,
            "rejected": self.rejected,
            "rejected_queue_full": self.rejected_queue_full,
            "rejected_shutdown": self.rejected_shutdown,
            "avg_batch_rows": self.avg_batch_rows,
            "rows_per_second": self.rows_per_second,
            "p50_latency_ms": self.p50_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "max_latency_ms": self.max_latency_ms,
            "kernel_seconds": self.kernel_seconds,
        }
        if self.fleet is not None:
            out["fleet"] = self.fleet
        if self.gateway is not None:
            out["gateway"] = self.gateway
        return out


class PredictionFuture:
    """Handle returned by ``submit``; resolves to this request's block."""

    def __init__(self, n_rows: int) -> None:
        self.n_rows = n_rows
        self._event = threading.Event()
        self._value: np.ndarray | None = None
        self._error: BaseException | None = None

    def _resolve(self, value: np.ndarray) -> None:
        self._value = value
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def done(self) -> bool:
        """Whether the result (or an error) is available."""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block for the prediction block of this request's rows."""
        if not self._event.wait(timeout):
            raise TimeoutError("prediction not ready")
        if self._error is not None:
            raise self._error
        assert self._value is not None
        return self._value


class _Request:
    __slots__ = ("rows", "proba", "enqueued", "future")

    def __init__(self, rows: np.ndarray, proba: bool, enqueued: float) -> None:
        self.rows = rows
        self.proba = proba
        self.enqueued = enqueued
        self.future = PredictionFuture(len(rows))


class PredictionServer:
    """Micro-batching front end over one compiled model.

    Accepts a :class:`BatchPredictor`, a compiled :class:`FlatForest`, or a
    node-based model (``ForestModel`` / ``DecisionTree``) which is then
    compiled through the registry.  Use as a context manager::

        with PredictionServer(model) as server:
            labels = server.predict([row])

    ``n_workers=N`` (N >= 1) serves every micro-batch through a
    :class:`~repro.serving.fleet.ServingFleet` of N OS processes mapping
    the model from shared memory; ``None`` (default) serves in-process.
    ``quantize=True`` serves the compact float32/int16 compiled form
    (see ``compiler.QUANTIZE_ATOL`` for the accuracy contract).
    """

    def __init__(
        self,
        model: BatchPredictor | FlatForest | ForestModel | DecisionTree,
        config: ServerConfig | None = None,
        registry: ModelRegistry | None = None,
        n_workers: int | None = None,
        quantize: bool = False,
    ) -> None:
        if n_workers is not None and n_workers < 1:
            raise ValueError("n_workers must be >= 1 (or None for in-process)")
        self.config = config or ServerConfig()
        self.n_workers = n_workers
        self.quantize = quantize
        self._registry = default_registry() if registry is None else registry
        if isinstance(model, BatchPredictor) and not (
            quantize and not model.forest.quantized
        ):
            # Preserve the caller's instance (tests and callers may
            # subclass the predictor to instrument the kernel call).
            self.predictor = model
        else:
            self.predictor = BatchPredictor(self._resolve_flat(model))
        self._fleet: ServingFleet | None = (
            ServingFleet(n_workers, registry=self._registry)
            if n_workers is not None
            else None
        )
        self.stats = ServingStats()
        self._queue: Queue = Queue(maxsize=self.config.queue_capacity)
        self._thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()

    def _resolve_flat(self, model) -> FlatForest:
        """Compile/unwrap any accepted model form into a FlatForest."""
        if isinstance(model, BatchPredictor):
            model = model.forest
        if isinstance(model, FlatForest):
            return model.quantized_copy() if self.quantize else model
        entry, _ = self._registry.get_or_compile(model, quantize=self.quantize)
        return entry.compiled

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "PredictionServer":
        """Start the dispatcher thread — and the fleet, in fleet mode.

        Idempotent.  Fleet mode launches the worker processes and
        publishes the compiled model to shared memory before the first
        request is admitted.
        """
        with self._lock:
            if self._thread is None:
                if self._fleet is not None:
                    self._fleet.start()
                    self._fleet.publish(self.predictor.forest)
                self._stopping.clear()
                self._thread = threading.Thread(
                    target=self._run, name="repro-serving", daemon=True
                )
                self._thread.start()
        return self

    def stop(self) -> None:
        """Drain the queue, serve everything admitted, stop the thread.

        Fleet mode then reaps the worker processes and unlinks every
        published model segment.
        """
        with self._lock:
            thread = self._thread
            if thread is None:
                return
            self._stopping.set()
            thread.join()
            self._thread = None
            if self._fleet is not None:
                self._fleet.close()

    def __enter__(self) -> "PredictionServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        """Whether the dispatcher thread is alive."""
        return self._thread is not None

    # ------------------------------------------------------------------
    # request side
    # ------------------------------------------------------------------
    def submit(
        self, rows, proba: bool = False
    ) -> PredictionFuture:
        """Enqueue one request (one or more feature rows); returns a future.

        ``rows`` is a row vector, a list of row vectors, or an
        ``(n, n_columns)`` array — numeric values as floats, categorical
        values as integer codes (``-1`` / NaN for missing).  Raises
        :class:`QueueFullError` when the bounded queue is full.
        """
        if self._thread is None or self._stopping.is_set():
            self.stats.rejected_shutdown += 1
            raise RuntimeError("server is not running (call start())")
        matrix = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise ValueError("a request needs at least one row")
        if proba and self.predictor.problem is not ProblemKind.CLASSIFICATION:
            raise ValueError("proba requests need a classification model")
        request = _Request(matrix, proba, time.monotonic())
        try:
            self._queue.put_nowait(request)
        except Full:
            self.stats.rejected_queue_full += 1
            raise QueueFullError(
                self._queue.qsize(), self.config.queue_capacity
            ) from None
        if self.stats.first_enqueue is None:
            self.stats.first_enqueue = request.enqueued
        return request.future

    def predict(self, rows, timeout: float | None = 30.0) -> np.ndarray:
        """Submit one request and block for its labels/values."""
        return self.submit(rows).result(timeout)

    def predict_proba(self, rows, timeout: float | None = 30.0) -> np.ndarray:
        """Submit one request and block for its class PMFs."""
        return self.submit(rows, proba=True).result(timeout)

    # ------------------------------------------------------------------
    # model management
    # ------------------------------------------------------------------
    def swap_model(
        self,
        model: BatchPredictor | FlatForest | ForestModel | DecisionTree,
    ) -> str | None:
        """Hot-swap the served model without dropping a request.

        The replacement compiles (honouring the server's ``quantize``
        flag) and becomes visible atomically: in-flight micro-batches
        finish on whichever model they started with.  Fleet mode
        publishes the new image to shared memory and returns its content
        key — workers re-attach on their next shard, and the retired
        segment is unlinked once its last in-flight shard drains.
        Swapping identical content is a no-op (same hash, same key), so
        rollback is just swapping the previous model back in.
        """
        flat = self._resolve_flat(model)
        if flat.problem is not self.predictor.problem:
            raise ValueError(
                "hot swap cannot change the problem kind "
                f"({self.predictor.problem.value} -> {flat.problem.value})"
            )
        self.predictor = BatchPredictor(flat)
        if self._fleet is not None and self._fleet.running:
            return self._fleet.publish(flat)
        return None

    @property
    def model_key(self) -> str | None:
        """Content hash of the fleet-published model (``None`` in-process)."""
        return self._fleet.model_key if self._fleet is not None else None

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def report(self) -> ServingReport:
        """Current counters as a :class:`ServingReport`."""
        s = self.stats
        if s.first_enqueue is not None and s.last_complete is not None:
            elapsed = max(s.last_complete - s.first_enqueue, 1e-9)
            rows_per_second = s.n_rows / elapsed
        else:
            rows_per_second = 0.0
        max_ms = max(s.latencies) * 1e3 if s.latencies else 0.0
        return ServingReport(
            n_requests=s.n_requests,
            n_rows=s.n_rows,
            n_batches=s.n_batches,
            rejected=s.rejected,
            avg_batch_rows=(s.n_rows / s.n_batches) if s.n_batches else 0.0,
            rows_per_second=rows_per_second,
            p50_latency_ms=s.latency_percentile_ms(50),
            p99_latency_ms=s.latency_percentile_ms(99),
            max_latency_ms=float(max_ms),
            kernel_seconds=s.kernel_seconds,
            rejected_queue_full=s.rejected_queue_full,
            rejected_shutdown=s.rejected_shutdown,
            fleet=self._fleet.stats() if self._fleet is not None else None,
        )

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    def _run(self) -> None:
        cfg = self.config
        while True:
            try:
                first = self._queue.get(timeout=0.01)
            except Empty:
                if self._stopping.is_set():
                    return
                continue
            batch = [first]
            n_rows = len(first.rows)
            deadline = first.enqueued + cfg.max_delay_seconds
            while n_rows < cfg.max_batch_size:
                remaining = deadline - time.monotonic()
                try:
                    if remaining <= 0 or self._stopping.is_set():
                        # Deadline hit: stop waiting, but still sweep in
                        # whatever is already queued (backlog coalescing).
                        nxt = self._queue.get_nowait()
                    else:
                        nxt = self._queue.get(timeout=remaining)
                except Empty:
                    break
                batch.append(nxt)
                n_rows += len(nxt.rows)
            self._serve(batch)

    def _serve(self, batch: list[_Request]) -> None:
        matrix = (
            batch[0].rows
            if len(batch) == 1
            else np.concatenate([r.rows for r in batch], axis=0)
        )
        classification = (
            self.predictor.problem is ProblemKind.CLASSIFICATION
        )
        started = time.monotonic()
        try:
            # Fleet and in-process paths run the same row-wise math:
            # classification always computes the proba matrix (so one
            # micro-batch can mix proba and label requests) and argmaxes
            # locally; regression computes values.  The fleet shards are
            # contiguous row ranges, so exact-mode output is
            # bit-identical either way.
            if self._fleet is not None:
                raw = self._fleet.predict_batch(
                    matrix, proba=classification,
                    max_depth=self.config.max_depth,
                )
                proba = raw if classification else None
                labels = np.argmax(raw, axis=1) if classification else raw
            elif classification:
                proba = self.predictor.predict_proba_matrix(
                    matrix, self.config.max_depth
                )
                labels = np.argmax(proba, axis=1)
            else:
                proba = None
                labels = self.predictor.predict_matrix(
                    matrix, self.config.max_depth
                )
        except BaseException as error:  # noqa: BLE001 - forwarded to callers
            for request in batch:
                request.future._fail(error)
            return
        self.stats.kernel_seconds += time.monotonic() - started
        done = time.monotonic()
        offset = 0
        for request in batch:
            n = len(request.rows)
            block = (
                proba[offset : offset + n]
                if request.proba and proba is not None
                else labels[offset : offset + n]
            )
            request.future._resolve(block)
            offset += n
            self.stats.latencies.append(done - request.enqueued)
        self.stats.n_requests += len(batch)
        self.stats.n_rows += len(matrix)
        self.stats.n_batches += 1
        self.stats.last_complete = done
