"""In-process prediction server with bounded queueing and micro-batching.

The serving front door.  Callers submit small requests (one or a few rows);
a dispatcher thread coalesces them into micro-batches so the vectorized
kernel amortizes its per-call overhead, flushing a batch when either

* the accumulated rows reach ``max_batch_size``, or
* the **oldest** queued request has waited ``max_delay_seconds``

— the classic throughput/latency trade dial.  The request queue is bounded;
when it is full, :meth:`PredictionServer.submit` fails fast with
:class:`QueueFullError` instead of buffering unboundedly (load shedding).

Per-request latency and throughput counters are kept in the same spirit as
``cluster/metrics.py``: a :class:`ServingReport` dataclass with paper-style
units (rows/sec, p50/p99 milliseconds) and a one-line ``summary()``.
Unlike the cluster simulator these are *wall-clock* numbers — serving runs
for real.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from queue import Empty, Full, Queue

import numpy as np

from ..core.tree import DecisionTree
from ..data.schema import ProblemKind
from ..ensemble.forest import ForestModel
from .batch import BatchPredictor
from .compiler import FlatForest
from .registry import ModelRegistry, default_registry


class QueueFullError(RuntimeError):
    """Raised by ``submit`` when the bounded request queue is full."""


@dataclass(frozen=True)
class ServerConfig:
    """Micro-batching knobs.

    ``max_delay_seconds`` bounds the queueing delay any request absorbs for
    the benefit of batching; ``max_batch_size`` bounds the rows per kernel
    call; ``queue_capacity`` bounds admitted-but-unserved requests.
    """

    max_batch_size: int = 256
    max_delay_seconds: float = 0.002
    queue_capacity: int = 1024
    max_depth: int | None = None

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_delay_seconds < 0:
            raise ValueError("max_delay_seconds must be >= 0")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")


@dataclass
class ServingStats:
    """Raw counters accumulated by the dispatcher thread."""

    n_requests: int = 0
    n_rows: int = 0
    n_batches: int = 0
    rejected: int = 0
    kernel_seconds: float = 0.0
    first_enqueue: float | None = None
    last_complete: float | None = None
    #: Most recent per-request latencies (seconds); bounded window.
    latencies: deque = field(default_factory=lambda: deque(maxlen=65536))

    def latency_percentile_ms(self, q: float) -> float:
        """Latency percentile over the recorded window, in milliseconds."""
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), q) * 1e3)


@dataclass
class ServingReport:
    """Point-in-time summary of a server's counters (metrics-style)."""

    n_requests: int
    n_rows: int
    n_batches: int
    rejected: int
    avg_batch_rows: float
    rows_per_second: float
    p50_latency_ms: float
    p99_latency_ms: float
    max_latency_ms: float
    kernel_seconds: float

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"req={self.n_requests} rows={self.n_rows} "
            f"batches={self.n_batches} (avg {self.avg_batch_rows:.1f} rows) "
            f"{self.rows_per_second:.0f} rows/s "
            f"p50={self.p50_latency_ms:.2f}ms p99={self.p99_latency_ms:.2f}ms "
            f"rejected={self.rejected}"
        )

    def to_dict(self) -> dict:
        """Plain-dict form for JSON emission."""
        return {
            "n_requests": self.n_requests,
            "n_rows": self.n_rows,
            "n_batches": self.n_batches,
            "rejected": self.rejected,
            "avg_batch_rows": self.avg_batch_rows,
            "rows_per_second": self.rows_per_second,
            "p50_latency_ms": self.p50_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "max_latency_ms": self.max_latency_ms,
            "kernel_seconds": self.kernel_seconds,
        }


class PredictionFuture:
    """Handle returned by ``submit``; resolves to this request's block."""

    def __init__(self, n_rows: int) -> None:
        self.n_rows = n_rows
        self._event = threading.Event()
        self._value: np.ndarray | None = None
        self._error: BaseException | None = None

    def _resolve(self, value: np.ndarray) -> None:
        self._value = value
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def done(self) -> bool:
        """Whether the result (or an error) is available."""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block for the prediction block of this request's rows."""
        if not self._event.wait(timeout):
            raise TimeoutError("prediction not ready")
        if self._error is not None:
            raise self._error
        assert self._value is not None
        return self._value


class _Request:
    __slots__ = ("rows", "proba", "enqueued", "future")

    def __init__(self, rows: np.ndarray, proba: bool, enqueued: float) -> None:
        self.rows = rows
        self.proba = proba
        self.enqueued = enqueued
        self.future = PredictionFuture(len(rows))


class PredictionServer:
    """Micro-batching front end over one compiled model.

    Accepts a :class:`BatchPredictor`, a compiled :class:`FlatForest`, or a
    node-based model (``ForestModel`` / ``DecisionTree``) which is then
    compiled through the registry.  Use as a context manager::

        with PredictionServer(model) as server:
            labels = server.predict([row])
    """

    def __init__(
        self,
        model: BatchPredictor | FlatForest | ForestModel | DecisionTree,
        config: ServerConfig | None = None,
        registry: ModelRegistry | None = None,
    ) -> None:
        self.config = config or ServerConfig()
        if isinstance(model, BatchPredictor):
            self.predictor = model
        elif isinstance(model, FlatForest):
            self.predictor = BatchPredictor(model)
        else:
            reg = default_registry() if registry is None else registry
            entry, _ = reg.get_or_compile(model)
            self.predictor = entry.predictor
        self.stats = ServingStats()
        self._queue: Queue = Queue(maxsize=self.config.queue_capacity)
        self._thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "PredictionServer":
        """Start the dispatcher thread (idempotent)."""
        with self._lock:
            if self._thread is None:
                self._stopping.clear()
                self._thread = threading.Thread(
                    target=self._run, name="repro-serving", daemon=True
                )
                self._thread.start()
        return self

    def stop(self) -> None:
        """Drain the queue, serve everything admitted, stop the thread."""
        with self._lock:
            thread = self._thread
            if thread is None:
                return
            self._stopping.set()
            thread.join()
            self._thread = None

    def __enter__(self) -> "PredictionServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        """Whether the dispatcher thread is alive."""
        return self._thread is not None

    # ------------------------------------------------------------------
    # request side
    # ------------------------------------------------------------------
    def submit(
        self, rows, proba: bool = False
    ) -> PredictionFuture:
        """Enqueue one request (one or more feature rows); returns a future.

        ``rows`` is a row vector, a list of row vectors, or an
        ``(n, n_columns)`` array — numeric values as floats, categorical
        values as integer codes (``-1`` / NaN for missing).  Raises
        :class:`QueueFullError` when the bounded queue is full.
        """
        if self._thread is None:
            raise RuntimeError("server is not running (call start())")
        matrix = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise ValueError("a request needs at least one row")
        if proba and self.predictor.problem is not ProblemKind.CLASSIFICATION:
            raise ValueError("proba requests need a classification model")
        request = _Request(matrix, proba, time.monotonic())
        try:
            self._queue.put_nowait(request)
        except Full:
            self.stats.rejected += 1
            raise QueueFullError(
                f"queue full ({self.config.queue_capacity} requests)"
            ) from None
        if self.stats.first_enqueue is None:
            self.stats.first_enqueue = request.enqueued
        return request.future

    def predict(self, rows, timeout: float | None = 30.0) -> np.ndarray:
        """Submit one request and block for its labels/values."""
        return self.submit(rows).result(timeout)

    def predict_proba(self, rows, timeout: float | None = 30.0) -> np.ndarray:
        """Submit one request and block for its class PMFs."""
        return self.submit(rows, proba=True).result(timeout)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def report(self) -> ServingReport:
        """Current counters as a :class:`ServingReport`."""
        s = self.stats
        if s.first_enqueue is not None and s.last_complete is not None:
            elapsed = max(s.last_complete - s.first_enqueue, 1e-9)
            rows_per_second = s.n_rows / elapsed
        else:
            rows_per_second = 0.0
        max_ms = max(s.latencies) * 1e3 if s.latencies else 0.0
        return ServingReport(
            n_requests=s.n_requests,
            n_rows=s.n_rows,
            n_batches=s.n_batches,
            rejected=s.rejected,
            avg_batch_rows=(s.n_rows / s.n_batches) if s.n_batches else 0.0,
            rows_per_second=rows_per_second,
            p50_latency_ms=s.latency_percentile_ms(50),
            p99_latency_ms=s.latency_percentile_ms(99),
            max_latency_ms=float(max_ms),
            kernel_seconds=s.kernel_seconds,
        )

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    def _run(self) -> None:
        cfg = self.config
        while True:
            try:
                first = self._queue.get(timeout=0.01)
            except Empty:
                if self._stopping.is_set():
                    return
                continue
            batch = [first]
            n_rows = len(first.rows)
            deadline = first.enqueued + cfg.max_delay_seconds
            while n_rows < cfg.max_batch_size:
                remaining = deadline - time.monotonic()
                try:
                    if remaining <= 0 or self._stopping.is_set():
                        # Deadline hit: stop waiting, but still sweep in
                        # whatever is already queued (backlog coalescing).
                        nxt = self._queue.get_nowait()
                    else:
                        nxt = self._queue.get(timeout=remaining)
                except Empty:
                    break
                batch.append(nxt)
                n_rows += len(nxt.rows)
            self._serve(batch)

    def _serve(self, batch: list[_Request]) -> None:
        matrix = (
            batch[0].rows
            if len(batch) == 1
            else np.concatenate([r.rows for r in batch], axis=0)
        )
        classification = (
            self.predictor.problem is ProblemKind.CLASSIFICATION
        )
        started = time.monotonic()
        try:
            if classification:
                proba = self.predictor.predict_proba_matrix(
                    matrix, self.config.max_depth
                )
                labels = np.argmax(proba, axis=1)
            else:
                proba = None
                labels = self.predictor.predict_matrix(
                    matrix, self.config.max_depth
                )
        except BaseException as error:  # noqa: BLE001 - forwarded to callers
            for request in batch:
                request.future._fail(error)
            return
        self.stats.kernel_seconds += time.monotonic() - started
        done = time.monotonic()
        offset = 0
        for request in batch:
            n = len(request.rows)
            block = (
                proba[offset : offset + n]
                if request.proba and proba is not None
                else labels[offset : offset + n]
            )
            request.future._resolve(block)
            offset += n
            self.stats.latencies.append(done - request.enqueued)
        self.stats.n_requests += len(batch)
        self.stats.n_rows += len(matrix)
        self.stats.n_batches += 1
        self.stats.last_complete = done
