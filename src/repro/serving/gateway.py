"""Asyncio HTTP/JSON gateway: the deployable front door of the serving stack.

Everything below ``serving/`` so far is a *library* — a caller must hold a
:class:`~repro.serving.server.PredictionServer` in-process.  The gateway
turns it into a *service*: a stdlib-only ``asyncio.start_server`` HTTP
endpoint (``repro serve --http``) fronting one or more server replicas,
with the three behaviours a multi-tenant deployment needs:

* **admission control** (:mod:`~repro.serving.admission`) — per-client
  token-bucket quotas keyed by the ``X-Client`` header (or the request's
  ``client`` field), a bounded async waiting room for backpressure, and
  ``429 + Retry-After`` derived from queue depth — never a hang, never a
  blind bounce;
* **request hedging** — with >= 2 replicas, a micro-batch that straggles
  past a p99-derived hedge delay is re-issued to a second replica and the
  first result wins; the loser is cancelled through its tracked
  ``asyncio.Task`` (the Runbook-executor idiom: every in-flight request
  is registered in a task table so shutdown and hedging can cancel by
  handle, not by hope);
* **operability endpoints** — ``POST /models/swap`` / ``POST
  /models/rollback`` ride the content-hash registry for zero-downtime
  model changes, ``GET /healthz`` answers liveness probes, and ``GET
  /stats`` serves the merged :class:`ServingReport` JSON extended with
  gateway counters (admitted, throttled, hedges fired/won, queue-wait
  percentiles).

The HTTP surface is deliberately minimal — request line, headers,
``Content-Length`` bodies, keep-alive — because its clients are curl,
load balancers and SDK loops, not browsers.  No new dependencies.

Endpoints::

    POST /predict          {"rows": [[...], ...], "proba": false}
    POST /models/swap      {"model_dir": "path/to/saved/model"}
    POST /models/rollback  {}
    GET  /healthz
    GET  /stats
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from .admission import AdmissionController, QuotaConfig, ThrottledError
from .compiler import FlatForest
from .registry import ModelRegistry, default_registry, load_compiled_local
from .server import PredictionServer, QueueFullError, ServingReport
from .shm_model import flat_fingerprint

#: Hard ceiling on request-line/header line length (bytes).
_MAX_LINE = 16 * 1024
#: Maximum number of header lines per request.
_MAX_HEADERS = 100


class GatewayError(RuntimeError):
    """Structured gateway failure (startup/shutdown misuse)."""


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway knobs: bind address, quotas, hedging, limits."""

    host: str = "127.0.0.1"
    port: int = 0
    quota: QuotaConfig = field(default_factory=QuotaConfig)
    #: Master switch for hedged dispatch (needs >= 2 replicas to matter).
    hedge: bool = True
    #: Fixed hedge delay in ms; ``None`` derives it from observed p99.
    hedge_after_ms: float | None = None
    #: Adaptive mode: delay = ``hedge_p99_factor`` x observed p99, clamped
    #: to ``[hedge_min_ms, hedge_max_ms]``; before ``hedge_min_samples``
    #: observations it uses ``hedge_initial_ms``.
    hedge_initial_ms: float = 50.0
    hedge_min_ms: float = 1.0
    hedge_max_ms: float = 1000.0
    hedge_p99_factor: float = 1.0
    hedge_min_samples: int = 20
    #: Reject request bodies larger than this (413).
    max_body_bytes: int = 64 * 1024 * 1024
    #: Upper bound on one replica predict (submit + result).
    request_timeout_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.hedge_after_ms is not None and self.hedge_after_ms < 0:
            raise ValueError("hedge_after_ms must be >= 0")
        if self.hedge_min_ms < 0 or self.hedge_max_ms < self.hedge_min_ms:
            raise ValueError("need 0 <= hedge_min_ms <= hedge_max_ms")
        if self.hedge_p99_factor <= 0:
            raise ValueError("hedge_p99_factor must be > 0")
        if self.hedge_min_samples < 1:
            raise ValueError("hedge_min_samples must be >= 1")
        if self.max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        if self.request_timeout_seconds <= 0:
            raise ValueError("request_timeout_seconds must be > 0")


@dataclass
class GatewayStats:
    """Gateway-level counters exposed under ``/stats``'s ``gateway`` key."""

    http_requests: int = 0
    http_errors: int = 0
    admitted: int = 0
    throttled: int = 0
    #: Throttles split by cause (``throttled`` is their roll-up).
    throttled_quota: int = 0
    throttled_queue_full: int = 0
    hedges_fired: int = 0
    hedge_wins: int = 0
    swaps: int = 0
    rollbacks: int = 0
    #: Recent end-to-end predict latencies through the gateway (seconds);
    #: feeds the p99-derived hedge delay.
    latencies: deque = field(default_factory=lambda: deque(maxlen=4096))

    def latency_percentile_ms(self, q: float) -> float:
        """Gateway predict-latency percentile (milliseconds)."""
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), q) * 1e3)


def combine_reports(reports: list[ServingReport]) -> ServingReport:
    """Merge per-replica reports into one fleet-wide ``ServingReport``.

    Counters add; rates add (replicas serve concurrently); latency
    percentiles take the worst replica (a conservative roll-up — exact
    cross-replica percentiles would need the raw samples).
    """
    if not reports:
        raise ValueError("need at least one report to combine")
    n_batches = sum(r.n_batches for r in reports)
    n_rows = sum(r.n_rows for r in reports)
    return ServingReport(
        n_requests=sum(r.n_requests for r in reports),
        n_rows=n_rows,
        n_batches=n_batches,
        rejected=sum(r.rejected for r in reports),
        avg_batch_rows=(n_rows / n_batches) if n_batches else 0.0,
        rows_per_second=sum(r.rows_per_second for r in reports),
        p50_latency_ms=max(r.p50_latency_ms for r in reports),
        p99_latency_ms=max(r.p99_latency_ms for r in reports),
        max_latency_ms=max(r.max_latency_ms for r in reports),
        kernel_seconds=sum(r.kernel_seconds for r in reports),
        rejected_queue_full=sum(r.rejected_queue_full for r in reports),
        rejected_shutdown=sum(r.rejected_shutdown for r in reports),
        fleet=next((r.fleet for r in reports if r.fleet is not None), None),
    )


class _HttpReply(Exception):
    """Short-circuit a handler with a specific status/payload."""

    def __init__(
        self, status: int, payload: dict, headers: dict | None = None
    ) -> None:
        self.status = status
        self.payload = payload
        self.headers = headers or {}
        super().__init__(f"HTTP {status}")


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class Gateway:
    """Asyncio HTTP gateway over one or more ``PredictionServer`` replicas.

    The gateway owns replica lifecycle: :meth:`start` starts every replica
    (fleet replicas fork their workers and publish the model) and binds
    the listening socket; :meth:`stop` cancels tracked in-flight tasks,
    closes the socket and stops the replicas.  Use
    :class:`GatewayThread` to run it from synchronous code.
    """

    def __init__(
        self,
        replicas: list[PredictionServer],
        config: GatewayConfig | None = None,
        registry: ModelRegistry | None = None,
    ) -> None:
        if not replicas:
            raise ValueError("a gateway needs at least one replica")
        problems = {r.predictor.problem for r in replicas}
        if len(problems) > 1:
            raise ValueError("replicas must serve the same problem kind")
        self.replicas = list(replicas)
        self.config = config or GatewayConfig()
        self.stats = GatewayStats()
        self.admission = AdmissionController(self.config.quota)
        self._registry = default_registry() if registry is None else registry
        self._server: asyncio.base_events.Server | None = None
        self._started_monotonic: float | None = None
        #: Tracked in-flight replica dispatches, keyed by a sequence id —
        #: the cancellation ledger (snippet-1 idiom): hedging cancels the
        #: losing entry, shutdown cancels them all.
        self._inflight: dict[int, asyncio.Task] = {}
        self._next_task_id = 0
        self._rr = 0  # round-robin replica cursor
        # Replica waits block a thread (PredictionFuture is threading-
        # based); a dedicated executor keeps them off the loop's default
        # pool so hedges can't be starved by our own waiting requests.
        self._executor: ThreadPoolExecutor | None = None
        #: Model history for rollback: (content key, compiled arrays).
        self._models: list[tuple[str, FlatForest]] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """Bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None:
            raise GatewayError("gateway is not running (call start())")
        return self._server.sockets[0].getsockname()[1]

    @property
    def running(self) -> bool:
        """Whether the listening socket is open."""
        return self._server is not None

    @property
    def model_key(self) -> str:
        """Content hash of the currently served model."""
        if not self._models:
            self._models.append(self._fingerprint_current())
        return self._models[-1][0]

    def _fingerprint_current(self) -> tuple[str, FlatForest]:
        flat = self.replicas[0].predictor.forest
        return flat_fingerprint(flat), flat

    async def start(self) -> "Gateway":
        """Start every replica and open the listening socket."""
        if self._server is not None:
            return self
        self._executor = ThreadPoolExecutor(
            max_workers=max(8, 4 * len(self.replicas)),
            thread_name_prefix="repro-gateway",
        )
        for replica in self.replicas:
            replica.start()
        if not self._models:
            self._models.append(self._fingerprint_current())
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._started_monotonic = time.monotonic()
        return self

    async def stop(self) -> None:
        """Close the socket, cancel tracked tasks, stop the replicas."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        # Cancel the whole in-flight ledger; each dispatch task is
        # tracked, so none can leak past shutdown.
        pending = list(self._inflight.values())
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self._inflight.clear()
        for replica in self.replicas:
            await asyncio.to_thread(replica.stop)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # ------------------------------------------------------------------
    # replica dispatch + hedging
    # ------------------------------------------------------------------
    def _next_replica(self) -> int:
        index = self._rr % len(self.replicas)
        self._rr += 1
        return index

    def _blocking_predict(
        self,
        index: int,
        matrix: np.ndarray,
        proba: bool,
        cancelled: threading.Event,
    ) -> np.ndarray:
        """One replica attempt on an executor thread.

        Polls the replica future in short slices so a cancelled attempt
        (hedge lost, shutdown) releases its executor slot within one
        slice — the replica still finishes the abandoned micro-batch,
        but no thread sits on it.
        """
        replica = self.replicas[index]
        future = replica.submit(matrix, proba=proba)
        deadline = time.monotonic() + self.config.request_timeout_seconds
        while True:
            try:
                return future.result(timeout=0.05)
            except TimeoutError:
                if cancelled.is_set():
                    raise
                if time.monotonic() >= deadline:
                    raise

    def _spawn(self, index: int, matrix: np.ndarray, proba: bool):
        """Dispatch one replica attempt as a tracked ``asyncio.Task``."""
        loop = asyncio.get_running_loop()
        cancelled = threading.Event()

        async def attempt() -> np.ndarray:
            return await loop.run_in_executor(
                self._executor,
                self._blocking_predict,
                index,
                matrix,
                proba,
                cancelled,
            )

        task_id = self._next_task_id
        self._next_task_id += 1
        task = loop.create_task(attempt(), name=f"predict-{task_id}-r{index}")
        self._inflight[task_id] = task

        def _finalize(done_task: asyncio.Task) -> None:
            if done_task.cancelled():
                cancelled.set()
            self._inflight.pop(task_id, None)

        task.add_done_callback(_finalize)
        return task

    def hedge_delay_seconds(self) -> float:
        """Current hedge delay: fixed, or p99-derived with clamping."""
        cfg = self.config
        if cfg.hedge_after_ms is not None:
            return cfg.hedge_after_ms / 1e3
        if len(self.stats.latencies) < cfg.hedge_min_samples:
            return cfg.hedge_initial_ms / 1e3
        p99_ms = self.stats.latency_percentile_ms(99)
        return (
            min(max(p99_ms * cfg.hedge_p99_factor, cfg.hedge_min_ms),
                cfg.hedge_max_ms)
            / 1e3
        )

    async def _predict(
        self, matrix: np.ndarray, proba: bool
    ) -> tuple[np.ndarray, int, bool]:
        """Serve one request, hedging stragglers across replicas.

        Returns ``(result, winning replica index, hedge won)``.
        """
        primary_index = self._next_replica()
        primary = self._spawn(primary_index, matrix, proba)
        attempts: dict[asyncio.Task, int] = {primary: primary_index}
        hedge = None
        if self.config.hedge and len(self.replicas) > 1:
            done, _ = await asyncio.wait(
                {primary}, timeout=self.hedge_delay_seconds()
            )
            if not done:
                # The neighbour replica, without consuming the primary
                # rotation — hedges must not skew which replica the next
                # request primaries on.
                hedge_index = (primary_index + 1) % len(self.replicas)
                hedge = self._spawn(hedge_index, matrix, proba)
                attempts[hedge] = hedge_index
                self.stats.hedges_fired += 1
        pending = set(attempts)
        first_error: BaseException | None = None
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for task in done:
                error = task.exception()
                if error is None:
                    # Winner: cancel the straggler through its tracked
                    # task — its thread-side result, if any, is dropped.
                    for loser in pending:
                        loser.cancel()
                    if hedge is not None and task is hedge:
                        self.stats.hedge_wins += 1
                    return task.result(), attempts[task], task is hedge
                if first_error is None:
                    first_error = error
        assert first_error is not None
        raise first_error

    # ------------------------------------------------------------------
    # endpoint handlers
    # ------------------------------------------------------------------
    async def _handle_predict(self, headers: dict, body: dict) -> dict:
        rows = body.get("rows")
        if rows is None:
            raise _HttpReply(400, {"error": "missing 'rows'"})
        try:
            matrix = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        except (TypeError, ValueError):
            raise _HttpReply(
                400, {"error": "'rows' must be numeric row vectors"}
            ) from None
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise _HttpReply(400, {"error": "need at least one row"})
        proba = bool(body.get("proba", False))
        client = str(
            headers.get("x-client") or body.get("client") or "default"
        )
        try:
            queue_wait = await self.admission.admit(client)
        except ThrottledError as error:
            self.stats.throttled += 1
            self.stats.throttled_quota += 1
            raise _HttpReply(
                429,
                {
                    "error": "throttled",
                    "reason": error.reason,
                    "client": client,
                    "retry_after_seconds": error.retry_after,
                },
                headers={
                    "Retry-After": str(max(1, math.ceil(error.retry_after)))
                },
            ) from None
        self.stats.admitted += 1
        started = time.monotonic()
        try:
            result, replica_index, hedged = await self._predict(matrix, proba)
        except QueueFullError as error:
            # The replica's bounded queue pushed back: translate depth
            # into a drain-time hint (one micro-batch flushes at least
            # every max_delay window).
            self.stats.throttled += 1
            self.stats.throttled_queue_full += 1
            delay = self.replicas[0].config.max_delay_seconds
            retry_after = max(0.05, error.queue_depth * delay)
            raise _HttpReply(
                429,
                {
                    "error": "queue full",
                    "queue_depth": error.queue_depth,
                    "capacity": error.capacity,
                    "retry_after_seconds": retry_after,
                },
                headers={"Retry-After": str(max(1, math.ceil(retry_after)))},
            ) from None
        self.stats.latencies.append(time.monotonic() - started)
        return {
            "predictions": result.tolist(),
            "n_rows": int(matrix.shape[0]),
            "proba": proba,
            "replica": replica_index,
            "hedged": hedged,
            "queue_wait_ms": queue_wait * 1e3,
        }

    async def _handle_swap(self, body: dict) -> dict:
        model_dir = body.get("model_dir")
        if not model_dir or not isinstance(model_dir, str):
            raise _HttpReply(400, {"error": "missing 'model_dir'"})
        try:
            entry, cache_hit = await asyncio.to_thread(
                load_compiled_local, model_dir, self._registry
            )
        except (OSError, ValueError, KeyError) as error:
            raise _HttpReply(
                400, {"error": f"cannot load model: {error}"}
            ) from None
        previous_key = self.model_key
        if entry.key == previous_key:
            return {
                "model_key": entry.key,
                "previous_key": previous_key,
                "swapped": False,
                "cache_hit": cache_hit,
            }
        try:
            await self._swap_all(entry.compiled)
        except ValueError as error:
            raise _HttpReply(400, {"error": str(error)}) from None
        self._models.append((entry.key, entry.compiled))
        self.stats.swaps += 1
        return {
            "model_key": entry.key,
            "previous_key": previous_key,
            "swapped": True,
            "cache_hit": cache_hit,
            "replicas": len(self.replicas),
        }

    async def _handle_rollback(self) -> dict:
        if len(self._models) < 2:
            raise _HttpReply(
                409, {"error": "nothing to roll back", "model_key":
                      self.model_key}
            )
        rolled_from_key, _ = self._models.pop()
        target_key, target_flat = self._models[-1]
        await self._swap_all(target_flat)
        self.stats.rollbacks += 1
        return {
            "model_key": target_key,
            "rolled_back_from": rolled_from_key,
            "replicas": len(self.replicas),
        }

    async def _swap_all(self, flat: FlatForest) -> None:
        """Hot-swap every replica (fleet publishes ride the content hash)."""
        for replica in self.replicas:
            await asyncio.to_thread(replica.swap_model, flat)

    def _handle_healthz(self) -> dict:
        uptime = (
            time.monotonic() - self._started_monotonic
            if self._started_monotonic is not None
            else 0.0
        )
        return {
            "status": "ok",
            "replicas": len(self.replicas),
            "model_key": self.model_key,
            "uptime_seconds": uptime,
            "waiting": self.admission.waiting,
            "inflight": len(self._inflight),
        }

    def stats_payload(self) -> dict:
        """The ``/stats`` body: merged ServingReport + gateway counters."""
        merged = combine_reports([r.report() for r in self.replicas])
        merged.gateway = self.gateway_counters()
        payload = merged.to_dict()
        payload["replicas"] = [r.report().to_dict() for r in self.replicas]
        return payload

    def gateway_counters(self) -> dict:
        """The ``gateway`` section of ``/stats`` (all plain JSON types)."""
        s = self.stats
        return {
            "replicas": len(self.replicas),
            "http_requests": s.http_requests,
            "http_errors": s.http_errors,
            "admitted": s.admitted,
            "throttled": s.throttled,
            "throttled_quota": s.throttled_quota,
            "throttled_queue_full": s.throttled_queue_full,
            "hedges_fired": s.hedges_fired,
            "hedge_wins": s.hedge_wins,
            "swaps": s.swaps,
            "rollbacks": s.rollbacks,
            "hedge_delay_ms": self.hedge_delay_seconds() * 1e3,
            "queue_wait_ms_p50":
                self.admission.stats.queue_wait_percentile_ms(50),
            "queue_wait_ms_p99":
                self.admission.stats.queue_wait_percentile_ms(99),
            "gateway_p50_latency_ms": s.latency_percentile_ms(50),
            "gateway_p99_latency_ms": s.latency_percentile_ms(99),
        }

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, headers: dict, body: dict
    ) -> dict:
        if path == "/predict":
            if method != "POST":
                raise _HttpReply(405, {"error": "POST only"})
            return await self._handle_predict(headers, body)
        if path == "/models/swap":
            if method != "POST":
                raise _HttpReply(405, {"error": "POST only"})
            return await self._handle_swap(body)
        if path == "/models/rollback":
            if method != "POST":
                raise _HttpReply(405, {"error": "POST only"})
            return await self._handle_rollback()
        if path == "/healthz":
            if method != "GET":
                raise _HttpReply(405, {"error": "GET only"})
            return self._handle_healthz()
        if path == "/stats":
            if method != "GET":
                raise _HttpReply(405, {"error": "GET only"})
            return self.stats_payload()
        raise _HttpReply(404, {"error": f"no such endpoint: {path}"})

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one HTTP/1.1 request; ``None`` on clean EOF."""
        try:
            line = await reader.readuntil(b"\n")
        except asyncio.IncompleteReadError as eof:
            if not eof.partial:
                return None
            raise _HttpReply(400, {"error": "truncated request"}) from None
        except asyncio.LimitOverrunError:
            raise _HttpReply(400, {"error": "request line too long"}) from None
        if len(line) > _MAX_LINE:
            raise _HttpReply(400, {"error": "request line too long"})
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _HttpReply(400, {"error": "malformed request line"})
        method, target, _version = parts
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            try:
                raw = await reader.readuntil(b"\n")
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
                raise _HttpReply(
                    400, {"error": "truncated headers"}
                ) from None
            text = raw.decode("latin-1").strip()
            if not text:
                break
            name, sep, value = text.partition(":")
            if not sep:
                raise _HttpReply(400, {"error": "malformed header"})
            headers[name.strip().lower()] = value.strip()
        else:
            raise _HttpReply(400, {"error": "too many headers"})
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpReply(400, {"error": "bad Content-Length"}) from None
        if length < 0:
            raise _HttpReply(400, {"error": "bad Content-Length"})
        if length > self.config.max_body_bytes:
            raise _HttpReply(413, {"error": "request body too large"})
        body_bytes = b""
        if length:
            try:
                body_bytes = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise _HttpReply(400, {"error": "truncated body"}) from None
        body: dict = {}
        if body_bytes:
            try:
                body = json.loads(body_bytes)
            except json.JSONDecodeError:
                raise _HttpReply(400, {"error": "body is not JSON"}) from None
            if not isinstance(body, dict):
                raise _HttpReply(
                    400, {"error": "body must be a JSON object"}
                )
        # Strip any query string; endpoints take JSON bodies only.
        path = target.split("?", 1)[0]
        return method.upper(), path, headers, body

    @staticmethod
    def _encode_response(
        status: int, payload: dict, extra_headers: dict, keep_alive: bool
    ) -> bytes:
        body = json.dumps(payload).encode()
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        lines += [f"{name}: {value}" for name, value in extra_headers.items()]
        return ("\r\n".join(lines) + "\r\n\r\n").encode() + body

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                status, payload, extra = 200, None, {}
                keep_alive = True
                try:
                    request = await self._read_request(reader)
                    if request is None:
                        break
                    method, path, headers, body = request
                    self.stats.http_requests += 1
                    keep_alive = (
                        headers.get("connection", "keep-alive").lower()
                        != "close"
                    )
                    payload = await self._dispatch(
                        method, path, headers, body
                    )
                except _HttpReply as reply:
                    status, payload = reply.status, reply.payload
                    extra = reply.headers
                    if status >= 500:
                        self.stats.http_errors += 1
                except asyncio.CancelledError:
                    raise
                except Exception as error:  # noqa: BLE001 - boundary
                    self.stats.http_errors += 1
                    status = 500
                    payload = {
                        "error": f"{type(error).__name__}: {error}"
                    }
                    keep_alive = False
                writer.write(
                    self._encode_response(status, payload, extra, keep_alive)
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass


class GatewayThread:
    """Run a :class:`Gateway` on a dedicated event-loop thread.

    The synchronous face of the gateway for the CLI and tests::

        runner = GatewayThread(gateway).start()   # blocks until bound
        ... HTTP traffic against runner.port ...
        runner.stop()                             # drains and joins

    Startup errors (port in use, replica failure) re-raise in
    :meth:`start` on the calling thread.
    """

    def __init__(self, gateway: Gateway) -> None:
        self.gateway = gateway
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stop_requested = threading.Event()
        self._startup_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_event: asyncio.Event | None = None

    @property
    def port(self) -> int:
        """Bound port of the running gateway."""
        return self.gateway.port

    def start(self) -> "GatewayThread":
        """Start the loop thread; returns once the socket is bound."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-gateway-loop",
            daemon=True,
        )
        self._thread.start()
        self._ready.wait(timeout=60.0)
        if self._startup_error is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
            raise self._startup_error
        return self

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        try:
            await self.gateway.start()
        except BaseException as error:  # noqa: BLE001 - re-raised in start()
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        if self._stop_requested.is_set():  # stop() raced startup
            self._shutdown_event.set()
        await self._shutdown_event.wait()
        await self.gateway.stop()

    def stop(self) -> None:
        """Request shutdown and join the loop thread."""
        thread = self._thread
        if thread is None:
            return
        self._stop_requested.set()
        loop, event = self._loop, self._shutdown_event
        if loop is not None and event is not None:
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
        thread.join(timeout=60.0)
        self._thread = None
