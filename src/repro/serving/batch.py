"""Vectorized batch traversal of compiled trees.

All rows of a batch descend a :class:`~repro.serving.compiler.FlatTree`
together, one level per step, with NumPy doing every comparison — there is
no per-row Python loop anywhere on the serving hot path.  The compiler's
breadth-first node order is what makes a single forward sweep over the
node arrays a level-synchronous descent: rows are partitioned into
per-node row-id sets, parents are always visited before children, and each
node routes its rows with one vectorized test of its split column.

Semantics are *exactly* the node-based descent of ``core/tree.py``:

* a row stops at a leaf, at the ``max_depth`` cutoff, or at the first node
  whose split value is missing (NaN / code ``-1``) or was unseen in that
  node's ``D_x`` during training (paper Appendix D);
* the answer is the prediction stored at the node where the descent stops.

The parity tests in ``tests/test_serving.py`` enforce bit-identical output
against ``DecisionTree.predict_proba`` / ``predict_values`` across problem
kinds, categorical columns, missing values and all truncation depths.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..data.schema import ProblemKind
from ..data.table import DataTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from .compiler import FlatForest, FlatTree

#: Matches compiler.CAT_STOP without importing the module at runtime.
_CAT_STOP = -1
_CAT_LEFT = 1


def traverse_tree(
    tree: "FlatTree",
    columns: Sequence[np.ndarray],
    max_depth: int | None = None,
) -> np.ndarray:
    """Final node id of every row's descent, as an ``int32[n_rows]`` array.

    ``columns`` is the column-major feature data (``float64`` for numeric
    columns, integer codes for categorical ones — float-encoded codes are
    accepted so a serving row-matrix can be a single dense array).
    """
    if not columns:
        return np.zeros(0, dtype=np.int32)
    n_rows = len(columns[0])
    out = np.zeros(n_rows, dtype=np.int32)
    feature = tree.feature
    numeric = tree.numeric
    depth = tree.depth
    threshold = tree.threshold
    left_child = tree.left
    right_child = tree.right
    cat_offset = tree.cat_offset
    cat_len = tree.cat_len
    cat_dir = tree.cat_dir

    # Rows flow down the BFS node order as partitioned row-id sets: node
    # ids ascend level by level, so by the time node ``i`` is reached its
    # inbound row set is final.  Each node costs one vectorized pass over
    # *its own* rows only — the whole batch is touched once per level, the
    # same work profile as training-side ``_fill`` but over flat arrays.
    pending: dict[int, np.ndarray] = {0: np.arange(n_rows, dtype=np.int64)}
    for i in range(feature.size):
        ids = pending.pop(i, None)
        if ids is None or ids.size == 0:
            continue
        col = feature[i]
        if col < 0 or (max_depth is not None and depth[i] >= max_depth):
            out[ids] = i  # leaf or d_max cutoff: the descent settles here
            continue
        values = columns[col][ids]
        if numeric[i]:
            halt = np.isnan(values)
            go_left = (values <= threshold[i]) & ~halt
        else:
            codes = values.astype(np.int64)
            in_range = (codes >= 0) & (codes < cat_len[i])
            direction = np.full(codes.size, _CAT_STOP, dtype=np.int8)
            direction[in_range] = cat_dir[cat_offset[i] + codes[in_range]]
            halt = direction == _CAT_STOP
            go_left = direction == _CAT_LEFT
        if halt.any():
            out[ids[halt]] = i  # missing/unseen split value: stop at node
            keep = ~halt
            ids = ids[keep]
            go_left = go_left[keep]
        pending[left_child[i]] = ids[go_left]
        pending[right_child[i]] = ids[~go_left]
    return out


def table_columns(table: DataTable) -> list[np.ndarray]:
    """The column-major view of a :class:`DataTable` the kernel consumes."""
    return table.columns


def matrix_columns(matrix: np.ndarray) -> list[np.ndarray]:
    """Column views of a dense row-major ``(n_rows, n_columns)`` matrix.

    Categorical codes may be float-encoded (``-1.0`` for missing); the
    kernel casts them per node.  This is the entry path of the prediction
    server, whose requests carry raw row vectors rather than tables.
    """
    mat = np.asarray(matrix, dtype=np.float64)
    if mat.ndim != 2:
        raise ValueError(f"expected a 2-D row matrix, got shape {mat.shape}")
    return [np.ascontiguousarray(mat[:, i]) for i in range(mat.shape[1])]


class BatchPredictor:
    """Vectorized prediction over a compiled forest.

    The public surface mirrors :class:`~repro.ensemble.forest.ForestModel`
    (``predict`` / ``predict_proba`` / ``predict_values`` with optional
    ``max_depth``) so callers can swap engines, plus ``*_columns`` variants
    that skip the :class:`DataTable` wrapper for raw serving batches.
    """

    def __init__(self, forest: "FlatForest") -> None:
        self.forest = forest

    @property
    def problem(self) -> ProblemKind:
        """Problem kind of the compiled model."""
        return self.forest.problem

    @property
    def n_classes(self) -> int:
        """Target cardinality (0 for regression)."""
        return self.forest.n_classes

    # ------------------------------------------------------------------
    # column-level entry points (serving hot path)
    # ------------------------------------------------------------------
    def predict_proba_columns(
        self,
        columns: Sequence[np.ndarray],
        max_depth: int | None = None,
    ) -> np.ndarray:
        """Average class PMFs over all trees, shape ``(n_rows, n_classes)``."""
        if self.forest.problem is not ProblemKind.CLASSIFICATION:
            raise ValueError("predict_proba requires a classification model")
        n_rows = len(columns[0]) if columns else 0
        acc = np.zeros((n_rows, self.forest.n_classes), dtype=np.float64)
        for tree in self.forest.trees:
            acc += tree.predictions[traverse_tree(tree, columns, max_depth)]
        acc /= self.forest.n_trees
        return acc

    def predict_values_columns(
        self,
        columns: Sequence[np.ndarray],
        max_depth: int | None = None,
    ) -> np.ndarray:
        """Average regression predictions over all trees, ``(n_rows,)``."""
        if self.forest.problem is not ProblemKind.REGRESSION:
            raise ValueError("predict_values requires a regression model")
        n_rows = len(columns[0]) if columns else 0
        acc = np.zeros(n_rows, dtype=np.float64)
        for tree in self.forest.trees:
            acc += tree.predictions[traverse_tree(tree, columns, max_depth), 0]
        acc /= self.forest.n_trees
        return acc

    def predict_columns(
        self,
        columns: Sequence[np.ndarray],
        max_depth: int | None = None,
    ) -> np.ndarray:
        """Predicted labels (classification) or values (regression)."""
        if self.forest.problem is ProblemKind.CLASSIFICATION:
            return np.argmax(
                self.predict_proba_columns(columns, max_depth), axis=1
            )
        return self.predict_values_columns(columns, max_depth)

    # ------------------------------------------------------------------
    # table-level entry points (drop-in for ForestModel)
    # ------------------------------------------------------------------
    def predict_proba(
        self, table: DataTable, max_depth: int | None = None
    ) -> np.ndarray:
        """Class PMFs for a :class:`DataTable` batch."""
        return self.predict_proba_columns(table_columns(table), max_depth)

    def predict_values(
        self, table: DataTable, max_depth: int | None = None
    ) -> np.ndarray:
        """Regression predictions for a :class:`DataTable` batch."""
        return self.predict_values_columns(table_columns(table), max_depth)

    def predict(
        self, table: DataTable, max_depth: int | None = None
    ) -> np.ndarray:
        """Labels or values for a :class:`DataTable` batch."""
        return self.predict_columns(table_columns(table), max_depth)

    # ------------------------------------------------------------------
    # row-matrix entry point (prediction server requests)
    # ------------------------------------------------------------------
    def predict_matrix(
        self, matrix: np.ndarray, max_depth: int | None = None
    ) -> np.ndarray:
        """Predict a dense ``(n_rows, n_columns)`` row matrix."""
        return self.predict_columns(matrix_columns(matrix), max_depth)

    def predict_proba_matrix(
        self, matrix: np.ndarray, max_depth: int | None = None
    ) -> np.ndarray:
        """Class PMFs for a dense row matrix."""
        return self.predict_proba_columns(matrix_columns(matrix), max_depth)
