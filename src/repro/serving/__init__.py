"""Inference serving: flat-array tree kernels, registry and server.

Training-side modules keep the paper's node-centric ``TreeNode`` objects —
they are what the master grafts subtree-task results onto.  Serving has the
opposite access pattern: millions of rows descend a *frozen* tree, so this
package compiles trained models into contiguous structure-of-arrays form
(the layout step that "Breadth-first, Depth-next" and the GPU-boosting line
of work identify as the key to hardware-speed traversal) and serves them:

* :mod:`compiler` — flatten ``DecisionTree`` / ``ForestModel`` / cascade
  forests into :class:`FlatTree` / :class:`FlatForest` /
  :class:`CompiledCascade` arrays, exact parity with node-based descent;
* :mod:`batch` — level-synchronous vectorized traversal over those arrays
  (``predict`` / ``predict_proba`` / truncated-depth prediction);
* :mod:`registry` — content-hash keyed cache of compiled models, so
  repeated prediction jobs stop reloading and recompiling;
* :mod:`server` — an in-process micro-batching :class:`PredictionServer`
  with a bounded queue and latency/throughput counters.
"""

from .batch import BatchPredictor, traverse_tree
from .compiler import (
    CompiledCascade,
    FlatForest,
    FlatTree,
    compile_cascade,
    compile_forest,
    compile_tree,
)
from .registry import (
    ModelRegistry,
    RegistryEntry,
    default_registry,
    load_compiled_hdfs,
    load_compiled_local,
)
from .server import (
    PredictionServer,
    ServerConfig,
    ServingReport,
    ServingStats,
)

__all__ = [
    "BatchPredictor",
    "CompiledCascade",
    "FlatForest",
    "FlatTree",
    "ModelRegistry",
    "PredictionServer",
    "RegistryEntry",
    "ServerConfig",
    "ServingReport",
    "ServingStats",
    "compile_cascade",
    "compile_forest",
    "compile_tree",
    "default_registry",
    "load_compiled_hdfs",
    "load_compiled_local",
    "traverse_tree",
]
