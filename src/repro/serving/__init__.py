"""Inference serving: flat-array tree kernels, registry, server, fleet.

Training-side modules keep the paper's node-centric ``TreeNode`` objects —
they are what the master grafts subtree-task results onto.  Serving has the
opposite access pattern: millions of rows descend a *frozen* tree, so this
package compiles trained models into contiguous structure-of-arrays form
(the layout step that "Breadth-first, Depth-next" and the GPU-boosting line
of work identify as the key to hardware-speed traversal) and serves them:

* :mod:`compiler` — flatten ``DecisionTree`` / ``ForestModel`` / cascade
  forests into :class:`FlatTree` / :class:`FlatForest` /
  :class:`CompiledCascade` arrays, exact parity with node-based descent;
  opt-in ``quantize=True`` compacts arrays to float32/int16 within the
  :data:`~repro.serving.compiler.QUANTIZE_ATOL` tolerance;
* :mod:`batch` — level-synchronous vectorized traversal over those arrays
  (``predict`` / ``predict_proba`` / truncated-depth prediction);
* :mod:`registry` — content-hash keyed, thread-safe cache of compiled
  models, so repeated prediction jobs stop reloading and recompiling;
* :mod:`server` — an in-process micro-batching :class:`PredictionServer`
  with a bounded queue and latency/throughput counters;
* :mod:`shm_model` — compiled models as shared-memory images
  (:class:`SharedCompiledModel`): publish once, map everywhere;
* :mod:`fleet` — :class:`ServingFleet`, N OS worker processes serving
  contiguous shards of every micro-batch from the shared image, with hot
  model swap and respawn-on-death (``PredictionServer(n_workers=N)``);
* :mod:`admission` — per-client token-bucket quotas with a bounded async
  waiting room (backpressure before rejection);
* :mod:`gateway` — the asyncio HTTP/JSON :class:`Gateway` over one or
  more server replicas: admission control, hedged dispatch of straggling
  requests, hot swap/rollback endpoints (``repro serve --http``).
"""

from .admission import (
    AdmissionController,
    QuotaConfig,
    ThrottledError,
    TokenBucket,
)

from .batch import BatchPredictor, traverse_tree
from .compiler import (
    QUANTIZE_ATOL,
    QUANTIZE_MIN_AGREEMENT,
    CompiledCascade,
    FlatForest,
    FlatTree,
    compile_cascade,
    compile_forest,
    compile_tree,
)
from .fleet import (
    FleetClosedError,
    FleetError,
    FleetWorkerError,
    ServingFleet,
)
from .gateway import (
    Gateway,
    GatewayConfig,
    GatewayStats,
    GatewayThread,
    combine_reports,
)
from .registry import (
    ModelRegistry,
    RegistryEntry,
    default_registry,
    load_compiled_hdfs,
    load_compiled_local,
    quantized_key,
)
from .server import (
    PredictionServer,
    ServerConfig,
    ServingReport,
    ServingStats,
)
from .shm_model import AttachedModel, SharedCompiledModel, flat_fingerprint

__all__ = [
    "AdmissionController",
    "AttachedModel",
    "BatchPredictor",
    "CompiledCascade",
    "FlatForest",
    "FlatTree",
    "FleetClosedError",
    "FleetError",
    "FleetWorkerError",
    "Gateway",
    "GatewayConfig",
    "GatewayStats",
    "GatewayThread",
    "ModelRegistry",
    "PredictionServer",
    "QuotaConfig",
    "ThrottledError",
    "TokenBucket",
    "QUANTIZE_ATOL",
    "QUANTIZE_MIN_AGREEMENT",
    "RegistryEntry",
    "ServerConfig",
    "ServingFleet",
    "ServingReport",
    "ServingStats",
    "SharedCompiledModel",
    "combine_reports",
    "compile_cascade",
    "compile_forest",
    "compile_tree",
    "default_registry",
    "flat_fingerprint",
    "load_compiled_hdfs",
    "load_compiled_local",
    "quantized_key",
    "traverse_tree",
]
