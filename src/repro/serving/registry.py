"""Model registry: a content-addressed cache of compiled models.

The paper's batch-prediction job has every worker "load all the forests
from HDFS" (Section VII) — and before this subsystem existed, this
reproduction re-did that load (and would have re-done the flattening) on
*every* ``predict`` call.  The registry fixes both: compiled models are
cached under a SHA-256 **content hash of the persisted form** (see
``core/persistence.py``), so

* a model published twice under different names or paths still hits the
  same cache line;
* the simulated DFS byte/connection costs of a model load are charged only
  the first time a worker pool sees that content (``core/predictor.py``);
* the evaluation harness and CLI score every model through the flat-array
  kernel without recompiling per call.

Eviction is LRU under two independent bounds: a compiled-**byte** budget
(``max_bytes`` — the bound that matters operationally, since entries can
differ by orders of magnitude in size) and an optional entry-count cap
(``capacity``).  The most recent entry is never evicted, so one oversized
model still serves (and is simply not retained alongside anything else).
Serving deployments pin a handful of hot models; a cold model is one
reload away.

The registry is **thread-safe**: the serving fleet's parent process hits
it from the caller thread (hot swaps), the dispatcher thread (compile on
first submit) and the collector thread (stats), so every lookup/insert/
eviction runs under one re-entrant lock.  ``get_or_compile`` holds the
lock across its whole read-compile-insert sequence — compilation is
serialized on purpose, because two racing threads compiling the same
content hash would both pay the flattening cost and one result would be
thrown away.  Registries are per-process; fleet workers never share one
(they attach compiled images by shm name instead).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from ..core.persistence import (
    fingerprint_trees,
    load_model_hdfs,
    load_model_local,
    model_fingerprint_hdfs,
    model_fingerprint_local,
)
from ..core.tree import DecisionTree
from ..ensemble.forest import ForestModel
from ..hdfs.filesystem import SimHdfs
from .batch import BatchPredictor
from .compiler import FlatForest, compile_forest

#: Default number of compiled models an in-process registry pins.
DEFAULT_CAPACITY = 8


@dataclass
class RegistryEntry:
    """One cached model: source trees plus their compiled form."""

    key: str
    model: ForestModel
    compiled: FlatForest
    predictor: BatchPredictor

    @property
    def n_trees(self) -> int:
        """Ensemble size of the cached model."""
        return self.compiled.n_trees

    @property
    def quantized(self) -> bool:
        """Whether the compiled form uses compact quantized arrays."""
        return self.compiled.quantized

    def nbytes(self) -> int:
        """Bytes held by the compiled arrays (cache accounting)."""
        return self.compiled.nbytes()


@dataclass
class RegistryStats:
    """Hit/miss counters surfaced in serving reports."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    compiled_nodes: int = 0
    #: Compiled bytes of evicted entries (byte-budget pressure indicator).
    bytes_evicted: int = 0
    #: High-water mark of resident compiled bytes.
    peak_bytes: int = 0

    @property
    def lookups(self) -> int:
        """Total number of cache lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        return self.hits / self.lookups if self.lookups else 0.0


#: Cache-key suffix separating a model's quantized compiled form from its
#: exact one — same source trees, different arrays, so they must never
#: share a cache line.
QUANTIZED_KEY_SUFFIX = "+q32"


def quantized_key(key: str, quantize: bool) -> str:
    """The registry key of ``key``'s exact or quantized compiled form."""
    return key + QUANTIZED_KEY_SUFFIX if quantize else key


class ModelRegistry:
    """LRU cache of compiled models keyed by persisted-form content hash.

    ``max_bytes`` bounds the total compiled bytes resident (the accounting
    unit that tracks real memory); ``capacity`` optionally also bounds the
    entry count (``None`` disables it).  Either bound evicts least
    recently used first, but never the entry just inserted.

    All operations are safe to call from multiple threads (one re-entrant
    lock; see the module docstring for why compilation stays inside it).
    """

    def __init__(
        self,
        capacity: int | None = DEFAULT_CAPACITY,
        max_bytes: int | None = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("registry capacity must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("registry max_bytes must be >= 1")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self.stats = RegistryStats()
        self._entries: "OrderedDict[str, RegistryEntry]" = OrderedDict()
        self._total_bytes = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list[str]:
        """Cached fingerprints, least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    def total_bytes(self) -> int:
        """Compiled bytes currently resident across all entries."""
        with self._lock:
            return self._total_bytes

    def clear(self) -> None:
        """Drop every cached model (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._total_bytes = 0

    # ------------------------------------------------------------------
    def get(self, key: str) -> RegistryEntry | None:
        """Cache lookup; refreshes LRU position and counts hit/miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(
        self, key: str, model: ForestModel, quantize: bool = False
    ) -> RegistryEntry:
        """Compile and cache a model under ``key``, evicting LRU overflow.

        The whole compile-insert-evict sequence runs under the registry
        lock: hit/miss counters, ``_total_bytes`` and the LRU order stay
        mutually consistent no matter how many threads race, and two
        threads can never both compile the same key (the second blocks,
        then replaces — same arrays, no corruption).
        """
        with self._lock:
            compiled = compile_forest(model, quantize=quantize)
            entry = RegistryEntry(
                key=key,
                model=model,
                compiled=compiled,
                predictor=BatchPredictor(compiled),
            )
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._total_bytes -= previous.nbytes()
            self._entries[key] = entry
            self._total_bytes += entry.nbytes()
            self.stats.compiled_nodes += compiled.total_nodes()
            self.stats.peak_bytes = max(
                self.stats.peak_bytes, self._total_bytes
            )
            while len(self._entries) > 1 and self._over_budget():
                _, evicted = self._entries.popitem(last=False)
                self._total_bytes -= evicted.nbytes()
                self.stats.evictions += 1
                self.stats.bytes_evicted += evicted.nbytes()
            return entry

    def _over_budget(self) -> bool:
        """Whether either retention bound is currently exceeded."""
        if self.capacity is not None and len(self._entries) > self.capacity:
            return True
        return (
            self.max_bytes is not None and self._total_bytes > self.max_bytes
        )

    def get_or_compile(
        self,
        model: ForestModel | DecisionTree,
        key: str | None = None,
        quantize: bool = False,
    ) -> tuple[RegistryEntry, bool]:
        """Return the cached entry for an in-memory model, compiling once.

        The key defaults to the model's persisted-form fingerprint, so the
        same trees arriving as objects, local files or DFS files all share
        one cache line; ``quantize=True`` selects the separate quantized
        line (:func:`quantized_key`).  Returns ``(entry, was_cache_hit)``.
        Atomic under the registry lock — concurrent callers with the same
        content get the same entry and exactly one compilation happens.
        """
        if isinstance(model, DecisionTree):
            model = ForestModel([model])
        if key is None:
            key = fingerprint_trees(model.trees)
        key = quantized_key(key, quantize)
        with self._lock:
            entry = self.get(key)
            if entry is not None:
                return entry, True
            return self.put(key, model, quantize=quantize), False


#: Process-wide registry used when callers don't bring their own.
_DEFAULT = ModelRegistry()


def default_registry() -> ModelRegistry:
    """The process-wide default registry instance."""
    return _DEFAULT


# ----------------------------------------------------------------------
# cached loaders over the two persisted forms
# ----------------------------------------------------------------------
def load_compiled_local(
    directory: str | Path, registry: ModelRegistry | None = None
) -> tuple[RegistryEntry, bool]:
    """Load + compile a locally saved model through the registry.

    Hashes the stored bytes first; on a hit the JSON is never parsed and
    nothing is recompiled.  Returns ``(entry, was_cache_hit)``.
    """
    registry = default_registry() if registry is None else registry
    key = model_fingerprint_local(directory)
    entry = registry.get(key)
    if entry is not None:
        return entry, True
    return registry.put(key, load_model_local(directory)), False


def load_compiled_hdfs(
    fs: SimHdfs, base_path: str, registry: ModelRegistry | None = None
) -> tuple[RegistryEntry, bool]:
    """Load + compile a DFS-saved model through the registry."""
    registry = default_registry() if registry is None else registry
    key = model_fingerprint_hdfs(fs, base_path)
    entry = registry.get(key)
    if entry is not None:
        return entry, True
    return registry.put(key, load_model_hdfs(fs, base_path)), False
