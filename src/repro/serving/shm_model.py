"""Compiled models as shared-memory images: map a model, never copy it.

The serving fleet's whole bet — the compact-layout argument of the
GPU-boosting line of work, and the Block-distributed GBT rule of keeping
the big arrays stationary — is that a compiled :class:`FlatForest` is
just a bag of immutable NumPy arrays, so N worker processes should *map*
one copy instead of each unpickling their own.  This module is that
seam:

* :func:`flat_fingerprint` — content hash of a compiled forest's arrays,
  used when a caller publishes an already-compiled model (node-based
  models hash via their persisted form in ``core/persistence.py``);
* :class:`SharedCompiledModel` — a picklable handle describing one
  compiled forest living in a single shared-memory segment
  (:class:`~repro.data.shm.SharedArrayPack`).  The publisher creates it
  once; every fleet worker :meth:`~SharedCompiledModel.attach`\\ es and
  gets a read-only zero-copy :class:`FlatForest` plus a ready
  :class:`~repro.serving.batch.BatchPredictor`.

Lifecycle matches the rest of the shm layer: the creator (the fleet
parent) owns the segment and is the only side that ``unlink``\\ s;
workers only ``close`` their attachments.  On Linux an unlink while a
worker is still mapped is safe — the mapping stays valid until the
worker detaches — so hot swaps never wait on stragglers.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..data.schema import ProblemKind
from ..data.shm import AttachedPack, SharedArrayPack, new_run_prefix
from .batch import BatchPredictor
from .compiler import FlatForest, FlatTree

#: Per-tree array attributes packed into the shared segment, in a fixed
#: order so fingerprints and pack layouts are deterministic.
_TREE_ARRAYS = (
    "feature",
    "numeric",
    "threshold",
    "left",
    "right",
    "depth",
    "predictions",
    "cat_offset",
    "cat_len",
    "cat_dir",
)


def flat_fingerprint(flat: FlatForest) -> str:
    """SHA-256 content hash of a compiled forest's arrays and metadata.

    Covers every array's dtype, shape and bytes plus the forest-level
    metadata, so the exact and quantized compilations of the same trees
    hash differently (their arrays differ), matching the registry's
    separate cache lines.
    """
    digest = hashlib.sha256()
    digest.update(
        f"{flat.problem.value}|{flat.n_classes}|{flat.n_trees}".encode()
    )
    for tree in flat.trees:
        digest.update(f"|{tree.tree_id}|{int(tree.quantized)}".encode())
        for attr in _TREE_ARRAYS:
            array = getattr(tree, attr)
            digest.update(f"|{attr}:{array.dtype}:{array.shape}".encode())
            digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


class AttachedModel:
    """One worker's read-only view of a published compiled model.

    ``forest`` aliases the shared segment (zero copies); ``predictor``
    is the vectorized kernel over it.  ``nbytes`` is the mapped payload
    — the number the fleet's ``shm_bytes_mapped`` counter reports, and
    the number that proves nothing was copied.
    """

    def __init__(
        self,
        key: str,
        forest: FlatForest,
        attachment: AttachedPack,
    ) -> None:
        self.key = key
        self.forest = forest
        self.predictor = BatchPredictor(forest)
        self.nbytes = attachment.nbytes
        self._attachment = attachment

    def close(self) -> None:
        """Unmap the shared segment (idempotent); the views die with it."""
        self._attachment.close()


class SharedCompiledModel:
    """A picklable description of a compiled model living in shm.

    Create once in the publisher (:meth:`create` packs every tree's
    arrays into one named segment), ship the handle to workers by value
    (a few hundred bytes regardless of model size), :meth:`attach`
    there.  The creator — and only the creator — calls :meth:`unlink`
    when the model is retired.
    """

    def __init__(
        self,
        key: str,
        pack: SharedArrayPack,
        problem: ProblemKind,
        n_classes: int,
        tree_ids: list[int],
        quantized: bool,
    ) -> None:
        self.key = key
        self.pack = pack
        self.problem = problem
        self.n_classes = n_classes
        self.tree_ids = tree_ids
        self.quantized = quantized

    # -- lifecycle ------------------------------------------------------
    @classmethod
    def create(
        cls, flat: FlatForest, key: str, prefix: str | None = None
    ) -> "SharedCompiledModel":
        """Publish ``flat`` as one shared-memory segment.

        ``key`` is the model's content hash (registry key); ``prefix``
        defaults to a fresh collision-safe segment name under the
        repo-wide shm prefix, so leak checks and crash sweeps see fleet
        models exactly like every other segment.
        """
        arrays: list[tuple[str, np.ndarray]] = []
        for i, tree in enumerate(flat.trees):
            for attr in _TREE_ARRAYS:
                arrays.append(
                    (f"t{i}.{attr}", np.ascontiguousarray(getattr(tree, attr)))
                )
        segment_name = f"{prefix or new_run_prefix()}-model"
        pack = SharedArrayPack.create(arrays, segment_name)
        return cls(
            key=key,
            pack=pack,
            problem=flat.problem,
            n_classes=flat.n_classes,
            tree_ids=[tree.tree_id for tree in flat.trees],
            quantized=flat.quantized,
        )

    def attach(self) -> AttachedModel:
        """Map the segment and rebuild the forest as read-only views."""
        attachment = self.pack.attach()
        try:
            trees = []
            for i, tree_id in enumerate(self.tree_ids):
                fields = {
                    attr: attachment.arrays[f"t{i}.{attr}"]
                    for attr in _TREE_ARRAYS
                }
                trees.append(
                    FlatTree(
                        problem=self.problem,
                        n_classes=self.n_classes,
                        tree_id=tree_id,
                        quantized=self.quantized,
                        **fields,
                    )
                )
            forest = FlatForest(
                trees=trees, problem=self.problem, n_classes=self.n_classes
            )
        except BaseException:
            attachment.close()
            raise
        return AttachedModel(self.key, forest, attachment)

    def unlink(self) -> None:
        """Destroy the segment (creator only; idempotent)."""
        self.pack.unlink()

    # -- introspection --------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Payload bytes of the packed model image."""
        return self.pack.nbytes

    @property
    def n_trees(self) -> int:
        """Ensemble size of the published model."""
        return len(self.tree_ids)

    def segment_names(self) -> list[str]:
        """The (single) segment name this handle describes."""
        return [self.pack.segment]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedCompiledModel(key={self.key[:12]}..., "
            f"trees={self.n_trees}, nbytes={self.nbytes}, "
            f"quantized={self.quantized})"
        )
