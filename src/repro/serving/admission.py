"""Admission control for the serving gateway: quotas and backpressure.

The in-process :class:`~repro.serving.server.PredictionServer` sheds load
with blind rejection — a full queue raises ``QueueFullError`` and the
caller is on its own.  A multi-tenant gateway needs two things that are
missing from that picture:

* **per-client quotas** — one greedy tenant must not starve the rest, so
  every client (the ``X-Client`` header / request field) gets its own
  token bucket: a sustained ``rate`` requests/second with ``burst``
  headroom for spikes;
* **backpressure before rejection** — a request that misses a token is
  not bounced immediately.  It enters a **bounded async waiting room**
  and parks (no thread held, it is an ``await``) until its bucket refills.
  Only when the room is full, or the projected wait exceeds
  ``max_wait_seconds``, does the gateway answer ``429`` — and then with a
  ``Retry-After`` computed from the *queue depth* (how many requests are
  already parked ahead on the same bucket), so a well-behaved client can
  back off precisely instead of hammering.

:class:`ThrottledError` carries that computed ``retry_after`` hint the
same way ``QueueFullError`` carries ``queue_depth``/``capacity``:
structured attributes, not message parsing.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np


class ThrottledError(Exception):
    """Request refused by admission control; carries the backoff hint.

    ``retry_after`` is the seconds a client should wait before retrying
    (queue-depth derived); ``reason`` says which bound tripped
    (``"waiting room full"`` or ``"projected wait too long"``).
    """

    def __init__(self, retry_after: float, reason: str) -> None:
        self.retry_after = retry_after
        self.reason = reason
        super().__init__(
            f"throttled ({reason}); retry after {retry_after:.2f}s"
        )


@dataclass(frozen=True)
class QuotaConfig:
    """Per-client quota and waiting-room bounds.

    ``rate=None`` disables quotas entirely (every request is admitted
    immediately); otherwise each client sustains ``rate`` requests/second
    with ``burst`` tokens of headroom.  ``max_waiters`` bounds the total
    parked requests across all clients; ``max_wait_seconds`` bounds how
    long any one request may be parked before it is 429'd instead.
    """

    rate: float | None = None
    burst: int = 32
    max_waiters: int = 64
    max_wait_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.rate is not None and self.rate <= 0:
            raise ValueError("quota rate must be > 0 (or None to disable)")
        if self.burst < 1:
            raise ValueError("quota burst must be >= 1")
        if self.max_waiters < 0:
            raise ValueError("max_waiters must be >= 0")
        if self.max_wait_seconds < 0:
            raise ValueError("max_wait_seconds must be >= 0")


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Not thread-safe on purpose — the gateway touches it only from the
    event loop, where awaits (not preemption) are the interleave points.
    """

    __slots__ = ("rate", "burst", "tokens", "stamp", "waiters")

    def __init__(self, rate: float, burst: int) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = time.monotonic()
        #: Requests currently parked on this bucket (queue depth).
        self.waiters = 0

    def _refill(self, now: float) -> None:
        self.tokens = min(
            self.burst, self.tokens + (now - self.stamp) * self.rate
        )
        self.stamp = now

    def try_take(self) -> bool:
        """Take one token if available right now."""
        self._refill(time.monotonic())
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def eta_seconds(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` tokens will have accumulated."""
        self._refill(time.monotonic())
        return max(0.0, (tokens - self.tokens) / self.rate)


@dataclass
class AdmissionStats:
    """Counters the gateway folds into its ``/stats`` payload."""

    admitted: int = 0
    throttled: int = 0
    #: Most recent queue waits of admitted requests (seconds).
    queue_waits: deque = field(default_factory=lambda: deque(maxlen=65536))

    def queue_wait_percentile_ms(self, q: float) -> float:
        """Queue-wait percentile over the recorded window, milliseconds."""
        if not self.queue_waits:
            return 0.0
        return float(np.percentile(np.asarray(self.queue_waits), q) * 1e3)


class AdmissionController:
    """Token-bucket quotas with a bounded asynchronous waiting room.

    ``await admit(client)`` either returns the seconds the request spent
    parked (0.0 on the fast path) or raises :class:`ThrottledError` with
    a queue-depth-derived ``retry_after``.  All state is event-loop
    confined; no locks are needed.
    """

    def __init__(self, config: QuotaConfig | None = None) -> None:
        self.config = config or QuotaConfig()
        self.stats = AdmissionStats()
        self._buckets: dict[str, TokenBucket] = {}
        self._waiting = 0

    def bucket_for(self, client: str) -> TokenBucket | None:
        """The client's bucket (``None`` when quotas are disabled)."""
        if self.config.rate is None:
            return None
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self.config.rate, self.config.burst)
            self._buckets[client] = bucket
        return bucket

    @property
    def waiting(self) -> int:
        """Requests currently parked across all clients."""
        return self._waiting

    async def admit(self, client: str) -> float:
        """Admit one request for ``client``; returns parked seconds."""
        cfg = self.config
        bucket = self.bucket_for(client)
        if bucket is None:
            self.stats.admitted += 1
            return 0.0
        # Fast path only when nobody from this client is already parked —
        # a late arrival must not jump its own client's queue.
        if bucket.waiters == 0 and bucket.try_take():
            self.stats.admitted += 1
            self.stats.queue_waits.append(0.0)
            return 0.0
        # Projected wait for this request: every request parked ahead on
        # the same bucket needs a token first.
        eta = bucket.eta_seconds(tokens=bucket.waiters + 1.0)
        if self._waiting >= cfg.max_waiters:
            self.stats.throttled += 1
            raise ThrottledError(max(eta, 1.0 / bucket.rate),
                                 "waiting room full")
        if eta > cfg.max_wait_seconds:
            self.stats.throttled += 1
            raise ThrottledError(eta, "projected wait too long")
        bucket.waiters += 1
        self._waiting += 1
        started = time.monotonic()
        # Hard deadline: the eta is an estimate (same-client arrivals may
        # race for refills), so bound the park absolutely.
        deadline = started + cfg.max_wait_seconds + eta
        try:
            while not bucket.try_take():
                now = time.monotonic()
                if now >= deadline:
                    self.stats.throttled += 1
                    raise ThrottledError(
                        bucket.eta_seconds(tokens=bucket.waiters),
                        "projected wait too long",
                    )
                await asyncio.sleep(
                    min(0.005, max(bucket.eta_seconds(), 0.0005))
                )
        finally:
            bucket.waiters -= 1
            self._waiting -= 1
        waited = time.monotonic() - started
        self.stats.admitted += 1
        self.stats.queue_waits.append(waited)
        return waited
