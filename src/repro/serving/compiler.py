"""Compile node-based tree models into flat structure-of-arrays form.

A trained :class:`~repro.core.tree.DecisionTree` is a graph of Python
objects — ideal for the master's graft-subtrees-onto-nodes protocol, hostile
to batch prediction (every row descent chases pointers and re-enters the
interpreter per node).  The compiler freezes a tree into parallel NumPy
arrays indexed by node id:

* ``feature[i]`` — split column of node ``i`` (``-1`` for leaves);
* ``numeric[i]`` / ``threshold[i]`` — ordinal split condition;
* ``cat_offset[i]`` / ``cat_len[i]`` — slice of the shared ``cat_dir``
  direction table for categorical splits (see below);
* ``left[i]`` / ``right[i]`` — child node ids (``-1`` for leaves);
* ``depth[i]`` — absolute node depth, for ``d_max`` truncation;
* ``predictions[i]`` — the node's PMF row (classification) or mean
  (regression), because *every* TreeServer node carries a prediction
  (paper Appendix D) and descents may stop anywhere.

Nodes are laid out in **breadth-first order**, so node ids are sorted by
depth.  Two things follow: level-synchronous traversal touches one
contiguous band of the arrays per step, and truncating a tree at depth
``d`` is literally slicing a prefix of every array (:meth:`FlatTree.truncated`).

Categorical splits keep the paper's stop-at-node semantics exactly: the
direction table maps a category code to ``LEFT`` (in ``S_l``), ``RIGHT``
(seen in the node's ``D_x`` but not in ``S_l``) or ``STOP`` (missing code
``-1`` or a value unseen at this node during training).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.tree import DecisionTree, TreeNode
from ..data.schema import ColumnKind, ProblemKind
from ..ensemble.forest import ForestModel

#: Direction codes stored in :attr:`FlatTree.cat_dir`.
CAT_LEFT: int = 1
CAT_RIGHT: int = 0
CAT_STOP: int = -1

#: Documented tolerance of quantized mode (``quantize=True``): per-row PMF
#: (or regression) values differ from exact float64 mode by at most this,
#: *except* for rows whose split-column value lies within one float32 ulp
#: of a numeric threshold — float32 rounding may route such a row to the
#: sibling subtree.  For continuous features the measure of that boundary
#: band is ~1e-7 relative, so agreement in practice is ≈ 100%; the pinned
#: regression test asserts label agreement >= :data:`QUANTIZE_MIN_AGREEMENT`.
QUANTIZE_ATOL: float = 1e-6
QUANTIZE_MIN_AGREEMENT: float = 0.995


@dataclass
class FlatTree:
    """One decision tree as parallel arrays (breadth-first node order)."""

    feature: np.ndarray  # int32[n]; -1 marks a leaf
    numeric: np.ndarray  # bool[n]; split kind of the node's column
    threshold: np.ndarray  # float64[n]; NaN for non-numeric nodes
    left: np.ndarray  # int32[n]; -1 for leaves
    right: np.ndarray  # int32[n]; -1 for leaves
    depth: np.ndarray  # int32[n]; sorted ascending (BFS layout)
    predictions: np.ndarray  # float64[n, k] (k = n_classes, or 1 for regression)
    cat_offset: np.ndarray  # int64[n]; -1 for non-categorical nodes
    cat_len: np.ndarray  # int32[n]; 0 for non-categorical nodes
    cat_dir: np.ndarray  # int8[total]; CAT_LEFT / CAT_RIGHT / CAT_STOP
    problem: ProblemKind
    n_classes: int = 0
    tree_id: int = 0
    #: Compact dtypes (float32 thresholds/predictions, int16 ids); see
    #: :data:`QUANTIZE_ATOL` for the accuracy contract.
    quantized: bool = False

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the compiled tree."""
        return int(self.feature.size)

    @property
    def max_depth(self) -> int:
        """Depth of the deepest node (root is depth 0)."""
        return int(self.depth[-1]) if self.depth.size else 0

    def nbytes(self) -> int:
        """Total bytes of all arrays (serving memory accounting)."""
        return int(
            sum(
                a.nbytes
                for a in (
                    self.feature, self.numeric, self.threshold, self.left,
                    self.right, self.depth, self.predictions,
                    self.cat_offset, self.cat_len, self.cat_dir,
                )
            )
        )

    def truncated(self, max_depth: int) -> "FlatTree":
        """Slice the tree at ``max_depth`` — the BFS layout makes this a
        prefix cut of every array, with the cut level's nodes made leaves.

        Prediction on the sliced tree equals prediction on the full tree
        with the same ``max_depth`` argument, but the sliced model is
        smaller — the serving answer to the paper's observation that one
        ``d_max`` tree contains every shallower tree (Appendix D).
        """
        if max_depth < 0:
            raise ValueError("max_depth must be >= 0")
        keep = int(np.searchsorted(self.depth, max_depth, side="right"))
        keep = max(keep, 1)
        cut = self.depth[:keep] >= max_depth
        feature = self.feature[:keep].copy()
        left = self.left[:keep].copy()
        right = self.right[:keep].copy()
        feature[cut] = -1
        left[cut] = -1
        right[cut] = -1
        return FlatTree(
            feature=feature,
            numeric=self.numeric[:keep].copy(),
            threshold=self.threshold[:keep].copy(),
            left=left,
            right=right,
            depth=self.depth[:keep].copy(),
            predictions=self.predictions[:keep].copy(),
            cat_offset=self.cat_offset[:keep].copy(),
            cat_len=self.cat_len[:keep].copy(),
            cat_dir=self.cat_dir.copy(),
            problem=self.problem,
            n_classes=self.n_classes,
            tree_id=self.tree_id,
            quantized=self.quantized,
        )

    def quantized_copy(self) -> "FlatTree":
        """This tree with compact array dtypes (opt-in ``quantize=True``).

        Thresholds and predictions narrow to ``float32``; the small id
        arrays (``feature``, ``depth``, ``cat_len``) narrow to ``int16``.
        Node ids (``left`` / ``right``) stay ``int32`` — trees can exceed
        32k nodes.  Shrinks the shm image roughly 2x and lets the kernel's
        comparisons run twice as many lanes per SIMD register.  Accuracy
        contract: see :data:`QUANTIZE_ATOL`.
        """
        if self.quantized:
            return self
        int16_max = int(np.iinfo(np.int16).max)
        if self.feature.size and int(self.feature.max()) >= int16_max:
            raise ValueError(
                "cannot quantize: split column index exceeds int16 range"
            )
        if self.cat_len.size and int(self.cat_len.max()) >= int16_max:
            raise ValueError(
                "cannot quantize: categorical code range exceeds int16"
            )
        # Ceiling-quantize thresholds: the smallest float32 >= the exact
        # float64 threshold.  Split points are data values, so rows with
        # value == threshold are common; a plain cast rounds down half
        # the time and flips every such row to the right child.  Rounding
        # up keeps ``v <= t`` true for all v <= t — only values inside
        # the sub-ulp interval (t, t32] can mis-route.
        threshold32 = self.threshold.astype(np.float32)
        rounded_down = threshold32.astype(np.float64) < self.threshold
        threshold32[rounded_down] = np.nextafter(
            threshold32[rounded_down], np.float32(np.inf)
        )
        return FlatTree(
            feature=self.feature.astype(np.int16),
            numeric=self.numeric.copy(),
            threshold=threshold32,
            left=self.left.copy(),
            right=self.right.copy(),
            depth=self.depth.astype(np.int16),
            predictions=self.predictions.astype(np.float32),
            cat_offset=self.cat_offset.copy(),
            cat_len=self.cat_len.astype(np.int16),
            cat_dir=self.cat_dir.copy(),
            problem=self.problem,
            n_classes=self.n_classes,
            tree_id=self.tree_id,
            quantized=True,
        )


@dataclass
class FlatForest:
    """A compiled ensemble: one :class:`FlatTree` per member tree."""

    trees: list[FlatTree]
    problem: ProblemKind
    n_classes: int = 0

    def __post_init__(self) -> None:
        if not self.trees:
            raise ValueError("a compiled forest needs at least one tree")

    @property
    def n_trees(self) -> int:
        """Ensemble size."""
        return len(self.trees)

    @property
    def quantized(self) -> bool:
        """Whether member trees carry compact quantized arrays."""
        return self.trees[0].quantized

    @property
    def output_width(self) -> int:
        """Columns of the per-row output block (``n_classes`` or 1)."""
        return self.trees[0].predictions.shape[1]

    def total_nodes(self) -> int:
        """Total node count across all compiled trees."""
        return sum(t.n_nodes for t in self.trees)

    def max_depth(self) -> int:
        """Deepest node depth across member trees."""
        return max(t.max_depth for t in self.trees)

    def nbytes(self) -> int:
        """Total bytes of all member trees' arrays."""
        return sum(t.nbytes() for t in self.trees)

    def truncated(self, max_depth: int) -> "FlatForest":
        """Depth-slice every member tree (see :meth:`FlatTree.truncated`)."""
        return FlatForest(
            trees=[t.truncated(max_depth) for t in self.trees],
            problem=self.problem,
            n_classes=self.n_classes,
        )

    def quantized_copy(self) -> "FlatForest":
        """This forest with every member tree quantized (no-op if already)."""
        if self.quantized:
            return self
        return FlatForest(
            trees=[t.quantized_copy() for t in self.trees],
            problem=self.problem,
            n_classes=self.n_classes,
        )


def compile_tree(tree: DecisionTree, quantize: bool = False) -> FlatTree:
    """Flatten one trained tree into :class:`FlatTree` arrays.

    Exactness contract (default ``quantize=False``): batch traversal of
    the result reproduces ``tree.predict`` / ``tree.predict_proba``
    bit-for-bit, including depth truncation and the missing/unseen
    stop-at-node rule.  ``quantize=True`` opts into compact dtypes
    (:meth:`FlatTree.quantized_copy`) within :data:`QUANTIZE_ATOL`.
    """
    nodes: list[TreeNode] = list(tree.root.breadth_first())
    n = len(nodes)
    index = {id(node): i for i, node in enumerate(nodes)}

    width = tree.n_classes if tree.problem is ProblemKind.CLASSIFICATION else 1
    feature = np.full(n, -1, dtype=np.int32)
    numeric = np.zeros(n, dtype=bool)
    threshold = np.full(n, np.nan, dtype=np.float64)
    left = np.full(n, -1, dtype=np.int32)
    right = np.full(n, -1, dtype=np.int32)
    depth = np.empty(n, dtype=np.int32)
    predictions = np.zeros((n, width), dtype=np.float64)
    cat_offset = np.full(n, -1, dtype=np.int64)
    cat_len = np.zeros(n, dtype=np.int32)
    cat_chunks: list[np.ndarray] = []
    cat_total = 0

    for i, node in enumerate(nodes):
        depth[i] = node.depth
        pred = node.prediction
        if tree.problem is ProblemKind.CLASSIFICATION:
            row = np.asarray(pred, dtype=np.float64)
            if row.shape != (width,):
                raise ValueError(
                    f"node {node.node_id}: PMF shape {row.shape} != ({width},)"
                )
            predictions[i] = row
        else:
            predictions[i, 0] = float(pred)
        split = node.split
        if split is None:
            continue
        assert node.left is not None and node.right is not None
        feature[i] = split.column
        left[i] = index[id(node.left)]
        right[i] = index[id(node.right)]
        if split.kind is ColumnKind.NUMERIC:
            numeric[i] = True
            assert split.threshold is not None
            threshold[i] = split.threshold
        else:
            seen_left = split.left_categories or frozenset()
            seen_right = split.right_categories or frozenset()
            table_len = max(seen_left | seen_right) + 1
            table = np.full(table_len, CAT_STOP, dtype=np.int8)
            table[list(seen_left)] = CAT_LEFT
            table[list(seen_right)] = CAT_RIGHT
            cat_offset[i] = cat_total
            cat_len[i] = table_len
            cat_chunks.append(table)
            cat_total += table_len

    cat_dir = (
        np.concatenate(cat_chunks)
        if cat_chunks
        else np.empty(0, dtype=np.int8)
    )
    flat = FlatTree(
        feature=feature,
        numeric=numeric,
        threshold=threshold,
        left=left,
        right=right,
        depth=depth,
        predictions=predictions,
        cat_offset=cat_offset,
        cat_len=cat_len,
        cat_dir=cat_dir,
        problem=tree.problem,
        n_classes=tree.n_classes,
        tree_id=tree.tree_id,
    )
    return flat.quantized_copy() if quantize else flat


def compile_forest(
    model: ForestModel | DecisionTree, quantize: bool = False
) -> FlatForest:
    """Compile a forest (or a single tree, wrapped as a 1-forest)."""
    if isinstance(model, DecisionTree):
        model = ForestModel([model])
    return FlatForest(
        trees=[compile_tree(t, quantize=quantize) for t in model.trees],
        problem=model.problem,
        n_classes=model.n_classes,
    )


# ----------------------------------------------------------------------
# deep-forest cascades
# ----------------------------------------------------------------------
@dataclass
class CompiledCascadeLayer:
    """One cascade layer: its compiled forests plus the MGS window used."""

    index: int
    grain_window: int
    forests: list[FlatForest] = field(default_factory=list)


@dataclass
class CompiledCascade:
    """A compiled cascade forest (paper Section VII, Fig. 11).

    Mirrors :class:`~repro.deepforest.cascade.CascadeForest` prediction
    exactly: each layer consumes the cycled MGS grain features concatenated
    with the previous layer's per-forest PMFs, and the final prediction is
    the argmax of the last layer's averaged PMFs.
    """

    layers: list[CompiledCascadeLayer]
    n_classes: int

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("a compiled cascade needs at least one layer")

    def total_nodes(self) -> int:
        """Total node count across every layer's forests."""
        return sum(
            f.total_nodes() for layer in self.layers for f in layer.forests
        )

    def _layer_input(
        self,
        layer_index: int,
        grain_features: dict[int, np.ndarray],
        previous_output: np.ndarray | None,
    ) -> np.ndarray:
        windows = sorted(grain_features)
        grain = grain_features[windows[layer_index % len(windows)]]
        if previous_output is None:
            return grain
        return np.concatenate([grain, previous_output], axis=1)

    def predict_proba_per_layer(
        self, grain_features: dict[int, np.ndarray]
    ) -> list[np.ndarray]:
        """PMF predictions after each layer (Table VII accuracy column)."""
        from .batch import BatchPredictor

        outputs: list[np.ndarray] = []
        previous: np.ndarray | None = None
        for layer in self.layers:
            features = self._layer_input(
                layer.index, grain_features, previous
            )
            columns = [
                np.ascontiguousarray(features[:, i])
                for i in range(features.shape[1])
            ]
            blocks = [
                BatchPredictor(forest).predict_proba_columns(columns)
                for forest in layer.forests
            ]
            outputs.append(
                np.mean(np.stack(blocks, axis=1), axis=1)
            )
            previous = np.concatenate(blocks, axis=1)
        return outputs

    def predict_proba(
        self, grain_features: dict[int, np.ndarray]
    ) -> np.ndarray:
        """Final averaged PMFs of the last layer."""
        return self.predict_proba_per_layer(grain_features)[-1]

    def predict(self, grain_features: dict[int, np.ndarray]) -> np.ndarray:
        """Final prediction: argmax of the last layer's averaged PMFs."""
        return np.argmax(self.predict_proba(grain_features), axis=1)


def compile_cascade(cascade) -> CompiledCascade:
    """Compile a fitted :class:`~repro.deepforest.cascade.CascadeForest`."""
    if not getattr(cascade, "layers", None):
        raise ValueError("cascade is not fitted")
    layers = [
        CompiledCascadeLayer(
            index=layer.index,
            grain_window=layer.grain_window,
            forests=[
                compile_forest(trained.forest) for trained in layer.forests
            ],
        )
        for layer in cascade.layers
    ]
    return CompiledCascade(layers=layers, n_classes=cascade.n_classes)
