"""Real-machine stand-ins for the simulator surface the actors consume.

``MasterActor`` and ``WorkerActor`` talk to a small slice of
:class:`~repro.cluster.topology.SimulatedCluster`: ``cost``, ``machines``
(execute / alloc / free / halted), ``engine`` (now / schedule_at),
``network.sender_free_at`` and ``send``.  On the multiprocess backend the
same actor code runs against these shims instead:

* compute submitted to :class:`LocalMachine` runs *immediately on the
  calling OS process* — the op estimate is recorded for metrics but real
  wall-clock is whatever numpy takes;
* :class:`ImmediateEngine` turns ``schedule_at`` into a run-to-completion
  callback queue (drained by the owning event loop), so the master's
  self-rescheduling dispatch pump drains ``B_plan`` without recursion and
  without simulated pacing;
* sends go straight to the backing :class:`~repro.runtime.base.Transport`.

Memory accounting (`alloc`/`free`) is kept live because the protocol's
clean-shutdown invariant — every worker returns to zero task bytes — is
checked on the real backend too (via end-of-run worker stats reports).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from ..cluster.cost import CostModel
from ..cluster.machine import MachineStats
from .base import Transport


class ImmediateEngine:
    """Run-to-completion replacement for the simulation engine.

    ``schedule_at`` enqueues the callback and ignores the timestamp; the
    owner drains the queue after every delivered message.  ``now`` stays
    ``0.0`` — on the real backend, time is wall-clock and lives outside
    the protocol.
    """

    now = 0.0

    def __init__(self) -> None:
        self._pending: deque[Callable[[], None]] = deque()
        self.events_processed = 0

    def schedule_at(self, when: float, fn: Callable[[], None]) -> None:
        """Queue ``fn``; ``when`` is meaningless off the simulator."""
        self._pending.append(fn)

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Relative variant, same semantics."""
        self._pending.append(fn)

    def drain(self) -> None:
        """Run queued callbacks until none remain (they may enqueue more)."""
        while self._pending:
            self._pending.popleft()()
            self.events_processed += 1


class LocalNic:
    """Network stand-in: a real NIC is never artificially busy."""

    def sender_free_at(self, node: int) -> float:
        """The dispatch pump never waits on serialization here."""
        return 0.0


class LocalMachine:
    """A machine whose compute is the hosting OS process itself."""

    def __init__(self, machine_id: int) -> None:
        self.machine_id = machine_id
        self.stats = MachineStats()
        self.record_timeline = False

    @property
    def halted(self) -> bool:
        """A live process is never halted; death is detected externally."""
        return False

    def execute(
        self, ops: float, fn: Callable[[], None], label: str = "task"
    ) -> None:
        """Run ``fn`` right now; keep the op estimate for metrics."""
        if ops < 0:
            raise ValueError("ops must be non-negative")
        self.stats.ops_executed += ops
        self.stats.ops_by_label[label] = (
            self.stats.ops_by_label.get(label, 0.0) + ops
        )
        self.stats.items_executed += 1
        fn()

    def set_base_memory(self, nbytes: int) -> None:
        """Record resident column bytes (reported in worker stats)."""
        self.stats.mem_base_bytes = int(nbytes)

    def alloc(self, nbytes: int) -> None:
        """Charge task memory, tracking the peak."""
        if nbytes < 0:
            raise ValueError("cannot alloc negative bytes")
        self.stats.mem_task_bytes += int(nbytes)
        self.stats.mem_task_peak = max(
            self.stats.mem_task_peak, self.stats.mem_task_bytes
        )

    def free(self, nbytes: int) -> None:
        """Release task memory; going negative is a protocol bug."""
        self.stats.mem_task_bytes -= int(nbytes)
        if self.stats.mem_task_bytes < 0:
            raise RuntimeError(
                f"machine {self.machine_id} freed more task memory than "
                f"allocated"
            )


class LocalCluster:
    """Duck-typed ``SimulatedCluster`` facade over a real transport.

    One instance exists *per OS process*: the master's lives in the parent
    and owns the real :class:`ImmediateEngine` loop; each worker process
    builds its own around the shared queue fabric.  Only the machines
    hosted by this process accumulate meaningful stats.
    """

    MASTER = 0

    def __init__(
        self,
        n_workers: int,
        cost: CostModel,
        transport: Transport,
        extra_machines: int = 0,
    ) -> None:
        self.cost = cost
        self.engine = ImmediateEngine()
        self.network = LocalNic()
        self._n_workers = n_workers
        self.machines = [
            LocalMachine(i) for i in range(n_workers + 1 + extra_machines)
        ]
        self._transport = transport
        # --- send-side metrics (per hosting process) -------------------
        self.messages_sent = 0
        self.bytes_by_kind: dict[str, int] = {}

    @property
    def n_workers(self) -> int:
        """Number of worker machines."""
        return self._n_workers

    def worker_ids(self) -> list[int]:
        """Machine ids of all workers (1-based, master is 0)."""
        return list(range(1, self._n_workers + 1))

    def send(
        self, src: int, dst: int, kind: str, payload: Any, size_bytes: int
    ) -> None:
        """Hand one protocol message to the transport."""
        self.messages_sent += 1
        self.bytes_by_kind[kind] = (
            self.bytes_by_kind.get(kind, 0) + size_bytes
        )
        self._transport.send(src, dst, kind, payload, size_bytes)
