"""Runtime backends: the contract between the protocol and its substrate.

The TreeServer protocol (``core/master.py`` / ``core/worker.py``) is a set
of actors exchanging the typed messages of ``core/tasks.py``.  *Where*
those actors run and *how* the messages travel is the runtime's concern:

* a :class:`Transport` moves one addressed message between machines —
  :class:`~repro.runtime.sim.SimTransport` rides the discrete-event
  ``Network``, :class:`~repro.runtime.process.ProcessTransport` rides
  per-process ``multiprocessing`` queues,
  :class:`~repro.runtime.socket.SocketTransport` rides length-prefixed
  pickled frames over persistent TCP;
* a :class:`Runtime` owns a whole training run on one substrate and
  returns the same :class:`~repro.core.server.RunReport` either way.

``TreeServer(..., backend="sim" | "mp" | "socket")`` picks the runtime
through :func:`create_runtime`; the simulator stays the default.  All
backends run the identical master state machine, and because split
arbitration is ``min (score, column)`` and all per-node randomness
derives from ``(tree seed, node path)``, they produce bit-identical
models (pinned by ``tests/test_runtime_mp.py`` and
``tests/test_runtime_socket.py``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..cluster.cost import CostModel
    from ..core.config import SystemConfig
    from ..core.jobs import TrainingJob
    from ..core.server import RunReport
    from ..data.table import DataTable

#: Names accepted by ``TreeServer(..., backend=...)`` / ``repro train --backend``.
BACKENDS = ("sim", "mp", "socket")

#: Accepted ``RuntimeOptions.fault_policy`` values.  ``fail_fast`` turns a
#: worker crash into a :class:`WorkerDiedError`; ``recover`` feeds it into
#: the master's replica-reassignment + tree-revocation path and keeps
#: training on the survivors.
FAULT_POLICIES = ("fail_fast", "recover")


@runtime_checkable
class Transport(Protocol):
    """Moves one addressed protocol message between machines.

    ``send`` must preserve per-sender FIFO order towards each destination
    — the protocol's extra-trees retry path (task_delete immediately
    followed by a fresh column_plan to the same worker) relies on it.
    Both implementations give this for free: the simulated network
    serializes each sender's NIC FIFO, and a ``multiprocessing`` queue
    preserves the put order of any single producer.
    """

    def send(
        self, src: int, dst: int, kind: str, payload: Any, size_bytes: int
    ) -> None:
        """Deliver ``payload`` from machine ``src`` to machine ``dst``.

        Delivery may be deferred until :meth:`flush` — transports are
        allowed to coalesce several sends into one physical handoff, as
        long as per-sender FIFO order per destination is preserved.
        """
        ...  # pragma: no cover - protocol

    def flush(self) -> None:
        """Push out any coalesced-but-unsent messages (flush-on-idle).

        Event loops call this before blocking on their inbox; transports
        that deliver eagerly implement it as a no-op.
        """
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Release transport resources (idempotent)."""
        ...  # pragma: no cover - protocol


class RuntimeBackendError(RuntimeError):
    """Base class of structured runtime-backend failures."""


class WorkerDiedError(RuntimeBackendError):
    """A worker process exited (or crashed) while training was in flight."""

    def __init__(self, worker_id: int, exitcode: int | None, detail: str = ""):
        self.worker_id = worker_id
        self.exitcode = exitcode
        message = (
            f"worker {worker_id} died mid-run "
            f"(exitcode={exitcode if exitcode is not None else 'unknown'})"
        )
        if detail:
            message += f": {detail}"
        super().__init__(message)


class MessageTimeoutError(RuntimeBackendError):
    """No protocol message arrived within the configured timeout."""

    def __init__(self, timeout_seconds: float, waiting_for: str):
        self.timeout_seconds = timeout_seconds
        super().__init__(
            f"no message for {timeout_seconds:.1f}s while waiting for "
            f"{waiting_for}; transport presumed wedged"
        )


@dataclass(frozen=True)
class RuntimeOptions:
    """Knobs of the runtime backends.

    Most fields concern only the multiprocess backend; the simulator
    honours ``fault_policy`` (its injected ``crash_plans`` respect the
    same fail-fast vs recover choice) and ignores the rest.

    ``message_timeout_seconds`` bounds the silence the master-side driver
    tolerates between protocol messages before declaring the transport
    wedged; ``poll_interval_seconds`` is how often it additionally checks
    worker liveness while waiting.  ``start_method`` picks the
    ``multiprocessing`` context (``None`` = ``fork`` where available,
    else ``spawn`` — both are first-class; anything else the platform
    offers can be named explicitly).  ``crash_worker_after`` is a
    fault-injection hook for tests: ``(worker_id, n_messages)``
    hard-kills that worker process after it handles ``n_messages``
    messages.

    Shared-memory data plane (``docs/RUNTIME.md``): ``use_shm`` places
    the column table in ``multiprocessing.shared_memory`` segments that
    workers map read-only instead of inheriting fork copies (and that
    ``spawn`` workers would otherwise receive as pickles), and routes
    row-id sets of at least ``shm_threshold_bytes`` through a pooled shm
    arena as tiny descriptors instead of pickled arrays; smaller sets
    stay inline.  ``coalesce_max_messages`` caps how many protocol
    messages the transport may batch into one queue put before an
    early flush (flushing otherwise happens whenever an event loop goes
    idle); ``1`` disables coalescing.

    Fault policy: ``fault_policy`` is ``"fail_fast"`` (a worker crash
    raises :class:`WorkerDiedError`), ``"recover"`` (the master reassigns
    the dead worker's columns to surviving replica holders, revokes the
    trees it was involved in, and retrains them on the survivors), or
    ``None`` to take the backend default — ``recover`` on the simulator
    (crash plans are explicit fault experiments), ``fail_fast`` on the
    multiprocess and socket backends (a real crash is surfaced unless
    recovery was asked for).  ``max_worker_failures`` caps how many
    crashes a recovering run absorbs before giving up; recovery also
    requires every column of the dead worker to retain a live replica
    (``k >= 2``).  ``raise_worker_after`` is the soft sibling of
    ``crash_worker_after``: ``(worker_id, n_messages)`` makes that worker
    *raise* (a Python exception shipped home as ``worker_error``) instead
    of hard-dying — the injection hook behind the logic-error recovery
    tests.

    Socket backend (``docs/RUNTIME.md``): ``listen`` is the
    ``host:port`` the master binds for worker rendezvous; ``None`` (the
    default) self-launches the workers as local subprocesses dialing in
    over loopback.  ``expected_hosts`` optionally pins the rendezvous
    roster — a worker whose handshake host id is not in the list is
    rejected.  ``rendezvous_timeout_seconds`` bounds how long the master
    waits for all workers to dial in.

    Training kernel: ``kernel`` overrides ``TreeConfig.kernel`` for every
    tree of every submitted job (``"scalar"`` or ``"vectorized"``, see
    ``docs/RUNTIME.md``); ``None`` leaves the per-job configs alone.  The
    choice is performance-only — both kernels build bit-identical trees.

    Split mode: ``split_mode`` overrides ``TreeConfig.split_mode`` for
    every tree of every submitted job (``"exact"`` or ``"hist"``, see
    docs/RUNTIME.md "Split modes"), and ``max_bins`` likewise overrides
    the histogram bucket cap; ``None`` leaves the per-job configs alone.
    """

    message_timeout_seconds: float = 30.0
    poll_interval_seconds: float = 0.05
    start_method: str | None = None
    crash_worker_after: tuple[int, int] | None = None
    raise_worker_after: tuple[int, int] | None = None
    use_shm: bool = True
    shm_threshold_bytes: int = 8192
    coalesce_max_messages: int = 32
    fault_policy: str | None = None
    max_worker_failures: int = 1
    listen: str | None = None
    expected_hosts: tuple[str, ...] | None = None
    rendezvous_timeout_seconds: float = 60.0
    kernel: str | None = None
    split_mode: str | None = None
    max_bins: int | None = None

    def __post_init__(self) -> None:
        if self.kernel is not None:
            from ..core.config import TREE_KERNELS

            if self.kernel not in TREE_KERNELS:
                raise ValueError(
                    f"unknown kernel {self.kernel!r}; expected one of "
                    f"{TREE_KERNELS} (or None to keep per-job configs)"
                )
        if self.split_mode is not None:
            from ..core.config import SPLIT_MODES

            if self.split_mode not in SPLIT_MODES:
                raise ValueError(
                    f"unknown split_mode {self.split_mode!r}; expected one "
                    f"of {SPLIT_MODES} (or None to keep per-job configs)"
                )
        if self.max_bins is not None and self.max_bins < 2:
            raise ValueError(
                f"max_bins must be >= 2, got {self.max_bins!r} "
                f"(or None to keep per-job configs)"
            )
        if self.fault_policy is not None and self.fault_policy not in FAULT_POLICIES:
            raise ValueError(
                f"unknown fault_policy {self.fault_policy!r}; expected one "
                f"of {FAULT_POLICIES} (or None for the backend default)"
            )
        if self.max_worker_failures < 0:
            raise ValueError("max_worker_failures must be >= 0")
        if self.message_timeout_seconds <= 0:
            raise ValueError(
                f"message_timeout_seconds must be > 0, got "
                f"{self.message_timeout_seconds!r}"
            )
        if self.poll_interval_seconds <= 0:
            raise ValueError(
                f"poll_interval_seconds must be > 0, got "
                f"{self.poll_interval_seconds!r}"
            )
        if self.rendezvous_timeout_seconds <= 0:
            raise ValueError(
                f"rendezvous_timeout_seconds must be > 0, got "
                f"{self.rendezvous_timeout_seconds!r}"
            )
        if self.shm_threshold_bytes < 0:
            raise ValueError(
                f"shm_threshold_bytes must be >= 0, got "
                f"{self.shm_threshold_bytes!r}"
            )
        if self.coalesce_max_messages < 1:
            raise ValueError(
                f"coalesce_max_messages must be >= 1 (1 disables "
                f"coalescing), got {self.coalesce_max_messages!r}"
            )
        for name in ("crash_worker_after", "raise_worker_after"):
            spec = getattr(self, name)
            if spec is None:
                continue
            # Same rule as parse_kill_spec (the REPRO_MP_KILL env form):
            # worker ids start at 1 and the count is 1-based, so a 0
            # entry would silently inject nothing.
            if (
                len(spec) != 2
                or not all(isinstance(entry, int) for entry in spec)
                or spec[0] < 1
                or spec[1] < 1
            ):
                raise ValueError(
                    f"{name} must be a (worker_id, n_messages) pair of "
                    f"integers >= 1, got {spec!r}"
                )

    def resolved_fault_policy(self, backend: str) -> str:
        """The effective policy for a backend (``None`` -> its default)."""
        if self.fault_policy is not None:
            return self.fault_policy
        return "recover" if backend == "sim" else "fail_fast"


class Runtime(abc.ABC):
    """One training substrate; ``fit`` runs the full protocol on it."""

    #: Backend name as accepted by ``TreeServer(..., backend=...)``.
    name: str = ""

    def __init__(self, system: "SystemConfig", cost: "CostModel") -> None:
        self.system = system
        self.cost = cost

    @abc.abstractmethod
    def fit(
        self,
        table: "DataTable",
        jobs: "list[TrainingJob]",
        **kwargs: Any,
    ) -> "RunReport":
        """Train all jobs on the table; returns models plus run metrics."""

    @staticmethod
    def validate(table: "DataTable", jobs: "list[TrainingJob]") -> None:
        """Shared admission checks, identical across backends."""
        if not jobs:
            raise ValueError("no jobs submitted")
        if table.n_rows < 1:
            raise ValueError("empty training table")
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise ValueError("job names must be unique")


def create_runtime(
    backend: str,
    system: "SystemConfig",
    cost: "CostModel",
    options: RuntimeOptions | None = None,
) -> Runtime:
    """Instantiate the runtime for a backend name (one of :data:`BACKENDS`)."""
    if backend == "sim":
        from .sim import SimRuntime

        return SimRuntime(system, cost, options or RuntimeOptions())
    if backend == "mp":
        from .process import ProcessRuntime

        return ProcessRuntime(system, cost, options or RuntimeOptions())
    if backend == "socket":
        from .socket import SocketRuntime

        return SocketRuntime(system, cost, options or RuntimeOptions())
    raise ValueError(
        f"unknown backend {backend!r}; expected one of {BACKENDS}"
    )
