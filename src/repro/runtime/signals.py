"""Ctrl-C hygiene for entry points that may own child processes.

The multiprocess runtime joins its pool in a ``finally`` block, so a
KeyboardInterrupt raised anywhere inside ``fit`` already reaps the
workers.  The CLI adds two layers on top:

* :func:`graceful_sigint` installs an explicit SIGINT handler for the
  duration of a command, guaranteeing the interrupt surfaces as a
  ``KeyboardInterrupt`` at a Python boundary (and not, e.g., dying inside
  a C extension with the default handler half-applied);
* :func:`reap_children` is the last-resort sweep: terminate and join any
  ``multiprocessing`` children still alive, so no orphaned worker ever
  survives a Ctrl-C, whatever state the interrupt found us in.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import signal
from typing import Iterator


def reap_children(join_timeout: float = 5.0) -> int:
    """Terminate and join all live child processes; returns how many."""
    children = multiprocessing.active_children()
    for child in children:
        if child.is_alive():
            child.terminate()
    for child in children:
        child.join(timeout=join_timeout)
        if child.is_alive():  # pragma: no cover - stuck in C code
            child.kill()
            child.join(timeout=join_timeout)
    return len(children)


@contextlib.contextmanager
def graceful_sigint() -> Iterator[None]:
    """Scope in which SIGINT reliably raises KeyboardInterrupt and, on the
    way out, any child processes are drained and joined.

    Restores the previous handler on exit.  Safe to nest; only the
    outermost registration touches the signal disposition (non-main
    threads cannot install handlers, in which case this is reap-only).
    """
    previous = None
    installed = False
    try:
        previous = signal.getsignal(signal.SIGINT)

        def _raise(signum: int, frame: object) -> None:
            raise KeyboardInterrupt

        signal.signal(signal.SIGINT, _raise)
        installed = True
    except ValueError:
        # Not the main thread: keep the existing disposition.
        pass
    try:
        yield
    except KeyboardInterrupt:
        reap_children()
        raise
    finally:
        if installed:
            signal.signal(signal.SIGINT, previous)
