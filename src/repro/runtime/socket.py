"""Socket backend: the TreeServer protocol over persistent TCP.

The third substrate behind the :class:`~repro.runtime.base.Transport`
seam — and the first that can leave one host.  The wire format is
deliberately minimal: **length-prefixed pickled frames** over persistent
TCP connections, one connection per worker, with the master as a frame
hub.

Topology — a hub, not a star of queues:

* the master binds ``RuntimeOptions.listen`` (or a loopback ephemeral
  port in self-launch mode) and every worker dials in once;
* a frame is ``(dst: int32, length: uint64, payload)``.  Frames with
  ``dst == 0`` are decoded by the master; frames addressed to another
  worker are **relayed verbatim at the frame layer** — the master never
  unpickles worker-to-worker traffic, so the protocol's rule that the
  master stays out of the row-id *data* path survives (Section V): it
  forwards opaque bytes, it never touches content;
* the payload of a protocol frame is exactly a :class:`QueueFabric`
  blob (one pickled ``list[Message]``), so the mp backend's pickle-once
  coalescing is reused unchanged — the socket shims just swap a queue
  put for one framed send.

Deadlock safety: the master runs one **reader thread** per connection
which never sends — it routes frames either into the driver inbox or
into the destination's unbounded writer queue — and one **writer
thread** per connection which is the only thing that blocks on that
socket's send buffer.  A slow worker can therefore stall only its own
writer thread, never the draining of any other connection (the classic
distributed-buffer deadlock is structurally impossible).

Rendezvous (``docs/PROTOCOL.md``): a dialing worker's first frame is a
control frame (``dst == -1``) carrying a
:class:`~repro.core.tasks.WorkerHelloMsg` — worker id, protocol
version, table fingerprint, host id.  The master collects all ``n``
valid hellos (rejecting version/table/roster/duplicate mismatches with
an explanatory unwelcome), then answers every connection with a
:class:`~repro.core.tasks.WorkerWelcomeMsg` carrying the cluster
shape, the worker's held columns, the host map and the transport knobs.
The host map drives the ``ShmSlice`` rule: descriptors are only sent to
peers whose host id matches the sender's (``WorkerActor.shm_peers``);
everyone else gets inline row ids.

Trust boundary: the rendezvous control frames are **JSON** (never
pickle — they arrive from peers that have proven nothing yet, and
unpickling pre-auth bytes would hand any port scanner code execution),
but post-rendezvous protocol frames are **pickle** — this transport is
for clusters you own, exactly like the paper's deployment.  It performs
no authentication beyond the rendezvous checks (the table fingerprint
acts as a weak shared secret), must not face a hostile network, and
warns when told to bind a non-loopback address.

Failure semantics reuse the mp driver verbatim
(:class:`SocketRuntime` subclasses
:class:`~repro.runtime.process.ProcessRuntime` and only swaps the
transport): half-open or closed sockets surface through the same
liveness poll into the same ``fault_policy`` path, with
``WorkerDiedError`` / recover semantics identical to mp.  Over TCP
there are no exit codes, so a clean EOF (orderly FIN with an empty
frame buffer) counts as exit 0 only once the driver has entered its
shutdown phase (:meth:`SocketTransport.begin_shutdown`); any earlier
EOF is a death.  In self-launch mode the real subprocess exit codes are
additionally available and take precedence (so the injected
``CRASH_EXITCODE`` still surfaces).

Parity: the loopback self-launch path trains **bit-identical** models
to ``sim`` and ``mp`` (pinned by ``tests/test_runtime_socket.py``) —
same master state machine, same ``min (score, column)`` arbitration,
same seed-derived randomness.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import queue as queue_module
import select
import socket
import struct
import threading
import time
import warnings
from collections import deque
from pathlib import Path
from typing import Any

import multiprocessing

from ..cluster.cost import CostModel
from ..cluster.network import Message
from ..core.histogram import book_from_wire, book_to_wire
from ..core.tasks import (
    MSG_WORKER_ERROR,
    MSG_WORKER_STATS,
    SOCKET_PROTOCOL_VERSION,
    ShutdownMsg,
    WorkerErrorMsg,
    WorkerHelloMsg,
    WorkerStatsMsg,
    WorkerWelcomeMsg,
)
from ..data.shm import (
    SharedTableHandle,
    ShmArena,
    list_segments,
    new_run_prefix,
    unlink_segments,
)
from ..data.table import DataTable, table_fingerprint
from .base import RuntimeBackendError, RuntimeOptions, WorkerDiedError
from .local import LocalCluster
from .process import (
    CRASH_EXITCODE,
    KILL_ENV,
    RAISE_ENV,
    ProcessRuntime,
    QueueFabric,
    _decode,
    parse_kill_spec,
    resolve_start_method,
)

#: Frame header: ``(dst: int32, payload length: uint64)``, network order.
FRAME_HEADER = struct.Struct("!iQ")

#: Header ``dst`` of rendezvous control frames (hello / welcome) —
#: never a machine id, so control and protocol traffic cannot collide.
CTRL_DST = -1

#: Upper bound on a single frame's payload; anything larger is treated
#: as stream corruption (a garbage client, not a real peer).
MAX_FRAME_BYTES = 1 << 40

#: Writer-thread stop sentinel.
_STOP = object()


class HandshakeError(RuntimeBackendError):
    """The socket rendezvous failed (timeout, rejection, or bad peer)."""


class ConnectionClosed(Exception):
    """The peer closed the connection.

    ``clean`` distinguishes an orderly FIN on a frame boundary (the
    receive buffer held no partial frame) from a close mid-frame.
    """

    def __init__(self, clean: bool) -> None:
        self.clean = clean
        super().__init__(
            "connection closed "
            + ("cleanly on a frame boundary" if clean else "mid-frame")
        )


def _default_host_id() -> str:
    """Identify the physical host: hostname plus machine id.

    The hostname alone is not enough — containers routinely share one —
    so ``/etc/machine-id`` (stable per OS installation) is appended
    where readable.  Two workers may exchange shm descriptors only when
    these ids match (``docs/PROTOCOL.md``), and a false match is worse
    than a missed one: cross-host ``ShmSlice`` descriptors cannot
    attach, wedging the run, while inline row ids merely cost
    bandwidth.  So when no machine id is readable the fallback is a
    **process-unique** id (refusing shm peering entirely) rather than
    the bare hostname — two containers on different physical hosts with
    identical hostnames must not be treated as shm peers.  Co-located
    external workers in that situation can opt back in with an explicit
    ``repro worker --host-id``; self-launch workers are unaffected (the
    master hands them its own host id).
    """
    machine = ""
    try:
        machine = Path("/etc/machine-id").read_text().strip()
    except OSError:
        pass
    if not machine:
        return f"{socket.gethostname()}/pid{os.getpid()}"
    return f"{socket.gethostname()}/{machine[:12]}"


def parse_address(text: str) -> tuple[str, int]:
    """Parse ``host:port`` into a connect/bind address."""
    host, sep, port_text = text.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if not sep or not host or not 0 <= port <= 65535:
        raise ValueError(
            f"invalid address {text!r}; expected 'host:port', "
            f"e.g. '0.0.0.0:7733'"
        )
    return host, port


def _configure_socket(sock: socket.socket) -> None:
    """Per-connection socket options: low latency, dead-peer probing."""
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)


class FrameStream:
    """Buffered framed reads and locked framed writes over one socket.

    The socket is kept permanently **blocking** (any connect timeout is
    cleared on construction) and read polling is done with ``select``
    instead of ``settimeout`` — a socket timeout is per-socket state, so
    arming one for a 50ms read poll would silently apply to every later
    ``sendall`` on the same socket, and a timed-out ``sendall`` may have
    partially written its frame, permanently desyncing the stream.
    Writes therefore always run to completion (or fail hard).

    Reads keep partial bytes across poll timeouts (a timeout mid-frame
    resumes where it left off); writes serialize header + payload into
    one ``sendall`` under a lock so concurrent senders (a writer thread
    plus a handshake reply, or a worker's main loop plus its error
    path) cannot interleave frames.
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        sock.settimeout(None)  # blocking forever; reads poll via select
        self._buffer = bytearray()
        self._send_lock = threading.Lock()

    def send_frame(self, dst: int, payload: bytes) -> None:
        """Write one ``(dst, payload)`` frame, fully (thread-safe)."""
        header = FRAME_HEADER.pack(dst, len(payload))
        with self._send_lock:
            self.sock.sendall(header + payload)

    def read_frame(
        self, timeout: float | None = None
    ) -> tuple[int, bytes] | None:
        """Read one frame; ``None`` on poll timeout.

        Raises :class:`ConnectionClosed` on EOF — ``clean`` iff the
        buffer held no partial frame.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while len(self._buffer) < FRAME_HEADER.size:
            if not self._wait_readable(deadline):
                return None
            self._recv_more()
        dst, length = FRAME_HEADER.unpack_from(self._buffer)
        if length > MAX_FRAME_BYTES:
            raise ConnectionClosed(clean=False)
        total = FRAME_HEADER.size + length
        while len(self._buffer) < total:
            if not self._wait_readable(deadline):
                return None
            self._recv_more()
        payload = bytes(self._buffer[FRAME_HEADER.size : total])
        del self._buffer[:total]
        return dst, payload

    def _wait_readable(self, deadline: float | None) -> bool:
        """Block until the socket is readable; ``False`` past the deadline."""
        if deadline is None:
            select.select([self.sock], [], [])
            return True
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return False
        readable, _, _ = select.select([self.sock], [], [], remaining)
        return bool(readable)

    def _recv_more(self) -> None:
        chunk = self.sock.recv(1 << 16)
        if not chunk:
            raise ConnectionClosed(clean=not self._buffer)
        self._buffer += chunk

    def close(self) -> None:
        """Close the underlying socket (idempotent).

        ``shutdown`` first, so a reader blocked in ``select``/``recv``
        on another thread wakes with EOF instead of sleeping through
        the close.
        """
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # already closed or never connected
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close races are benign
            pass


#: Handshake dataclasses admitted on a control frame, by wire name.
#: Control frames are **JSON, not pickle**: they are decoded before any
#: rendezvous validation has run, i.e. from a peer that has proven
#: nothing yet, and unpickling attacker-supplied bytes is arbitrary
#: code execution.  Every field of both messages is a JSON scalar (the
#: welcome's :class:`~repro.cluster.cost.CostModel` is a dataclass of
#: floats/ints), so nothing is lost — and JSON round-trips Python
#: floats exactly, keeping the cost model bit-identical across hosts.
_CTRL_TYPES: dict[str, type] = {
    "WorkerHelloMsg": WorkerHelloMsg,
    "WorkerWelcomeMsg": WorkerWelcomeMsg,
}

#: Required JSON types of every hello field — checked before the hello
#: reaches validation code that assumes well-typed values.
_HELLO_FIELD_TYPES: dict[str, type] = {
    "worker_id": int,
    "protocol_version": int,
    "table_hash": str,
    "host_id": str,
    "pid": int,
}


def _send_ctrl(stream: FrameStream, message: Any) -> None:
    """Ship one handshake dataclass as a JSON control frame."""
    blob = json.dumps(
        {"kind": type(message).__name__, "body": dataclasses.asdict(message)}
    ).encode("utf-8")
    stream.send_frame(CTRL_DST, blob)


def _decode_ctrl(payload: bytes, expected: type) -> Any:
    """Decode one control-frame payload, or ``None`` if malformed.

    Strict by construction: unknown kinds, missing/extra/badly-typed
    fields and non-JSON payloads all come back ``None`` (the caller
    treats that as a garbage peer).  No pickle is involved.
    """
    try:
        wrapper = json.loads(payload.decode("utf-8"))
        if _CTRL_TYPES.get(wrapper["kind"]) is not expected:
            return None
        body = dict(wrapper["body"])
        if expected is WorkerHelloMsg:
            for field_name, field_type in _HELLO_FIELD_TYPES.items():
                if not isinstance(body[field_name], field_type):
                    return None
        elif expected is WorkerWelcomeMsg:
            body["held_columns"] = tuple(body["held_columns"])
            body["host_map"] = {
                int(wid): str(host) for wid, host in body["host_map"].items()
            }
            if body["cost"] is not None:
                body["cost"] = CostModel(**body["cost"])
            if body.get("threshold_book") is not None:
                body["threshold_book"] = book_from_wire(
                    body["threshold_book"]
                )
        return expected(**body)
    except Exception:
        return None


def _read_ctrl(stream: FrameStream, timeout: float, expected: type) -> Any:
    """Read one control frame of the expected handshake type, or ``None``."""
    try:
        frame = stream.read_frame(timeout=timeout)
    except (ConnectionClosed, OSError):
        return None
    if frame is None or frame[0] != CTRL_DST:
        return None
    return _decode_ctrl(frame[1], expected)


# ----------------------------------------------------------------------
# queue shims: what QueueFabric talks to on each side of the wire
# ----------------------------------------------------------------------
class _SocketQueue:
    """Worker-side shim: ``put(blob)`` -> one framed send towards ``dst``.

    Every destination rides the single connection to the master hub,
    which relays by header.  A send failing because the master vanished
    (a disconnect — never a timeout; sends are blocking) is dropped —
    the worker's event loop notices the EOF next time it reads and
    exits as orphaned, mirroring a dead mp queue.  Any other failure
    propagates: silently dropping protocol messages on a live
    connection would wedge the run.
    """

    def __init__(self, stream: FrameStream, dst: int) -> None:
        self._stream = stream
        self._dst = dst

    def put(self, blob: bytes) -> None:
        try:
            self._stream.send_frame(self._dst, blob)
        except ConnectionError:
            pass  # master gone; orphan exit follows on the next read

    def close(self) -> None:
        """Fabric teardown hook; the stream is owned elsewhere."""

    def cancel_join_thread(self) -> None:
        """No feeder threads exist on a socket shim."""


class _LocalQueue:
    """Self-send shim: the worker's messages to itself skip the wire.

    Without this every ``row_request`` a worker answers from its own
    delegate store would round-trip through the master hub.
    """

    def __init__(self, inbox: queue_module.SimpleQueue) -> None:
        self._inbox = inbox

    def put(self, blob: bytes) -> None:
        self._inbox.put(blob)

    def close(self) -> None:
        """Nothing to release."""

    def cancel_join_thread(self) -> None:
        """No feeder threads exist on a local shim."""


class _InboxQueue:
    """Master-side shim for destination 0: straight into the driver inbox."""

    def __init__(self, inbox: queue_module.SimpleQueue) -> None:
        self._inbox = inbox

    def put(self, blob: bytes) -> None:
        self._inbox.put(blob)

    def close(self) -> None:
        """Nothing to release."""

    def cancel_join_thread(self) -> None:
        """No feeder threads exist on a local shim."""


class _RelaySender:
    """Master-side shim for a worker destination: enqueue to its writer.

    Looks the writer queue up per put so a send towards a reaped worker
    is silently dropped — the socket equivalent of mp's drained dead
    inbox.
    """

    def __init__(self, transport: "SocketTransport", dst: int) -> None:
        self._transport = transport
        self._dst = dst

    def put(self, blob: bytes) -> None:
        writer = self._transport._writers.get(self._dst)
        if writer is not None:
            writer.put(blob)

    def close(self) -> None:
        """Writer threads are stopped by the transport's shutdown."""

    def cancel_join_thread(self) -> None:
        """No feeder threads exist on a relay shim."""


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _run_socket_worker(
    stream: FrameStream,
    welcome: WorkerWelcomeMsg,
    worker_id: int,
    table: DataTable,
    host_id: str,
    crash_after: int | None,
    raise_after: int | None,
    attached_nbytes: int = 0,
) -> int:
    """Post-handshake worker event loop; returns the process exit code.

    Mirrors ``process._worker_main``: pump frames from the master hub
    (plus the local self-send queue) into the unmodified
    :class:`~repro.core.worker.WorkerActor`, flush the fabric whenever
    idle, answer the shutdown broadcast with a stats report, ship any
    exception home as a ``worker_error`` frame, and honour the two
    fault-injection hooks.  A master-side EOF means the run is over
    without us (driver died or reaped us) — exit quietly like an
    orphaned mp worker.
    """
    from ..core.worker import WorkerActor

    n_workers = welcome.n_workers
    local: queue_module.SimpleQueue = queue_module.SimpleQueue()
    queues: list[Any] = [
        _LocalQueue(local) if dst == worker_id else _SocketQueue(stream, dst)
        for dst in range(n_workers + 1)
    ]
    fabric = QueueFabric(queues, max_batch=welcome.coalesce_max_messages)
    arena = None
    actor = None
    cluster = None
    try:
        if welcome.shm_prefix is not None:
            arena = ShmArena(f"{welcome.shm_prefix}-w{worker_id}")
        shm_peers = {
            wid
            for wid, peer_host in welcome.host_map.items()
            if wid != 0 and peer_host == host_id
        }
        cost = welcome.cost
        assert isinstance(cost, CostModel)
        cluster = LocalCluster(n_workers, cost, fabric)
        actor = WorkerActor(
            cluster,
            worker_id,
            table,
            set(welcome.held_columns),
            arena=arena,
            shm_threshold_bytes=welcome.shm_threshold_bytes,
            shm_peers=shm_peers,
            threshold_book=welcome.threshold_book,
        )
        machine = cluster.machines[worker_id]
        pending: deque[Message] = deque()
        handled = 0
        while True:
            if not pending:
                fabric.flush()  # idle: everything buffered goes out now
                try:
                    blob: Any = local.get_nowait()
                except queue_module.Empty:
                    try:
                        frame = stream.read_frame(
                            timeout=welcome.poll_interval_seconds
                        )
                    except (ConnectionClosed, OSError):
                        return 0  # master gone; we are orphaned
                    if frame is None:
                        continue
                    blob = frame[1]
                pending.extend(_decode(blob))
                continue
            message = pending.popleft()
            if isinstance(message.payload, ShutdownMsg):
                stats = WorkerStatsMsg(
                    worker=worker_id,
                    outstanding=actor.outstanding_state(),
                    mem_task_bytes=machine.stats.mem_task_bytes,
                    mem_task_peak=machine.stats.mem_task_peak,
                    mem_base_bytes=machine.stats.mem_base_bytes,
                    messages_handled=handled,
                    messages_sent=cluster.messages_sent,
                    ops_executed=machine.stats.ops_executed,
                    bytes_by_kind=dict(cluster.bytes_by_kind),
                    bytes_pickled=fabric.bytes_pickled,
                    shm_bytes_mapped=attached_nbytes
                    + (arena.bytes_read if arena is not None else 0),
                    coalesced_batches=fabric.coalesced_batches,
                    revoked_trees_seen=actor.revoked_trees_seen,
                    stale_shm_drops=actor.stale_shm_drops,
                    subtree_kernel=actor.kernel_counters.kernel,
                    subtree_kernel_s=actor.kernel_counters.build_s,
                    subtree_gather_s=actor.kernel_counters.gather_s,
                    subtree_nodes_built=actor.kernel_counters.nodes_built,
                )
                fabric.send(worker_id, 0, MSG_WORKER_STATS, stats, 0)
                fabric.flush()
                return 0
            handled += 1
            actor.handle_message(message)
            if raise_after is not None and handled >= raise_after:
                raise RuntimeError(
                    f"injected worker logic error after {handled} messages"
                )
            if crash_after is not None and handled >= crash_after:
                # Simulated hard crash.  Unlike mp queues, a socket
                # shares no cross-process locks or byte streams — bytes
                # already handed to the kernel are delivered, buffered
                # fabric sends die with us — so no draining is needed;
                # ``os._exit`` is already clean at the transport layer.
                os._exit(CRASH_EXITCODE)
    except BaseException as exc:  # noqa: BLE001 - ship any failure home
        import traceback as traceback_module

        error = WorkerErrorMsg(
            worker=worker_id,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback_module.format_exc(),
        )
        try:
            stream.send_frame(
                0,
                pickle.dumps(
                    [Message(worker_id, 0, MSG_WORKER_ERROR, error, 0)],
                    protocol=pickle.HIGHEST_PROTOCOL,
                ),
            )
        except OSError:
            pass  # the master is gone too; nothing to report to
        return 1
    finally:
        # Release the shm footprint: drop array references first so the
        # mmaps can unmap, then unlink what this process owns.
        actor = None
        cluster = None
        table = None  # noqa: F841 - deliberate reference drop
        if arena is not None:
            arena.close()
        stream.close()


def _dial_and_run(
    address: tuple[str, int],
    worker_id: int,
    table: DataTable,
    *,
    host_id: str | None = None,
    crash_after: int | None = None,
    raise_after: int | None = None,
    attached_nbytes: int = 0,
    handshake_timeout: float = 60.0,
) -> int:
    """Dial the master, run the rendezvous handshake, then the event loop.

    Raises :class:`HandshakeError` when the master rejects the hello or
    the welcome never arrives; otherwise returns the worker's exit code.
    """
    resolved_host = host_id or _default_host_id()
    sock = socket.create_connection(address, timeout=handshake_timeout)
    _configure_socket(sock)
    stream = FrameStream(sock)
    try:
        _send_ctrl(
            stream,
            WorkerHelloMsg(
                worker_id=worker_id,
                protocol_version=SOCKET_PROTOCOL_VERSION,
                table_hash=table_fingerprint(table),
                host_id=resolved_host,
                pid=os.getpid(),
            ),
        )
        welcome = _read_ctrl(stream, handshake_timeout, WorkerWelcomeMsg)
        if welcome is None:
            raise HandshakeError(
                f"worker {worker_id}: no welcome from master at "
                f"{address[0]}:{address[1]} within {handshake_timeout:.0f}s"
            )
        if not welcome.ok:
            raise HandshakeError(
                f"master rejected worker {worker_id}: {welcome.error}"
            )
    except BaseException:
        stream.close()
        raise
    return _run_socket_worker(
        stream,
        welcome,
        worker_id,
        table,
        resolved_host,
        crash_after,
        raise_after,
        attached_nbytes,
    )


def connect_worker(
    address: str | tuple[str, int],
    worker_id: int,
    table: DataTable,
    *,
    host_id: str | None = None,
    handshake_timeout: float = 60.0,
) -> int:
    """Join a listening socket master as one worker (``repro worker``).

    Dials ``address``, handshakes, runs the worker event loop until the
    shutdown broadcast, and returns the exit code.  Honours the same
    fault-injection env hooks as the mp backend (:data:`KILL_ENV`,
    :data:`RAISE_ENV`) when the spec names this worker id — they are
    read *here*, on the worker's own machine, because a remote master
    has no way to inject a local crash.
    """
    if isinstance(address, str):
        address = parse_address(address)
    crash_after = raise_after = None
    kill_spec = os.environ.get(KILL_ENV)
    if kill_spec:
        wid, after = parse_kill_spec(kill_spec)
        if wid == worker_id:
            crash_after = after
    raise_spec = os.environ.get(RAISE_ENV)
    if raise_spec:
        wid, after = parse_kill_spec(raise_spec, RAISE_ENV)
        if wid == worker_id:
            raise_after = after
    return _dial_and_run(
        address,
        worker_id,
        table,
        host_id=host_id,
        crash_after=crash_after,
        raise_after=raise_after,
        handshake_timeout=handshake_timeout,
    )


def _launched_worker_main(
    address: tuple[str, int],
    worker_id: int,
    table_ref: "DataTable | SharedTableHandle",
    host_id: str,
    crash_after: int | None,
    raise_after: int | None,
) -> None:
    """Subprocess entry of the loopback self-launch mode.

    The same dial-in path an external ``repro worker`` takes — the
    only difference is where the table comes from (a handle to attach
    for the shm data plane, or the inherited/pickled table itself) and
    that the master passes its *own* host id explicitly: self-launch
    workers share the master's host by construction, so shm peering
    must work even where ``_default_host_id`` would degrade to a
    process-unique id (no readable machine id).
    """
    attached = None
    code = 1
    try:
        if isinstance(table_ref, SharedTableHandle):
            attached = table_ref.attach()
            table = attached.table
            nbytes = attached.nbytes
        else:
            table = table_ref
            nbytes = 0
        code = _dial_and_run(
            address,
            worker_id,
            table,
            host_id=host_id,
            crash_after=crash_after,
            raise_after=raise_after,
            attached_nbytes=nbytes,
        )
    finally:
        table = None  # noqa: F841 - drop views before closing segments
        if attached is not None:
            attached.close()
    if code:
        raise SystemExit(code)


# ----------------------------------------------------------------------
# master side
# ----------------------------------------------------------------------
class SocketTransport:
    """The master hub: listener, rendezvous, relay threads, liveness.

    Driver-facing surface is identical to
    :class:`~repro.runtime.process.ProcessTransport` (``send`` /
    ``flush`` / ``recv_master`` / ``dead_workers`` / ``check_alive`` /
    ``reap_worker`` / ``begin_shutdown`` / ``shutdown`` / ``close`` plus
    the ``fabric`` / ``shm_prefix`` / ``start_method`` attributes), so
    :class:`SocketRuntime` reuses the whole mp driver loop unchanged.

    Two modes, chosen by ``RuntimeOptions.listen``:

    * ``None`` — **self-launch**: bind a loopback ephemeral port and
      spawn the workers as local subprocesses that dial back in.  CI's
      socket path, pinned bit-identical to sim/mp; the shm data plane
      works in full (one host by construction) and real subprocess exit
      codes back the liveness poll.
    * ``"host:port"`` — **external**: bind the given address and wait
      ``rendezvous_timeout_seconds`` for ``n_workers`` ``repro worker``
      clients.  Fault injection via ``crash_worker_after`` /
      ``raise_worker_after`` is ignored in this mode (a remote master
      cannot reach into a worker it did not start — use the env hooks
      on the worker's own machine); the arena sweep on ``reap_worker``
      only reaches same-host segments, remote hosts clean their own on
      exit.
    """

    def __init__(
        self,
        n_workers: int,
        table: DataTable,
        placement: dict[int, list[int]],
        cost: CostModel,
        options: RuntimeOptions,
        threshold_book: dict | None = None,
    ) -> None:
        self.n_workers = n_workers
        self.options = options
        # Hist-mode equi-depth thresholds, shipped to every worker inside
        # the rendezvous welcome (JSON wire form; empty when all exact).
        self.threshold_book = threshold_book or {}
        self.host_id = _default_host_id()
        self.table_hash = table_fingerprint(table)
        self.shm_prefix: str | None = None
        self.table_handle: SharedTableHandle | None = None
        self.processes: dict[int, Any] = {}
        self._inbox: queue_module.SimpleQueue = queue_module.SimpleQueue()
        self._pending_master: list[Message] = []
        self._writers: dict[int, queue_module.SimpleQueue] = {}
        self._threads: list[threading.Thread] = []
        self._conns: dict[int, FrameStream] = {}
        self._closed: dict[int, bool] = {}
        self._reaped: set[int] = set()
        self._lock = threading.Lock()
        self._shutdown_started = False
        self._listener: socket.socket | None = None
        self.fabric = QueueFabric(
            [_InboxQueue(self._inbox)]
            + [_RelaySender(self, wid) for wid in range(1, n_workers + 1)],
            max_batch=options.coalesce_max_messages,
        )
        self._launch = options.listen is None
        if self._launch:
            self.start_method = resolve_start_method(options.start_method)
            bind_address = ("127.0.0.1", 0)
        else:
            self.start_method = "external"
            bind_address = parse_address(options.listen)
            if bind_address[0] not in ("127.0.0.1", "::1", "localhost"):
                warnings.warn(
                    f"socket master binding non-loopback address "
                    f"{options.listen!r}: the handshake is JSON, but "
                    f"post-rendezvous protocol frames are pickled — any "
                    f"peer that passes the rendezvous checks can execute "
                    f"code in this cluster.  Bind only on networks you "
                    f"trust (docs/PROTOCOL.md, trust boundary).",
                    RuntimeWarning,
                    stacklevel=2,
                )
        try:
            self._listener = socket.create_server(
                bind_address, backlog=n_workers + 2
            )
            self.address: tuple[str, int] = self._listener.getsockname()[:2]
            if options.use_shm:
                self.shm_prefix = new_run_prefix()
                if self._launch:
                    self.table_handle = SharedTableHandle.create(
                        table, f"{self.shm_prefix}-t"
                    )
            if self._launch:
                self._launch_workers(table)
            held = {
                wid: tuple(
                    sorted(c for c, ws in placement.items() if wid in ws)
                )
                for wid in range(1, n_workers + 1)
            }
            self._rendezvous(held, cost)
        except BaseException:
            self.shutdown()
            raise

    # -- start-up -------------------------------------------------------
    def _launch_workers(self, table: DataTable) -> None:
        """Self-launch mode: spawn local subprocesses that dial back in."""
        context = multiprocessing.get_context(self.start_method)
        table_ref: DataTable | SharedTableHandle = (
            self.table_handle if self.table_handle is not None else table
        )
        crash = self.options.crash_worker_after
        raises = self.options.raise_worker_after
        for wid in range(1, self.n_workers + 1):
            process = context.Process(
                target=_launched_worker_main,
                args=(
                    self.address,
                    wid,
                    table_ref,
                    self.host_id,
                    crash[1] if crash is not None and crash[0] == wid else None,
                    raises[1]
                    if raises is not None and raises[0] == wid
                    else None,
                ),
                name=f"repro-socket-worker-{wid}",
                daemon=True,
            )
            process.start()
            self.processes[wid] = process

    def _rendezvous(
        self, held: dict[int, tuple[int, ...]], cost: CostModel
    ) -> None:
        """Collect ``n_workers`` valid hellos, then welcome all at once.

        The welcome is a barrier on purpose: no worker computes anything
        before the full roster is present, so a failed rendezvous can
        never leave a half-started run.  An invalid hello (wrong
        protocol version, mismatched table hash, duplicate or
        out-of-range worker id, host not on the ``expected_hosts``
        roster, or plain garbage) gets an explanatory unwelcome and its
        connection closed; it does not count towards the roster.

        Hellos are read **concurrently** — an accept thread hands every
        new connection to its own hello-reader thread — so one slow or
        stalled client only occupies its own thread and cannot burn the
        roster-wide rendezvous deadline for everyone else.  Streams
        still waiting on a hello when the rendezvous ends (either way)
        are closed, which unblocks their readers.
        """
        deadline = time.monotonic() + self.options.rendezvous_timeout_seconds
        hellos: dict[int, tuple[WorkerHelloMsg, FrameStream]] = {}
        expected = set(range(1, self.n_workers + 1))
        results: queue_module.SimpleQueue = queue_module.SimpleQueue()
        pending_lock = threading.Lock()
        pending: set[FrameStream] = set()
        stop_accepting = threading.Event()

        def read_hello(stream: FrameStream) -> None:
            hello = _read_ctrl(
                stream, max(0.1, deadline - time.monotonic()), WorkerHelloMsg
            )
            with pending_lock:
                pending.discard(stream)
            results.put((hello, stream))

        def accept_loop() -> None:
            while not stop_accepting.is_set():
                try:
                    sock, _peer = self._listener.accept()
                except TimeoutError:
                    continue
                except OSError:
                    return  # listener closed under us (shutdown path)
                _configure_socket(sock)
                stream = FrameStream(sock)
                with pending_lock:
                    pending.add(stream)
                threading.Thread(
                    target=read_hello,
                    args=(stream,),
                    name="repro-socket-hello",
                    daemon=True,
                ).start()

        self._listener.settimeout(0.1)
        acceptor = threading.Thread(
            target=accept_loop, name="repro-socket-accept", daemon=True
        )
        acceptor.start()
        try:
            while len(hellos) < self.n_workers:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise HandshakeError(
                        f"rendezvous timed out after "
                        f"{self.options.rendezvous_timeout_seconds:.0f}s; "
                        f"missing workers {sorted(expected - set(hellos))}"
                    )
                try:
                    hello, stream = results.get(timeout=remaining)
                except queue_module.Empty:
                    continue
                error = self._validate_hello(hello, hellos)
                if error is not None:
                    try:
                        _send_ctrl(
                            stream, WorkerWelcomeMsg(ok=False, error=error)
                        )
                    except OSError:
                        pass
                    stream.close()
                    continue
                hellos[hello.worker_id] = (hello, stream)
        except BaseException:
            for _hello, stream in hellos.values():
                stream.close()
            raise
        finally:
            stop_accepting.set()
            acceptor.join(timeout=5.0)
            with pending_lock:
                still_pending = list(pending)
            for stream in still_pending:
                stream.close()  # wakes its hello reader with EOF
        host_map = {0: self.host_id} | {
            wid: hello.host_id for wid, (hello, _) in hellos.items()
        }
        # Writer queues first: a relay towards a worker whose threads are
        # not up yet must queue, never drop.
        for wid in hellos:
            self._writers[wid] = queue_module.SimpleQueue()
        for wid in sorted(hellos):
            hello, stream = hellos[wid]
            _send_ctrl(
                stream,
                WorkerWelcomeMsg(
                    ok=True,
                    n_workers=self.n_workers,
                    held_columns=held[wid],
                    host_map=host_map,
                    shm_prefix=self.shm_prefix,
                    shm_threshold_bytes=self.options.shm_threshold_bytes,
                    coalesce_max_messages=self.options.coalesce_max_messages,
                    poll_interval_seconds=self.options.poll_interval_seconds,
                    cost=cost,
                    threshold_book=book_to_wire(self.threshold_book),
                ),
            )
            self._conns[wid] = stream
            writer = threading.Thread(
                target=self._writer_loop,
                args=(wid, self._writers[wid], stream),
                name=f"repro-socket-writer-{wid}",
                daemon=True,
            )
            reader = threading.Thread(
                target=self._reader_loop,
                args=(wid, stream),
                name=f"repro-socket-reader-{wid}",
                daemon=True,
            )
            writer.start()
            reader.start()
            self._threads += [writer, reader]

    def _validate_hello(
        self,
        hello: WorkerHelloMsg | None,
        hellos: dict[int, tuple[WorkerHelloMsg, FrameStream]],
    ) -> str | None:
        """Admission checks of one hello; a string is the rejection reason."""
        if hello is None:
            return "malformed or missing hello frame"
        if hello.protocol_version != SOCKET_PROTOCOL_VERSION:
            return (
                f"protocol version mismatch: master speaks "
                f"{SOCKET_PROTOCOL_VERSION}, worker spoke "
                f"{hello.protocol_version}"
            )
        if not 1 <= hello.worker_id <= self.n_workers:
            return (
                f"worker id {hello.worker_id} out of range 1.."
                f"{self.n_workers}"
            )
        if hello.worker_id in hellos:
            return f"worker id {hello.worker_id} already joined"
        if hello.table_hash != self.table_hash:
            return (
                "table fingerprint mismatch: the worker's data is not "
                "byte-identical to the master's (exact training would "
                "silently diverge)"
            )
        roster = self.options.expected_hosts
        if roster is not None and hello.host_id not in roster:
            return (
                f"host {hello.host_id!r} is not on the expected_hosts "
                f"roster"
            )
        return None

    # -- relay threads --------------------------------------------------
    def _writer_loop(
        self, wid: int, writer: queue_module.SimpleQueue, stream: FrameStream
    ) -> None:
        """Sole sender on one connection; drains even after it breaks."""
        broken = False
        while True:
            item = writer.get()
            if item is _STOP:
                return
            if broken:
                continue  # peer is gone; drop, recovery owns the cleanup
            try:
                stream.send_frame(wid, item)
            except OSError:
                broken = True

    def _reader_loop(self, wid: int, stream: FrameStream) -> None:
        """Route frames from one worker; never blocks on a send."""
        clean = False
        try:
            while True:
                frame = stream.read_frame(timeout=None)
                if frame is None:  # pragma: no cover - None needs a timeout
                    continue
                dst, payload = frame
                if dst == 0:
                    self._inbox.put(payload)
                elif dst > 0:
                    writer = self._writers.get(dst)
                    if writer is not None:
                        writer.put(payload)
                # Control frames after the handshake are ignored.
        except ConnectionClosed as closed:
            clean = closed.clean
        except OSError:
            clean = False
        with self._lock:
            self._closed[wid] = clean

    # -- driver-side sends / receives -----------------------------------
    def send(
        self, src: int, dst: int, kind: str, payload: Any, size_bytes: int
    ) -> None:
        """Transport interface: master-side send towards any machine."""
        self.fabric.send(src, dst, kind, payload, size_bytes)

    def flush(self) -> None:
        """Transport interface: push buffered master-side sends out."""
        self.fabric.flush()

    def recv_master(self, timeout: float) -> Message:
        """Blocking receive from the driver inbox (raises ``queue.Empty``).

        Receiving means the driver is about to go idle, so buffered
        sends are flushed first — the flush-on-idle rule.
        """
        self.fabric.flush()
        if not self._pending_master:
            self._pending_master.extend(
                _decode(self._inbox.get(timeout=timeout))
            )
        return self._pending_master.pop(0)

    # -- liveness -------------------------------------------------------
    def _exit_code(self, wid: int, clean: bool) -> int:
        """Best-available exit code for a closed connection.

        Self-launch mode asks the real subprocess (so the injected
        ``CRASH_EXITCODE`` survives); over a bare socket the only signal
        is the EOF itself — clean counts as 0 only in the shutdown
        phase, anything earlier is a death (code 1).
        """
        process = self.processes.get(wid)
        if process is not None:
            process.join(timeout=5.0)
            if process.exitcode is not None:
                return process.exitcode
        return 0 if (clean and self._shutdown_started) else 1

    def dead_workers(
        self, allow_clean_exit: bool = False
    ) -> list[tuple[int, int]]:
        """Worker ids (with exit codes) whose connections have closed.

        ``allow_clean_exit`` tolerates exit code 0 (the shutdown phase,
        where workers legitimately finish after reporting their stats).
        Already-reaped workers are not listed.
        """
        with self._lock:
            closed = [
                (wid, clean)
                for wid, clean in self._closed.items()
                if wid not in self._reaped
            ]
        dead = []
        for wid, clean in closed:
            code = self._exit_code(wid, clean)
            if allow_clean_exit and code == 0:
                continue
            dead.append((wid, code))
        return dead

    def check_alive(self, allow_clean_exit: bool = False) -> None:
        """Raise :class:`WorkerDiedError` if any worker connection died."""
        dead = self.dead_workers(allow_clean_exit)
        if dead:
            raise WorkerDiedError(*dead[0])

    def reap_worker(self, worker_id: int) -> None:
        """Retire a dead worker the run is recovering from.

        Stops its writer thread, closes its connection (frames towards
        it become silent drops in :class:`_RelaySender`), joins its
        subprocess in self-launch mode, and sweeps its shm arena
        segments — which only reaches segments on this host; a remote
        worker's host cleans its own on exit.
        """
        self._reaped.add(worker_id)
        process = self.processes.pop(worker_id, None)
        if process is not None:
            process.join(timeout=5.0)
        writer = self._writers.pop(worker_id, None)
        if writer is not None:
            writer.put(_STOP)
        stream = self._conns.pop(worker_id, None)
        if stream is not None:
            stream.close()
        if self.shm_prefix is not None:
            unlink_segments(
                list_segments(f"{self.shm_prefix}-w{worker_id}")
            )

    def begin_shutdown(self) -> None:
        """Driver hook: clean EOFs from here on count as exit code 0."""
        self._shutdown_started = True

    # -- teardown -------------------------------------------------------
    def shutdown(self, join_timeout: float = 5.0) -> None:
        """Close everything down; escalate terminate → kill. Idempotent.

        Connections close first (workers see EOF and exit as orphans),
        then self-launch subprocesses are joined and escalated, then
        every shm segment of the run is removed — the table image is
        unlinked and the run prefix swept, reclaiming arena segments of
        workers that died without cleaning up.
        """
        self._shutdown_started = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - close races are benign
                pass
            self._listener = None
        for writer in self._writers.values():
            writer.put(_STOP)
        self._writers = {}
        for stream in self._conns.values():
            stream.close()
        self._conns = {}
        for thread in self._threads:
            thread.join(timeout=join_timeout)
        self._threads = []
        for process in self.processes.values():
            if process.is_alive():
                process.terminate()
        for process in self.processes.values():
            process.join(timeout=join_timeout)
            if process.is_alive():  # pragma: no cover - stuck in C code
                process.kill()
                process.join(timeout=join_timeout)
        self.processes = {}
        self.fabric.close()
        if self.table_handle is not None:
            self.table_handle.unlink()
            self.table_handle = None
        if self.shm_prefix is not None:
            unlink_segments(list_segments(self.shm_prefix))

    def close(self) -> None:
        """Transport interface alias for :meth:`shutdown`."""
        self.shutdown()


class SocketRuntime(ProcessRuntime):
    """Training over TCP: the mp driver loop on the socket transport.

    Everything above the transport — the master event loop, fault
    policies, recovery, shutdown invariants, cluster report — is
    inherited from :class:`~repro.runtime.process.ProcessRuntime`
    unchanged; only the substrate the messages ride differs.
    """

    name = "socket"

    def _make_transport(
        self, table: DataTable, placement: dict[int, list[int]]
    ) -> SocketTransport:
        return SocketTransport(
            self.system.n_workers,
            table,
            placement,
            self.cost,
            self.options,
            threshold_book=self._threshold_book,
        )
