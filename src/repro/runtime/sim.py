"""The discrete-event backend: the original simulated deployment.

This is the default runtime and the reference for the parity guarantee:
``ProcessRuntime`` must train bit-identical models.  The simulated path is
unchanged — :class:`SimTransport` is a thin :class:`~repro.runtime.base.
Transport` adapter over the per-NIC :class:`~repro.cluster.network.Network`
so the two substrates present the same seam, and :class:`SimRuntime` hosts
what used to live inline in ``TreeServer.fit``: cluster assembly, column
placement, optional fault injection / secondary master, and the run-end
protocol invariants.
"""

from __future__ import annotations

from typing import Any

from ..cluster.cost import CostModel
from ..cluster.faults import CrashPlan, FaultInjector
from ..cluster.topology import SimulatedCluster
from ..core.config import SystemConfig
from ..core.histogram import build_threshold_book
from ..core.jobs import TrainingJob
from ..core.load_balance import assign_columns_to_workers
from ..core.master import MasterActor, _TableInfo
from ..core.secondary import SecondaryMasterActor
from ..core.worker import WorkerActor
from ..data.table import DataTable
from .base import Runtime, RuntimeOptions, WorkerDiedError


class SimTransport:
    """Transport adapter over the simulated per-NIC network."""

    def __init__(self, cluster: SimulatedCluster) -> None:
        self.cluster = cluster

    def send(
        self, src: int, dst: int, kind: str, payload: Any, size_bytes: int
    ) -> None:
        """Ride the simulated network (FIFO NIC + latency)."""
        self.cluster.send(src, dst, kind, payload, size_bytes)

    def flush(self) -> None:
        """Eager delivery: the simulated NIC never holds messages back."""

    def close(self) -> None:
        """Nothing to release: the event queue owns all state."""


class SimRuntime(Runtime):
    """Training on the deterministic discrete-event simulator."""

    name = "sim"

    def __init__(
        self,
        system: SystemConfig,
        cost: CostModel,
        options: RuntimeOptions | None = None,
    ) -> None:
        super().__init__(system, cost)
        self.options = options or RuntimeOptions()

    def fit(
        self,
        table: DataTable,
        jobs: list[TrainingJob],
        crash_plans: list[CrashPlan] | None = None,
        max_events: int | None = None,
        secondary_master: bool = False,
        record_timeline: bool = False,
        **_: Any,
    ):
        """Run the full protocol on the simulator (see ``TreeServer.fit``)."""
        import time

        from ..core.server import RunReport

        start = time.perf_counter()
        self.validate(table, jobs)
        cluster = SimulatedCluster(
            n_workers=self.system.n_workers,
            compers_per_worker=self.system.compers_per_worker,
            cost=self.cost,
            extra_machines=1 if secondary_master else 0,
        )
        if record_timeline:
            for machine in cluster.machines:
                machine.record_timeline = True
        worker_ids = cluster.worker_ids()
        placement = assign_columns_to_workers(
            table.n_columns, worker_ids, self.system.column_replication
        )
        # Hist-mode equi-depth thresholds: computed once, before any task,
        # and shared by the master and every worker (empty when all jobs
        # train exact).
        book = build_threshold_book(table, jobs)
        workers: list[WorkerActor] = []
        for wid in worker_ids:
            held = {c for c, ws in placement.items() if wid in ws}
            worker = WorkerActor(cluster, wid, table, held, threshold_book=book)
            cluster.register(wid, worker)
            workers.append(worker)

        info = _TableInfo(
            n_rows=table.n_rows,
            n_columns=table.n_columns,
            problem=table.problem,
            n_classes=table.n_classes,
        )
        secondary: SecondaryMasterActor | None = None
        if secondary_master:
            secondary_id = self.system.n_workers + 1
            secondary = SecondaryMasterActor(
                cluster,
                secondary_id,
                info,
                jobs,
                self.system,
                placement,
                threshold_book=book,
            )
            cluster.register(secondary_id, secondary)
        master = MasterActor(
            cluster,
            info,
            jobs,
            self.system,
            placement,
            secondary_id=(secondary.machine_id if secondary else None),
            threshold_book=book,
        )
        cluster.register(cluster.MASTER, master)

        if crash_plans:
            injector = FaultInjector(
                cluster.engine, cluster.machines, cluster.network
            )
            fault_policy = self.options.resolved_fault_policy(self.name)

            def on_failure(machine_id: int) -> None:
                if machine_id == cluster.MASTER:
                    assert secondary is not None
                    secondary.on_master_failure()
                    return
                if fault_policy == "fail_fast":
                    raise WorkerDiedError(
                        machine_id,
                        None,
                        "fault_policy='fail_fast' treats the injected crash "
                        "as fatal (pass fault_policy='recover' to retrain "
                        "on survivors)",
                    )
                active = (
                    secondary.promoted
                    if secondary is not None and secondary.promoted
                    else master
                )
                if active.halted:
                    # The master died before this worker-crash was
                    # detected; the upcoming failover rebuilds its state
                    # from live workers only, so nothing to do here.
                    return
                active.on_worker_crashed(machine_id)

            injector.on_failure_detected(on_failure)
            for plan in crash_plans:
                if plan.machine_id == cluster.MASTER and not secondary_master:
                    raise ValueError(
                        "master failure needs secondary_master=True"
                    )
                injector.schedule_crash(plan)

        master.start()
        report = cluster.run(max_events=max_events)

        if secondary is not None and secondary.promoted is not None:
            master = secondary.promoted  # results live in the new master
        if not master.is_done():
            raise RuntimeError(
                "simulation drained but training is incomplete "
                f"({master.pool.completed_trees}/{master.pool.total_trees} trees)"
            )
        check_clean_shutdown(workers)
        if not master.matrix.is_zero():
            raise RuntimeError(
                "load matrix did not return to zero: "
                f"{master.matrix.snapshot()}"
            )
        master.counters.head_insertions = master.bplan.head_insertions
        master.counters.tail_insertions = master.bplan.tail_insertions
        master.counters.bplan_peak = max(
            master.counters.bplan_peak, master.bplan.peak_size
        )

        models = {job.name: master.trained_trees(job.name) for job in jobs}
        return RunReport(
            sim_seconds=report.elapsed_seconds,
            cluster=report,
            counters=master.counters,
            models=models,
            machines=cluster.machines if record_timeline else None,
            backend=self.name,
            wall_seconds=time.perf_counter() - start,
        )


def check_clean_shutdown(workers: list[WorkerActor]) -> None:
    """Assert no worker leaked task state or task memory."""
    for worker in workers:
        if worker.machine.halted:
            continue  # crashed workers keep whatever they had
        leftovers = {
            k: v for k, v in worker.outstanding_state().items() if v
        }
        if leftovers:
            raise RuntimeError(
                f"worker {worker.worker_id} leaked task state: {leftovers}"
            )
        if worker.machine.stats.mem_task_bytes != 0:
            raise RuntimeError(
                f"worker {worker.worker_id} leaked "
                f"{worker.machine.stats.mem_task_bytes} bytes of task memory"
            )
