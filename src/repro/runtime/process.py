"""Multiprocess backend: the TreeServer protocol on real OS cores.

Topology is a star of ``multiprocessing`` queues — one inbox per machine
id, every process holding every inbox — so workers exchange row ids and
column data **peer to peer**, exactly like the simulated data plane
(Section V: the master never relays row ids).  Machine 0 (the master) is
the parent process: it runs the unmodified
:class:`~repro.core.master.MasterActor` state machine over
:class:`~repro.runtime.local.LocalCluster` shims; machines ``1..n`` are
child processes each owning their column shards and running the unmodified
:class:`~repro.core.worker.WorkerActor`.

The data plane is shared-memory first (``RuntimeOptions.use_shm``,
default on — see ``docs/RUNTIME.md``):

* the column table and ``Y`` live in named shm segments
  (:class:`~repro.data.shared.SharedTableHandle`); workers map them as
  read-only views instead of inheriting fork copies, which also makes
  the ``spawn`` start method a first-class citizen — only a small handle
  is pickled to each child;
* large row-id sets (``I_xl`` / ``I_xr``) are parked in per-worker
  pooled arenas (:class:`~repro.data.shared.ShmArena`) and cross the
  queues as :class:`~repro.data.shared.ShmSlice` descriptors, with the
  master still out of the relay path;
* the :class:`QueueFabric` coalesces queued sends into one pickled blob
  per destination, flushed whenever an event loop goes idle, cutting
  per-message pickle + syscall overhead in message-dominated shapes.

Failure semantics (the edges the simulator never has):

* **worker death** — the driver polls child liveness whenever its inbox is
  quiet.  Under ``fault_policy="fail_fast"`` (the mp default) a dead
  process (and a worker-side exception, which ships its traceback home
  first) surfaces as a structured
  :class:`~repro.runtime.base.WorkerDiedError`, never a hang.  Under
  ``fault_policy="recover"`` the driver instead feeds
  ``MasterActor.on_worker_crashed`` — the same replica-reassignment +
  tree-revocation path the simulator exercises — then reaps the dead
  process, drains its now-ownerless inbox, and sweeps its shm arena
  segments so mid-run ``I_x`` slices are not leaked.  Stragglers the dead
  worker produced (or peers produced towards it) are fenced by the
  revoked-uid checks both actors already apply; a peer holding a shm
  descriptor into the swept arena drops it on ``FileNotFoundError``
  (counted as ``stale_shm_drops``) because a vanished segment proves the
  owner died and the tagged tree is being revoked.  Recovery requires
  every column of the dead worker to retain a live replica (``k >= 2``)
  and gives up past ``max_worker_failures`` crashes — both degrade to
  the structured ``WorkerDiedError``, never a hang;
* **wedged transport** — silence longer than
  ``RuntimeOptions.message_timeout_seconds`` raises
  :class:`~repro.runtime.base.MessageTimeoutError`;
* **shutdown** — on success, error or KeyboardInterrupt alike, the pool is
  drained and joined (terminate → join → kill escalation) and every
  shared-memory segment of the run is unlinked: workers unlink their own
  arenas on clean exit, and the parent unlinks the table and sweeps any
  segment a crashed worker left behind, so nothing leaks into
  ``/dev/shm``.

Parity: split arbitration is ``min (score, column)`` over exact per-column
results and all randomness is derived from ``(tree seed, node path)``, so
which worker computes what (timing-dependent, load-balanced) never affects
the trained model — the forest is bit-identical to ``backend="sim"``,
with and without the shared-memory data plane.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import queue as queue_module
import time
import traceback
from typing import Any

import multiprocessing

from ..cluster.cost import CostModel
from ..cluster.metrics import ClusterReport, MachineReport
from ..cluster.network import Message
from ..core.config import SystemConfig
from ..core.histogram import build_threshold_book
from ..core.jobs import TrainingJob
from ..core.load_balance import assign_columns_to_workers
from ..core.master import MasterActor, _TableInfo
from ..core.tasks import (
    MSG_SHUTDOWN,
    MSG_WORKER_ERROR,
    MSG_WORKER_STATS,
    ShutdownMsg,
    WorkerErrorMsg,
    WorkerStatsMsg,
)
from ..data.shm import (
    SharedTableHandle,
    ShmArena,
    list_segments,
    new_run_prefix,
    unlink_segments,
)
from ..data.table import DataTable
from .base import (
    MessageTimeoutError,
    Runtime,
    RuntimeOptions,
    WorkerDiedError,
)
from .local import LocalCluster

#: Exit code of the fault-injection hook (distinguishable from crashes).
CRASH_EXITCODE = 71

#: Environment fault-injection hook: ``REPRO_MP_KILL=worker:after_n_messages``
#: hard-kills that worker after it handles that many messages, exactly like
#: ``RuntimeOptions.crash_worker_after`` (which takes precedence when set).
KILL_ENV = "REPRO_MP_KILL"

#: Soft sibling of :data:`KILL_ENV`: ``REPRO_MP_RAISE=worker:after_n`` makes
#: that worker *raise* a Python exception (shipped home as ``worker_error``)
#: instead of hard-dying, exactly like ``RuntimeOptions.raise_worker_after``.
RAISE_ENV = "REPRO_MP_RAISE"


def parse_kill_spec(spec: str, env_name: str = KILL_ENV) -> tuple[int, int]:
    """Parse a fault-injection spec ``worker:after_n_messages``."""
    try:
        worker_text, after_text = spec.split(":")
        worker, after = int(worker_text), int(after_text)
    except ValueError:
        raise ValueError(
            f"invalid {env_name} spec {spec!r}; expected "
            f"'worker:after_n_messages', e.g. '2:20'"
        ) from None
    if worker < 1 or after < 1:
        raise ValueError(
            f"invalid {env_name} spec {spec!r}: worker id and message "
            f"count must both be >= 1"
        )
    return worker, after


def resolve_start_method(requested: str | None) -> str:
    """Pick the ``multiprocessing`` start method, explicitly.

    ``fork`` is preferred where available (cheapest startup), ``spawn``
    is the first-class fallback (viable because the shm data plane ships
    handles, not tables).  An unavailable explicit request — or a
    platform offering neither — raises a clear error instead of silently
    deferring to whatever the platform default happens to be.
    """
    available = multiprocessing.get_all_start_methods()
    if requested is not None:
        if requested not in available:
            raise ValueError(
                f"start method {requested!r} is not available on this "
                f"platform (available: {available})"
            )
        return requested
    for method in ("fork", "spawn"):
        if method in available:
            return method
    raise RuntimeError(  # pragma: no cover - no known such platform
        f"no supported multiprocessing start method (available: {available})"
    )


def _decode(obj: Any) -> list[Message]:
    """Inbox object -> protocol messages.

    The fabric ships pickled batches (``bytes``); a raw :class:`Message`
    is also accepted — the worker-error escape hatch and tests inject
    those directly.
    """
    if isinstance(obj, (bytes, bytearray)):
        return pickle.loads(obj)
    return [obj]


class QueueFabric:
    """The shared send fabric: one inbox queue per machine id.

    Implements :class:`~repro.runtime.base.Transport` for whichever
    process holds it.  Sends are buffered per destination and flushed as
    one pickled blob per queue put — either when the buffer reaches
    ``max_batch`` messages or when the owning event loop goes idle
    (:meth:`flush`).  A single producer's blobs into one queue stay
    FIFO, and each blob preserves append order, which together give the
    per-sender FIFO the protocol requires.  Doing the pickling here (the
    queue then only copies a ``bytes`` blob) also makes the serialized
    byte count an exact, free metric.
    """

    def __init__(self, queues: list, max_batch: int = 32) -> None:
        self.queues = queues
        self.max_batch = max(1, int(max_batch))
        self._buffers: list[list[Message]] = [[] for _ in queues]
        # -- data-plane counters (per hosting process) ------------------
        self.messages_sent = 0
        self.batches_sent = 0
        self.coalesced_batches = 0
        self.bytes_pickled = 0

    def send(
        self, src: int, dst: int, kind: str, payload: Any, size_bytes: int
    ) -> None:
        """Buffer one message towards ``dst``; flush on a full batch."""
        self._buffers[dst].append(Message(src, dst, kind, payload, size_bytes))
        if len(self._buffers[dst]) >= self.max_batch:
            self._flush_dst(dst)

    def flush(self) -> None:
        """Push every buffered message out (the flush-on-idle rule)."""
        for dst in range(len(self.queues)):
            if self._buffers[dst]:
                self._flush_dst(dst)

    def _flush_dst(self, dst: int) -> None:
        batch = self._buffers[dst]
        self._buffers[dst] = []
        blob = pickle.dumps(batch, protocol=pickle.HIGHEST_PROTOCOL)
        self.bytes_pickled += len(blob)
        self.messages_sent += len(batch)
        self.batches_sent += 1
        if len(batch) > 1:
            self.coalesced_batches += 1
        self.queues[dst].put(blob)

    def close(self) -> None:
        """Close all queues without waiting for feeder flushes."""
        for q in self.queues:
            q.close()
            q.cancel_join_thread()


def _worker_main(
    worker_id: int,
    n_workers: int,
    table_ref: "DataTable | SharedTableHandle",
    held_columns: set[int],
    queues: list,
    cost: CostModel,
    options_tuple: tuple,
    crash_after: int | None,
    raise_after: int | None = None,
) -> None:
    """Entry point of one worker process: an event loop around the actor.

    ``table_ref`` is either the table itself (inherited cheaply under
    ``fork``, pickled under ``spawn``) or a :class:`SharedTableHandle` to
    attach (shm data plane, either start method).  Runs until a
    :class:`ShutdownMsg` arrives (reply with run-end stats, exit 0), the
    parent disappears (exit silently — we are orphaned), or the actor
    raises (ship the traceback to the driver, exit 1).  ``crash_after``
    hard-kills the process after that many handled messages — the
    fault-injection hook behind the worker-death tests; ``raise_after``
    is its soft sibling, raising an ordinary exception instead so the
    ``worker_error`` path (and its recovery) can be exercised end to end.
    """
    from ..core.worker import WorkerActor  # import here: cheap under fork

    from collections import deque

    (
        poll_seconds,
        shm_prefix,
        shm_threshold,
        coalesce_max,
        threshold_book,
    ) = options_tuple

    attached = None
    arena = None
    actor = None
    fabric = QueueFabric(queues, max_batch=coalesce_max)
    try:
        if isinstance(table_ref, SharedTableHandle):
            attached = table_ref.attach()
            table = attached.table
        else:
            table = table_ref
        if shm_prefix is not None:
            arena = ShmArena(f"{shm_prefix}-w{worker_id}")
        cluster = LocalCluster(n_workers, cost, fabric)
        actor = WorkerActor(
            cluster,
            worker_id,
            table,
            held_columns,
            arena=arena,
            shm_threshold_bytes=shm_threshold,
            threshold_book=threshold_book,
        )
        machine = cluster.machines[worker_id]
        inbox = queues[worker_id]
        pending: deque[Message] = deque()
        handled = 0
        while True:
            if not pending:
                fabric.flush()  # idle: everything buffered goes out now
                try:
                    pending.extend(_decode(inbox.get(timeout=poll_seconds)))
                except queue_module.Empty:
                    parent = multiprocessing.parent_process()
                    if parent is not None and not parent.is_alive():
                        return  # orphaned; nothing useful left to do
                    continue
            message = pending.popleft()
            if isinstance(message.payload, ShutdownMsg):
                stats = WorkerStatsMsg(
                    worker=worker_id,
                    outstanding=actor.outstanding_state(),
                    mem_task_bytes=machine.stats.mem_task_bytes,
                    mem_task_peak=machine.stats.mem_task_peak,
                    mem_base_bytes=machine.stats.mem_base_bytes,
                    messages_handled=handled,
                    messages_sent=cluster.messages_sent,
                    ops_executed=machine.stats.ops_executed,
                    bytes_by_kind=dict(cluster.bytes_by_kind),
                    bytes_pickled=fabric.bytes_pickled,
                    shm_bytes_mapped=(
                        (attached.nbytes if attached is not None else 0)
                        + (arena.bytes_read if arena is not None else 0)
                    ),
                    coalesced_batches=fabric.coalesced_batches,
                    revoked_trees_seen=actor.revoked_trees_seen,
                    stale_shm_drops=actor.stale_shm_drops,
                    subtree_kernel=actor.kernel_counters.kernel,
                    subtree_kernel_s=actor.kernel_counters.build_s,
                    subtree_gather_s=actor.kernel_counters.gather_s,
                    subtree_nodes_built=actor.kernel_counters.nodes_built,
                )
                fabric.send(worker_id, 0, MSG_WORKER_STATS, stats, 0)
                fabric.flush()
                return  # normal exit flushes the queue feeder threads
            handled += 1
            actor.handle_message(message)
            if raise_after is not None and handled >= raise_after:
                raise RuntimeError(
                    f"injected worker logic error after {handled} messages"
                )
            if crash_after is not None and handled >= crash_after:
                # Simulated hard crash: no goodbye, no shm teardown — the
                # parent's sweep covers the arena.  The queue feeders are
                # drained first because ``multiprocessing`` queues share
                # their write lock and byte stream across processes:
                # ``os._exit`` mid-write would leave a truncated frame (a
                # peer's ``recv_bytes`` blocks forever) or a held write
                # lock (every other sender blocks) — corruption a real
                # network transport cannot inflict on surviving peers.
                # The injected crash is abrupt at the *protocol* layer
                # (sends of the last handled message are still buffered
                # in the fabric and die with us) but clean at the
                # *transport* layer.
                for crash_queue in queues:
                    crash_queue.close()
                    crash_queue.join_thread()
                os._exit(CRASH_EXITCODE)
    except BaseException as exc:  # noqa: BLE001 - ship any failure home
        error = WorkerErrorMsg(
            worker=worker_id,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
        )
        try:
            queues[0].put(Message(worker_id, 0, MSG_WORKER_ERROR, error, 0))
        except Exception:  # the fabric itself may be gone
            pass
        raise SystemExit(1)
    finally:
        # Release this process's shm footprint: drop array references
        # first so the mmaps can actually unmap, then unlink what we own.
        actor = None
        cluster = None
        table = None
        if arena is not None:
            arena.close()
        if attached is not None:
            attached.close()


class ProcessTransport:
    """Owns the queue fabric, the worker pool and the run's shm segments."""

    def __init__(
        self,
        n_workers: int,
        table: DataTable,
        placement: dict[int, list[int]],
        cost: CostModel,
        options: RuntimeOptions,
        threshold_book: dict | None = None,
    ) -> None:
        method = resolve_start_method(options.start_method)
        self._ctx = multiprocessing.get_context(method)
        self.start_method = method
        self.n_workers = n_workers
        self.queues = [self._ctx.Queue() for _ in range(n_workers + 1)]
        self.fabric = QueueFabric(
            self.queues, max_batch=options.coalesce_max_messages
        )
        self._pending_master: list[Message] = []
        self.processes: dict[int, Any] = {}
        # -- shared-memory data plane ----------------------------------
        self.shm_prefix: str | None = None
        self.table_handle: SharedTableHandle | None = None
        table_ref: DataTable | SharedTableHandle = table
        if options.use_shm:
            self.shm_prefix = new_run_prefix()
            self.table_handle = SharedTableHandle.create(
                table, f"{self.shm_prefix}-t"
            )
            table_ref = self.table_handle
        worker_options = (
            options.poll_interval_seconds,
            self.shm_prefix,
            options.shm_threshold_bytes,
            options.coalesce_max_messages,
            threshold_book,
        )
        crash = options.crash_worker_after
        raises = options.raise_worker_after
        try:
            for wid in range(1, n_workers + 1):
                held = {c for c, ws in placement.items() if wid in ws}
                process = self._ctx.Process(
                    target=_worker_main,
                    args=(
                        wid,
                        n_workers,
                        table_ref,
                        held,
                        self.queues,
                        cost,
                        worker_options,
                        crash[1]
                        if crash is not None and crash[0] == wid
                        else None,
                        raises[1]
                        if raises is not None and raises[0] == wid
                        else None,
                    ),
                    name=f"repro-worker-{wid}",
                    daemon=True,
                )
                process.start()
                self.processes[wid] = process
        except BaseException:
            self.shutdown()
            raise

    # -- driver-side sends / receives -----------------------------------
    def send(
        self, src: int, dst: int, kind: str, payload: Any, size_bytes: int
    ) -> None:
        """Transport interface: parent-side send into any inbox."""
        self.fabric.send(src, dst, kind, payload, size_bytes)

    def flush(self) -> None:
        """Transport interface: push buffered parent-side sends out."""
        self.fabric.flush()

    def recv_master(self, timeout: float) -> Message:
        """Blocking receive from the master inbox (raises ``queue.Empty``).

        Receiving means the driver is about to go idle, so buffered sends
        are flushed first — the other half of the flush-on-idle rule.
        """
        self.fabric.flush()
        if not self._pending_master:
            self._pending_master.extend(
                _decode(self.queues[0].get(timeout=timeout))
            )
        return self._pending_master.pop(0)

    # -- liveness -------------------------------------------------------
    def dead_workers(
        self, allow_clean_exit: bool = False
    ) -> list[tuple[int, int]]:
        """Worker ids (with exit codes) whose processes have exited.

        ``allow_clean_exit`` tolerates exit code 0 (the shutdown phase,
        where workers legitimately finish after reporting their stats).
        Already-reaped workers (see :meth:`reap_worker`) are not listed.
        """
        dead = []
        for wid, process in self.processes.items():
            code = process.exitcode
            if code is None:
                continue
            if allow_clean_exit and code == 0:
                continue
            dead.append((wid, code))
        return dead

    def check_alive(self, allow_clean_exit: bool = False) -> None:
        """Raise :class:`WorkerDiedError` if any worker process is gone."""
        dead = self.dead_workers(allow_clean_exit)
        if dead:
            raise WorkerDiedError(*dead[0])

    def reap_worker(self, worker_id: int) -> None:
        """Retire a crashed worker the run is recovering from.

        Joins the process, drains its now-ownerless inbox (anything
        queued there is a fenced straggler nobody will ever read), and
        sweeps its shm arena segments immediately — recovery must not
        leak the dead worker's parked ``I_x`` slices for the rest of a
        long run.  Any live peer still holding a descriptor into the
        swept arena tolerates the vanished segment (see
        ``WorkerActor._on_row_response_shm``).
        """
        process = self.processes.pop(worker_id, None)
        if process is not None:
            process.join(timeout=1.0)
        try:
            while True:
                self.queues[worker_id].get_nowait()
        except queue_module.Empty:
            pass
        if self.shm_prefix is not None:
            unlink_segments(list_segments(f"{self.shm_prefix}-w{worker_id}"))

    def begin_shutdown(self) -> None:
        """Hook: the driver is entering the shutdown phase.

        A no-op here — process exit codes disambiguate clean from crashed
        regardless of phase.  The socket transport overrides this to start
        treating a clean EOF (orderly FIN with an empty frame buffer) as
        exit code 0, which over TCP is the only clean-exit signal there is.
        """

    # -- teardown -------------------------------------------------------
    def shutdown(self, join_timeout: float = 5.0) -> None:
        """Drain and join the pool; escalate terminate → kill. Idempotent.

        After the pool is gone, every shm segment of the run is removed:
        the table handle is unlinked and the run prefix is swept, which
        reclaims arena segments of workers that died without cleaning up.
        """
        for process in self.processes.values():
            if process.is_alive():
                process.terminate()
        for process in self.processes.values():
            process.join(timeout=join_timeout)
            if process.is_alive():  # pragma: no cover - stuck in C code
                process.kill()
                process.join(timeout=join_timeout)
        self.fabric.close()
        if self.table_handle is not None:
            self.table_handle.unlink()
            self.table_handle = None
        if self.shm_prefix is not None:
            unlink_segments(list_segments(self.shm_prefix))

    def close(self) -> None:
        """Transport interface alias for :meth:`shutdown`."""
        self.shutdown()


class ProcessRuntime(Runtime):
    """Training on real cores: one OS process per worker machine."""

    name = "mp"

    def __init__(
        self,
        system: SystemConfig,
        cost: CostModel,
        options: RuntimeOptions | None = None,
    ) -> None:
        super().__init__(system, cost)
        self.options = options or RuntimeOptions()
        self._fault_policy = self.options.resolved_fault_policy(self.name)
        self._failures = 0
        self._threshold_book: dict = {}

    def fit(self, table: DataTable, jobs: list[TrainingJob], **kwargs: Any):
        """Run the full protocol over real processes; see ``TreeServer.fit``."""
        for feature in (
            "crash_plans",
            "secondary_master",
            "record_timeline",
            "max_events",
        ):
            if kwargs.get(feature):
                raise ValueError(
                    f"{feature} is only supported on the sim backend"
                )
        self.validate(table, jobs)
        kill_spec = os.environ.get(KILL_ENV)
        if kill_spec and self.options.crash_worker_after is None:
            self.options = dataclasses.replace(
                self.options, crash_worker_after=parse_kill_spec(kill_spec)
            )
        raise_spec = os.environ.get(RAISE_ENV)
        if raise_spec and self.options.raise_worker_after is None:
            self.options = dataclasses.replace(
                self.options,
                raise_worker_after=parse_kill_spec(raise_spec, RAISE_ENV),
            )
        self._fault_policy = self.options.resolved_fault_policy(self.name)
        self._failures = 0
        start = time.perf_counter()
        placement = assign_columns_to_workers(
            table.n_columns,
            list(range(1, self.system.n_workers + 1)),
            self.system.column_replication,
        )
        # Hist-mode equi-depth thresholds: computed once on the driver,
        # before any worker starts, and shipped to every worker (via the
        # spawn args here; via the rendezvous welcome on the socket
        # backend).  Empty when every job trains exact.
        self._threshold_book = build_threshold_book(table, jobs)
        transport = self._make_transport(table, placement)
        try:
            report = self._drive(table, jobs, placement, transport, start)
        finally:
            transport.shutdown()
        return report

    def _make_transport(
        self, table: DataTable, placement: dict[int, list[int]]
    ) -> ProcessTransport:
        """Build the run's transport; the socket runtime overrides this."""
        return ProcessTransport(
            self.system.n_workers,
            table,
            placement,
            self.cost,
            self.options,
            threshold_book=self._threshold_book,
        )

    # ------------------------------------------------------------------
    def _drive(
        self,
        table: DataTable,
        jobs: list[TrainingJob],
        placement: dict[int, list[int]],
        transport: ProcessTransport,
        start: float,
    ):
        """Master-side event loop: pump plans out, fold results in."""
        from ..core.server import RunReport

        options = self.options
        cluster = LocalCluster(self.system.n_workers, self.cost, transport)
        info = _TableInfo(
            n_rows=table.n_rows,
            n_columns=table.n_columns,
            problem=table.problem,
            n_classes=table.n_classes,
        )
        master = MasterActor(
            cluster,
            info,
            jobs,
            self.system,
            placement,
            threshold_book=self._threshold_book,
        )
        master.start()
        cluster.engine.drain()

        live = set(range(1, self.system.n_workers + 1))
        messages_handled = 0
        last_message = time.monotonic()
        while not master.is_done():
            try:
                message = transport.recv_master(options.poll_interval_seconds)
            except queue_module.Empty:
                if self._check_children(transport, master, cluster, live):
                    # Recovery just generated fresh traffic (revocations,
                    # re-planned tasks): restart the silence clock.
                    last_message = time.monotonic()
                if (
                    time.monotonic() - last_message
                    > options.message_timeout_seconds
                ):
                    raise MessageTimeoutError(
                        options.message_timeout_seconds,
                        f"task results "
                        f"({master.pool.completed_trees}/"
                        f"{master.pool.total_trees} trees done)",
                    )
                continue
            last_message = time.monotonic()
            payload = message.payload
            if isinstance(payload, WorkerErrorMsg):
                # A worker-side exception is a worker failure like any
                # other: under ``recover`` it takes the same
                # replica-reassignment + tree-revocation path as a hard
                # crash (the erroring process exits right after shipping
                # this message); under ``fail_fast`` it surfaces as a
                # structured error with the remote traceback attached.
                # An error from an already-recovered worker (liveness
                # poll won the race) is a straggler; drop it.
                if payload.worker in live:
                    self._recover_worker(
                        transport,
                        master,
                        cluster,
                        live,
                        payload.worker,
                        1,
                        detail=f"{payload.error}\n{payload.traceback}",
                    )
                continue
            messages_handled += 1
            master.handle_message(message)
            cluster.engine.drain()

        stats = self._collect_worker_stats(transport, live)
        self._check_invariants(master, stats)
        wall = time.perf_counter() - start

        master.counters.head_insertions = master.bplan.head_insertions
        master.counters.tail_insertions = master.bplan.tail_insertions
        master.counters.bplan_peak = max(
            master.counters.bplan_peak, master.bplan.peak_size
        )
        models = {job.name: master.trained_trees(job.name) for job in jobs}
        return RunReport(
            sim_seconds=wall,
            cluster=self._cluster_report(
                wall, cluster, stats, messages_handled, transport, master
            ),
            counters=master.counters,
            models=models,
            backend=self.name,
            wall_seconds=wall,
        )

    # ------------------------------------------------------------------
    def _check_children(
        self,
        transport: ProcessTransport,
        master: MasterActor,
        cluster: LocalCluster,
        live: set[int],
    ) -> bool:
        """Liveness poll: apply the fault policy to any dead worker.

        Returns True when a crash was recovered from (the caller resets
        its silence clock).
        """
        dead = transport.dead_workers()
        if not dead:
            return False
        for wid, code in dead:
            self._recover_worker(transport, master, cluster, live, wid, code)
        return True

    def _recover_worker(
        self,
        transport: ProcessTransport,
        master: MasterActor,
        cluster: LocalCluster,
        live: set[int],
        wid: int,
        code: int,
        detail: str = "",
    ) -> None:
        """Apply the fault policy to one failed worker (crash or error).

        ``fail_fast`` — and any failure recovery cannot survive: a column
        losing its last replica, or more than ``max_worker_failures``
        failures — raises :class:`WorkerDiedError`.  Otherwise the dead
        worker is fed through ``MasterActor.on_worker_crashed`` (replica
        reassignment + tree revocation), reaped and removed from the live
        set; training continues on the survivors.
        """
        if self._fault_policy != "recover":
            raise WorkerDiedError(wid, code, detail)
        self._failures += 1
        if self._failures > self.options.max_worker_failures:
            raise WorkerDiedError(
                wid,
                code,
                f"fault_policy='recover' exhausted: failure number "
                f"{self._failures} exceeds max_worker_failures="
                f"{self.options.max_worker_failures}",
            )
        lost = sorted(
            col
            for col, holders in master.holders.items()
            if set(holders) == {wid}
        )
        if lost:
            raise WorkerDiedError(
                wid,
                code,
                f"columns {lost} have no surviving replica "
                f"(column_replication too small for this crash)",
            )
        master.on_worker_crashed(wid)
        cluster.engine.drain()
        transport.flush()
        transport.reap_worker(wid)
        live.discard(wid)

    # ------------------------------------------------------------------
    def _collect_worker_stats(
        self, transport: ProcessTransport, live: set[int]
    ) -> dict[int, WorkerStatsMsg]:
        """Shutdown phase: every surviving worker reports stats, then exits."""
        transport.begin_shutdown()
        for wid in sorted(live):
            transport.send(0, wid, MSG_SHUTDOWN, ShutdownMsg(), 0)
        transport.flush()
        stats: dict[int, WorkerStatsMsg] = {}
        deadline = time.monotonic() + self.options.message_timeout_seconds
        while len(stats) < len(live):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                missing = sorted(live - set(stats))
                raise MessageTimeoutError(
                    self.options.message_timeout_seconds,
                    f"shutdown stats from workers {missing}",
                )
            try:
                message = transport.recv_master(
                    min(remaining, self.options.poll_interval_seconds)
                )
            except queue_module.Empty:
                transport.check_alive(allow_clean_exit=True)
                continue
            payload = message.payload
            if isinstance(payload, WorkerErrorMsg):
                if payload.worker not in live:
                    continue  # straggler of an already-recovered worker
                raise WorkerDiedError(
                    payload.worker,
                    1,
                    f"{payload.error}\n{payload.traceback}",
                )
            if isinstance(payload, WorkerStatsMsg):
                stats[payload.worker] = payload
            # Anything else is a straggler of an already-resolved task
            # (cannot happen with a correct protocol, but must not wedge
            # the shutdown path); drop it.
        return stats

    @staticmethod
    def _check_invariants(
        master: MasterActor, stats: dict[int, WorkerStatsMsg]
    ) -> None:
        """The simulator's run-end invariants, from remote stats reports."""
        for wid in sorted(stats):
            report = stats[wid]
            leftovers = {k: v for k, v in report.outstanding.items() if v}
            if leftovers:
                raise RuntimeError(
                    f"worker {wid} leaked task state: {leftovers}"
                )
            if report.mem_task_bytes != 0:
                raise RuntimeError(
                    f"worker {wid} leaked {report.mem_task_bytes} bytes "
                    f"of task memory"
                )
        if not master.matrix.is_zero():
            raise RuntimeError(
                "load matrix did not return to zero: "
                f"{master.matrix.snapshot()}"
            )

    def _cluster_report(
        self,
        wall: float,
        cluster: LocalCluster,
        stats: dict[int, WorkerStatsMsg],
        messages_handled: int,
        transport: ProcessTransport,
        master: MasterActor,
    ) -> ClusterReport:
        """Paper-style summary from real-process counters.

        CPU percent is the cost model's op estimate re-expressed over
        wall-clock — an indicative utilization figure, not a measured one.
        """
        report = ClusterReport(
            elapsed_seconds=wall, events_processed=messages_handled
        )
        master_bytes = sum(cluster.bytes_by_kind.values())
        report.machines.append(
            MachineReport(
                machine_id=0,
                cpu_percent=0.0,
                bytes_sent=master_bytes,
                bytes_received=0,
                send_mbps=(master_bytes * 8 / wall / 1e6) if wall > 0 else 0.0,
                peak_memory_bytes=0,
                items_executed=messages_handled,
            )
        )
        bytes_by_kind = dict(cluster.bytes_by_kind)
        for wid in sorted(stats):
            worker = stats[wid]
            sent = sum(worker.bytes_by_kind.values())
            for kind, nbytes in worker.bytes_by_kind.items():
                bytes_by_kind[kind] = bytes_by_kind.get(kind, 0) + nbytes
            seconds_of_ops = worker.ops_executed / self.cost.ops_per_second
            report.machines.append(
                MachineReport(
                    machine_id=wid,
                    cpu_percent=(
                        100.0 * seconds_of_ops / wall if wall > 0 else 0.0
                    ),
                    bytes_sent=sent,
                    bytes_received=0,
                    send_mbps=(sent * 8 / wall / 1e6) if wall > 0 else 0.0,
                    peak_memory_bytes=worker.mem_base_bytes
                    + worker.mem_task_peak,
                    items_executed=worker.messages_handled,
                )
            )
        workers = [m for m in report.machines if m.machine_id != 0]
        if workers:
            report.avg_worker_cpu_percent = sum(
                w.cpu_percent for w in workers
            ) / len(workers)
            report.max_worker_cpu_percent = max(w.cpu_percent for w in workers)
            report.avg_worker_send_mbps = sum(
                w.send_mbps for w in workers
            ) / len(workers)
            report.max_worker_send_mbps = max(w.send_mbps for w in workers)
            report.avg_peak_memory_bytes = sum(
                w.peak_memory_bytes for w in workers
            ) / len(workers)
        report.master_send_mbps = report.machines[0].send_mbps
        report.total_bytes = sum(m.bytes_sent for m in report.machines)
        report.bytes_by_kind = bytes_by_kind
        # -- real data-plane accounting (what actually crossed queues) --
        fabric = transport.fabric
        per_worker = {
            wid: {
                "messages_sent": stats[wid].messages_sent,
                "bytes_pickled": stats[wid].bytes_pickled,
                "shm_bytes_mapped": stats[wid].shm_bytes_mapped,
                "coalesced_batches": stats[wid].coalesced_batches,
                "revoked_trees_seen": stats[wid].revoked_trees_seen,
                "stale_shm_drops": stats[wid].stale_shm_drops,
                "subtree_kernel": stats[wid].subtree_kernel,
                "subtree_kernel_s": stats[wid].subtree_kernel_s,
                "subtree_gather_s": stats[wid].subtree_gather_s,
                "subtree_nodes_built": stats[wid].subtree_nodes_built,
            }
            for wid in sorted(stats)
        }
        # Kernel name: every worker resolved the same config, so take the
        # first non-empty ("" when no subtree-task ran anywhere).
        kernel_names = [
            w["subtree_kernel"] for w in per_worker.values()
            if w["subtree_kernel"]
        ]
        report.transport = {
            "shm": transport.shm_prefix is not None,
            "start_method": transport.start_method,
            "fault_policy": self._fault_policy,
            "recovered_workers": master.counters.recovered_workers,
            "revoked_trees": master.counters.revoked_trees,
            "stale_shm_drops": sum(
                w["stale_shm_drops"] for w in per_worker.values()
            ),
            "messages_sent": fabric.messages_sent
            + sum(w["messages_sent"] for w in per_worker.values()),
            "bytes_pickled": fabric.bytes_pickled
            + sum(w["bytes_pickled"] for w in per_worker.values()),
            "shm_bytes_mapped": sum(
                w["shm_bytes_mapped"] for w in per_worker.values()
            ),
            "coalesced_batches": fabric.coalesced_batches
            + sum(w["coalesced_batches"] for w in per_worker.values()),
            "kernel": kernel_names[0] if kernel_names else "",
            "subtree_kernel_s": sum(
                w["subtree_kernel_s"] for w in per_worker.values()
            ),
            "subtree_gather_s": sum(
                w["subtree_gather_s"] for w in per_worker.values()
            ),
            "subtree_nodes_built": sum(
                w["subtree_nodes_built"] for w in per_worker.values()
            ),
            "per_worker": per_worker,
        }
        return report
