"""Execution substrates for the TreeServer protocol.

Two backends behind one seam: the deterministic discrete-event simulator
(``"sim"``, the default — every paper experiment runs on it) and the real
multiprocess runtime (``"mp"`` — one OS process per worker, peer-to-peer
queues, wall-clock time).  Selected via ``TreeServer(..., backend=...)``
or ``repro train --backend``; both train bit-identical models.  See
``docs/RUNTIME.md``.
"""

from .base import (
    BACKENDS,
    FAULT_POLICIES,
    MessageTimeoutError,
    Runtime,
    RuntimeBackendError,
    RuntimeOptions,
    Transport,
    WorkerDiedError,
    create_runtime,
)
from .process import ProcessRuntime, ProcessTransport, resolve_start_method
from .signals import graceful_sigint, reap_children
from .sim import SimRuntime, SimTransport

__all__ = [
    "BACKENDS",
    "FAULT_POLICIES",
    "MessageTimeoutError",
    "ProcessRuntime",
    "ProcessTransport",
    "Runtime",
    "RuntimeBackendError",
    "RuntimeOptions",
    "SimRuntime",
    "SimTransport",
    "Transport",
    "WorkerDiedError",
    "create_runtime",
    "graceful_sigint",
    "reap_children",
    "resolve_start_method",
]
