"""Execution substrates for the TreeServer protocol.

Three backends behind one seam: the deterministic discrete-event
simulator (``"sim"``, the default — every paper experiment runs on it),
the real multiprocess runtime (``"mp"`` — one OS process per worker,
peer-to-peer queues, wall-clock time), and the socket runtime
(``"socket"`` — length-prefixed pickled frames over persistent TCP for
true multi-host runs, with a loopback self-launch mode for one machine).
Selected via ``TreeServer(..., backend=...)`` or ``repro train
--backend``; all train bit-identical models.  See ``docs/RUNTIME.md``.
"""

from .base import (
    BACKENDS,
    FAULT_POLICIES,
    MessageTimeoutError,
    Runtime,
    RuntimeBackendError,
    RuntimeOptions,
    Transport,
    WorkerDiedError,
    create_runtime,
)
from .process import ProcessRuntime, ProcessTransport, resolve_start_method
from .signals import graceful_sigint, reap_children
from .sim import SimRuntime, SimTransport
from .socket import (
    HandshakeError,
    SocketRuntime,
    SocketTransport,
    connect_worker,
)

__all__ = [
    "BACKENDS",
    "FAULT_POLICIES",
    "HandshakeError",
    "MessageTimeoutError",
    "ProcessRuntime",
    "ProcessTransport",
    "Runtime",
    "RuntimeBackendError",
    "RuntimeOptions",
    "SimRuntime",
    "SimTransport",
    "SocketRuntime",
    "SocketTransport",
    "Transport",
    "WorkerDiedError",
    "connect_worker",
    "create_runtime",
    "graceful_sigint",
    "reap_children",
    "resolve_start_method",
]
