"""Tree ensembles: forests with PMF-averaging prediction and
TreeServer-trained gradient boosting."""

from .boosting import GBDTConfig, GBDTModel, GBDTReport, TreeServerGBDT
from .forest import ForestModel

__all__ = [
    "ForestModel",
    "GBDTConfig",
    "GBDTModel",
    "GBDTReport",
    "TreeServerGBDT",
]
