"""Gradient-boosted trees trained round-by-round on TreeServer.

The paper's tree scheduling supports boosting-style dependencies: "in
boosting (e.g. gradient boosted trees, or layers in deep forest),
sequential dependencies exist where the next layer of trees can only be
scheduled for training when all trees in the previous layer is fully
constructed" (Section III).  This module realizes that workload: each
boosting round fits one exact regression tree to the current negative
gradients as a TreeServer job on the simulated cluster, then updates the
model before the next round is submitted.

Supported objectives: squared error (regression) and logistic loss (binary
classification).  Trees are exact — this is *not* the XGBoost baseline
(which uses second-order gains and sketch-approximate splits); it is
first-order gradient boosting built from TreeServer's own exact trees,
demonstrating the system as a building block for larger ensemble methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import ColumnSampling, SystemConfig, TreeConfig
from ..core.jobs import decision_tree_job
from ..core.server import TreeServer
from ..core.tree import DecisionTree
from ..data.schema import ColumnSpec, ColumnKind, ProblemKind, TableSchema
from ..data.table import DataTable


@dataclass(frozen=True)
class GBDTConfig:
    """Boosting hyperparameters for TreeServer-trained GBDT."""

    n_rounds: int = 20
    learning_rate: float = 0.2
    max_depth: int = 4
    tau_leaf: int = 8
    column_ratio: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_rounds < 1:
            raise ValueError("need at least one boosting round")
        if not 0 < self.learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")


@dataclass
class GBDTModel:
    """An additive model of exact regression trees."""

    problem: ProblemKind
    base_prediction: float
    learning_rate: float
    trees: list[DecisionTree] = field(default_factory=list)

    def raw_scores(self, table: DataTable) -> np.ndarray:
        """Additive raw margins for every row."""
        scores = np.full(table.n_rows, self.base_prediction, dtype=np.float64)
        for tree in self.trees:
            scores += self.learning_rate * tree.predict_values(table)
        return scores

    def predict(self, table: DataTable) -> np.ndarray:
        """Predicted values (regression) or class labels (binary)."""
        scores = self.raw_scores(table)
        if self.problem is ProblemKind.REGRESSION:
            return scores
        return (scores > 0).astype(np.int64)

    def predict_proba(self, table: DataTable) -> np.ndarray:
        """Class probabilities for binary classification, shape ``(n, 2)``."""
        if self.problem is not ProblemKind.CLASSIFICATION:
            raise ValueError("predict_proba requires a classification model")
        p1 = 1.0 / (1.0 + np.exp(-self.raw_scores(table)))
        return np.stack([1.0 - p1, p1], axis=1)

    @property
    def n_trees(self) -> int:
        """Number of boosting rounds fitted."""
        return len(self.trees)


@dataclass
class GBDTReport:
    """Model plus the accumulated simulated training time."""

    model: GBDTModel
    sim_seconds: float
    per_round_seconds: list[float]


def _gradient_table(table: DataTable, gradients: np.ndarray) -> DataTable:
    """The training table with the target replaced by negative gradients."""
    schema = TableSchema(
        table.schema.columns,
        ColumnSpec("__gradient__", ColumnKind.NUMERIC),
        ProblemKind.REGRESSION,
    )
    return DataTable(schema, list(table.columns), gradients)


class TreeServerGBDT:
    """Fits a GBDT by submitting one TreeServer job per boosting round."""

    def __init__(
        self,
        config: GBDTConfig | None = None,
        system: SystemConfig | None = None,
    ) -> None:
        self.config = config or GBDTConfig()
        self.system = system or SystemConfig(n_workers=8, compers_per_worker=4)

    def fit(self, table: DataTable) -> GBDTReport:
        """Train on a regression or binary-classification table."""
        cfg = self.config
        problem = table.problem
        if problem is ProblemKind.CLASSIFICATION and table.n_classes != 2:
            raise ValueError(
                "TreeServerGBDT supports regression and binary classification"
            )
        y = table.target.astype(np.float64)
        if problem is ProblemKind.REGRESSION:
            base = float(y.mean())
        else:
            # Log-odds of the positive class.
            p = float(np.clip(y.mean(), 1e-6, 1 - 1e-6))
            base = float(np.log(p / (1 - p)))

        model = GBDTModel(
            problem=problem, base_prediction=base, learning_rate=cfg.learning_rate
        )
        system = self.system.scaled_to(table.n_rows)
        scores = np.full(table.n_rows, base, dtype=np.float64)
        per_round: list[float] = []
        for round_index in range(cfg.n_rounds):
            if problem is ProblemKind.REGRESSION:
                negative_gradient = y - scores
            else:
                negative_gradient = y - 1.0 / (1.0 + np.exp(-scores))
            round_table = _gradient_table(table, negative_gradient)
            tree_config = TreeConfig(
                max_depth=cfg.max_depth,
                tau_leaf=cfg.tau_leaf,
                column_sampling=(
                    ColumnSampling.ALL
                    if cfg.column_ratio >= 1.0
                    else ColumnSampling.RATIO
                ),
                column_ratio=cfg.column_ratio,
                seed=cfg.seed * 1_000_003 + round_index,
            )
            report = TreeServer(system).fit(
                round_table, [decision_tree_job("round", tree_config)]
            )
            tree = report.tree("round")
            model.trees.append(tree)
            per_round.append(report.sim_seconds)
            scores += cfg.learning_rate * tree.predict_values(round_table)
        return GBDTReport(
            model=model,
            sim_seconds=float(sum(per_round)),
            per_round_seconds=per_round,
        )
