"""Forest models: prediction over ensembles of trees.

A forest for ``k``-class classification returns, per row, the average of
the class PMF vectors returned by all its trees (the deep-forest convention
of Section VII); the predicted label is the argmax.  Regression forests
average per-tree predictions.  The same averaging honours depth truncation
and the missing/unseen early-stop of each member tree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.tree import DecisionTree
from ..data.schema import ProblemKind
from ..data.table import DataTable


@dataclass
class ForestModel:
    """A trained bag of trees (random forest or extra-trees)."""

    trees: list[DecisionTree]

    def __post_init__(self) -> None:
        if not self.trees:
            raise ValueError("a forest needs at least one tree")
        problems = {t.problem for t in self.trees}
        if len(problems) > 1:
            raise ValueError("trees disagree on problem kind")

    @property
    def problem(self) -> ProblemKind:
        """Problem kind shared by all member trees."""
        return self.trees[0].problem

    @property
    def n_classes(self) -> int:
        """Target cardinality (0 for regression)."""
        return self.trees[0].n_classes

    @property
    def n_trees(self) -> int:
        """Ensemble size."""
        return len(self.trees)

    def predict_proba(
        self, table: DataTable, max_depth: int | None = None
    ) -> np.ndarray:
        """Average class PMFs over all trees, shape ``(n_rows, n_classes)``."""
        if self.problem is not ProblemKind.CLASSIFICATION:
            raise ValueError("predict_proba requires classification trees")
        acc = np.zeros((table.n_rows, self.n_classes), dtype=np.float64)
        for tree in self.trees:
            acc += tree.predict_proba(table, max_depth)
        acc /= len(self.trees)
        return acc

    def predict_values(
        self, table: DataTable, max_depth: int | None = None
    ) -> np.ndarray:
        """Average regression predictions over all trees."""
        if self.problem is not ProblemKind.REGRESSION:
            raise ValueError("predict_values requires regression trees")
        acc = np.zeros(table.n_rows, dtype=np.float64)
        for tree in self.trees:
            acc += tree.predict_values(table, max_depth)
        acc /= len(self.trees)
        return acc

    def predict(
        self, table: DataTable, max_depth: int | None = None
    ) -> np.ndarray:
        """Predicted labels (classification) or values (regression)."""
        if self.problem is ProblemKind.CLASSIFICATION:
            return np.argmax(self.predict_proba(table, max_depth), axis=1)
        return self.predict_values(table, max_depth)

    def total_nodes(self) -> int:
        """Total node count across all trees (model-size diagnostics)."""
        return sum(tree.n_nodes for tree in self.trees)

    def compiled(self, quantize: bool = False):
        """Freeze this forest into its flat-array serving form.

        Returns a :class:`~repro.serving.batch.BatchPredictor` over the
        compiled arrays — the engine the serving layer deploys, with
        parity-tested bit-identical predictions (``quantize=True`` opts
        into compact float32/int16 arrays within the documented
        tolerance).
        """
        from ..serving.batch import BatchPredictor
        from ..serving.compiler import compile_forest

        return BatchPredictor(compile_forest(self, quantize=quantize))
