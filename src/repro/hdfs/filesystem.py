"""In-process simulated distributed file system.

TreeServer is "fully compatible with the Hadoop ecosystem and loads data in
parallel from HDFS" (paper Section I).  Offline we simulate the DFS: a
namenode directory of path -> file bytes, with explicit *connection*
accounting — because the paper's data-organization design (Fig. 13) exists
precisely to amortize HDFS connection setup cost, which dominated their
tests when thousands of per-column files were read ("HDFS connection time
rather than actual data reads dominates").

Readers and writers are stream-like to mirror the real API; the byte and
connection counters feed the column-grouping ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class HdfsError(RuntimeError):
    """Filesystem-level failure (missing path, double create, ...)."""


@dataclass
class HdfsStats:
    """IO counters for cost accounting."""

    connections_opened: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    files_created: int = 0


@dataclass
class _File:
    chunks: list[bytes] = field(default_factory=list)
    closed: bool = False

    def data(self) -> bytes:
        if len(self.chunks) != 1:
            self.chunks = [b"".join(self.chunks)]
        return self.chunks[0]


class HdfsWriter:
    """Append-only output stream (one per file, as in HDFS)."""

    def __init__(self, fs: "SimHdfs", path: str, entry: _File) -> None:
        self._fs = fs
        self._path = path
        self._entry = entry

    def write(self, data: bytes) -> None:
        """Append bytes to the file."""
        if self._entry.closed:
            raise HdfsError(f"writing to closed file {self._path!r}")
        self._entry.chunks.append(bytes(data))
        self._fs.stats.bytes_written += len(data)

    def close(self) -> None:
        """Finalize the file (idempotent)."""
        self._entry.closed = True

    def __enter__(self) -> "HdfsWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class HdfsReader:
    """Whole-file reader; opening one counts as a connection."""

    def __init__(self, fs: "SimHdfs", path: str, entry: _File) -> None:
        self._fs = fs
        self._path = path
        self._entry = entry

    def read(self) -> bytes:
        """Read the entire file contents."""
        data = self._entry.data()
        self._fs.stats.bytes_read += len(data)
        return data

    def __enter__(self) -> "HdfsReader":
        return self

    def __exit__(self, *exc) -> None:
        pass


class SimHdfs:
    """The simulated namenode + datanode store."""

    def __init__(self) -> None:
        self._files: dict[str, _File] = {}
        self.stats = HdfsStats()

    def create(self, path: str, overwrite: bool = False) -> HdfsWriter:
        """Create a file for writing."""
        if path in self._files and not overwrite:
            raise HdfsError(f"path exists: {path!r}")
        entry = _File()
        self._files[path] = entry
        self.stats.files_created += 1
        self.stats.connections_opened += 1
        return HdfsWriter(self, path, entry)

    def open(self, path: str) -> HdfsReader:
        """Open a file for reading (counts one connection)."""
        entry = self._files.get(path)
        if entry is None:
            raise HdfsError(f"no such file: {path!r}")
        self.stats.connections_opened += 1
        return HdfsReader(self, path, entry)

    def exists(self, path: str) -> bool:
        """Whether a file exists."""
        return path in self._files

    def delete(self, path: str) -> None:
        """Remove a file."""
        if path not in self._files:
            raise HdfsError(f"no such file: {path!r}")
        del self._files[path]

    def listdir(self, prefix: str) -> list[str]:
        """All paths under a prefix, sorted."""
        prefix = prefix.rstrip("/") + "/"
        return sorted(p for p in self._files if p.startswith(prefix))

    def file_size(self, path: str) -> int:
        """Size in bytes of a file."""
        entry = self._files.get(path)
        if entry is None:
            raise HdfsError(f"no such file: {path!r}")
        return len(entry.data())

    def reset_stats(self) -> None:
        """Zero the IO counters (between measurement phases)."""
        self.stats = HdfsStats()
