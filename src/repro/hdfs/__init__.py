"""Simulated HDFS with the paper's Fig. 13 column-group x row-group layout."""

from .filesystem import HdfsError, HdfsReader, HdfsStats, HdfsWriter, SimHdfs
from .layout import LayoutConfig, TableLayout
from .put import put_csv

__all__ = [
    "HdfsError",
    "HdfsReader",
    "HdfsStats",
    "HdfsWriter",
    "LayoutConfig",
    "SimHdfs",
    "TableLayout",
    "put_csv",
]
