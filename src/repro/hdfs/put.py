"""The dedicated ``put`` program: stream a CSV into the grid layout.

The paper requires users to upload data with TreeServer's own ``put``
instead of HDFS's, so each column lands in whole-column files workers can
load in their entirety.  The program is memory-efficient: it keeps one
output buffer per column-group (``m`` appenders in the paper's description)
and flushes a grid cell every ``rows_per_group`` rows while *streaming* the
CSV — it never materializes the table.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TextIO

import numpy as np

from ..data.io import MISSING_TOKENS, infer_column_kind
from ..data.schema import ColumnKind, ColumnSpec, ProblemKind, TableSchema
from ..data.table import MISSING_CODE
from .filesystem import SimHdfs
from .layout import LayoutConfig, TableLayout, _encode, _schema_to_json


def _parse_value(spec: ColumnSpec, token: str) -> float | int:
    token = token.strip()
    if token.lower() in MISSING_TOKENS:
        return np.nan if spec.kind is ColumnKind.NUMERIC else MISSING_CODE
    if spec.kind is ColumnKind.NUMERIC:
        return float(token)
    code = spec.code_of(token)
    if code < 0:
        raise ValueError(f"unknown category {token!r} for column {spec.name!r}")
    return code


def _sniff_schema(
    source: str | Path | TextIO, target: str, problem: ProblemKind | None
) -> tuple[TableSchema, int]:
    """First streaming pass: infer column kinds and count rows.

    A real deployment would take a user-declared schema; CSV has no types,
    so one cheap pass stands in for that declaration.
    """
    if isinstance(source, (str, Path)):
        with open(source, newline="") as handle:
            return _sniff_schema(handle, target, problem)
    reader = csv.reader(source)
    header = [h.strip() for h in next(reader)]
    if target not in header:
        raise ValueError(f"target {target!r} not in header")
    kinds = [set() for _ in header]  # type: list[set[str]]
    categories: list[dict[str, int]] = [{} for _ in header]
    numeric = [True] * len(header)
    n_rows = 0
    for row in reader:
        if not row:
            continue
        n_rows += 1
        for i, token in enumerate(row):
            token = token.strip()
            if token.lower() in MISSING_TOKENS:
                continue
            if numeric[i] and infer_column_kind([token]) is ColumnKind.CATEGORICAL:
                numeric[i] = False
            if token not in categories[i]:
                categories[i][token] = len(categories[i])
    del kinds
    specs = []
    target_spec: ColumnSpec | None = None
    for i, name in enumerate(header):
        if numeric[i]:
            spec = ColumnSpec(name, ColumnKind.NUMERIC)
        else:
            spec = ColumnSpec(name, ColumnKind.CATEGORICAL, tuple(categories[i]))
        if name == target:
            target_spec = spec
        else:
            specs.append(spec)
    assert target_spec is not None
    if problem is None:
        problem = (
            ProblemKind.REGRESSION
            if target_spec.kind is ColumnKind.NUMERIC
            else ProblemKind.CLASSIFICATION
        )
    if problem is ProblemKind.CLASSIFICATION and not target_spec.categories:
        raise ValueError("classification target must be categorical")
    return TableSchema(tuple(specs), target_spec, problem), n_rows


def put_csv(
    fs: SimHdfs,
    source: str | Path,
    base_path: str,
    target: str,
    layout: LayoutConfig | None = None,
    problem: ProblemKind | None = None,
) -> TableLayout:
    """Upload a CSV file into the Fig. 13 layout on the simulated DFS.

    Streams the file row by row after a schema-sniffing pass, holding only
    one row-group's worth of values per column in memory.
    """
    config = layout or LayoutConfig()
    schema, n_rows = _sniff_schema(source, target, problem)
    table_layout = TableLayout(fs, base_path, config)
    base = table_layout.base

    with fs.create(
        f"{base}/{TableLayout.SCHEMA_FILE}", overwrite=True
    ) as writer:
        writer.write(_schema_to_json(schema, n_rows, config).encode())

    n_col_groups = table_layout.n_column_groups(schema.n_columns)
    feature_pos = [
        i for i, name in enumerate(_header_of(source)) if name != target
    ]
    target_pos = _header_of(source).index(target)

    buffers: list[list[list[float | int]]] = [
        [[] for _ in table_layout.columns_of_group(cg, schema.n_columns)]
        for cg in range(n_col_groups)
    ]
    target_buffer: list[float | int] = []
    row_group = 0

    def flush() -> None:
        nonlocal row_group
        if not target_buffer:
            return
        for cg in range(n_col_groups):
            cols = table_layout.columns_of_group(cg, schema.n_columns)
            with fs.create(
                table_layout.cell_path(cg, row_group), overwrite=True
            ) as writer:
                for local, col in enumerate(cols):
                    spec = schema.columns[col]
                    writer.write(_encode(spec, np.asarray(buffers[cg][local])))
                    buffers[cg][local].clear()
        path = f"{base}/{TableLayout.TARGET_PREFIX}/rg{row_group}"
        with fs.create(path, overwrite=True) as writer:
            writer.write(_encode(schema.target, np.asarray(target_buffer)))
        target_buffer.clear()
        row_group += 1

    with open(source, newline="") as handle:
        reader = csv.reader(handle)
        next(reader)  # header
        for row in reader:
            if not row:
                continue
            for j, pos in enumerate(feature_pos):
                spec = schema.columns[j]
                cg, local = divmod(j, config.columns_per_group)
                buffers[cg][local].append(_parse_value(spec, row[pos]))
            target_buffer.append(_parse_value(schema.target, row[target_pos]))
            if len(target_buffer) >= config.rows_per_group:
                flush()
        flush()

    table_layout._schema = schema
    table_layout._n_rows = n_rows
    return table_layout


def _header_of(source: str | Path) -> list[str]:
    with open(source, newline="") as handle:
        return [h.strip() for h in next(csv.reader(handle))]
