"""Column-group x row-group data organization on (simulated) HDFS — Fig. 13.

TreeServer needs whole columns (its training partition scheme) while the
deep-forest helper jobs need row partitions (window-sliding extraction and
forest re-representation partition images by rows).  The paper's solution:
organize the table as a grid of files — columns grouped into column-groups,
rows into row-groups, one file per grid cell — so either access pattern
reads few, large files and amortizes the DFS connection cost.

A TreeServer worker loads a column-group by reading the files of one grid
*column*; a row-parallel job loads its row partition by reading the files of
one grid *row*.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

import numpy as np

from ..data.schema import ColumnKind, ColumnSpec, ProblemKind, TableSchema
from ..data.table import DataTable
from .filesystem import SimHdfs


@dataclass(frozen=True)
class LayoutConfig:
    """Grid granularity (the Fig. 13 example uses 50 columns x 250 rows)."""

    columns_per_group: int = 50
    rows_per_group: int = 65536

    def __post_init__(self) -> None:
        if self.columns_per_group < 1 or self.rows_per_group < 1:
            raise ValueError("group sizes must be positive")


def _schema_to_json(schema: TableSchema, n_rows: int, config: LayoutConfig) -> str:
    return json.dumps(
        {
            "problem": schema.problem.value,
            "n_rows": n_rows,
            "columns_per_group": config.columns_per_group,
            "rows_per_group": config.rows_per_group,
            "columns": [
                {
                    "name": c.name,
                    "kind": c.kind.value,
                    "categories": list(c.categories),
                }
                for c in schema.columns
            ],
            "target": {
                "name": schema.target.name,
                "kind": schema.target.kind.value,
                "categories": list(schema.target.categories),
            },
        }
    )


def _spec_from_json(data: dict) -> ColumnSpec:
    return ColumnSpec(
        data["name"], ColumnKind(data["kind"]), tuple(data["categories"])
    )


def _encode(spec: ColumnSpec, arr: np.ndarray) -> bytes:
    dtype = np.float64 if spec.kind is ColumnKind.NUMERIC else np.int32
    return np.ascontiguousarray(arr, dtype=dtype).tobytes()


def _decode(spec: ColumnSpec, data: bytes) -> np.ndarray:
    dtype = np.float64 if spec.kind is ColumnKind.NUMERIC else np.int32
    return np.frombuffer(data, dtype=dtype).copy()


class TableLayout:
    """Reader/writer for one table stored in the grid layout."""

    SCHEMA_FILE = "_schema.json"
    TARGET_PREFIX = "target"

    def __init__(
        self, fs: SimHdfs, base_path: str, config: LayoutConfig | None = None
    ) -> None:
        self.fs = fs
        self.base = base_path.rstrip("/")
        self.config = config or LayoutConfig()
        self._schema: TableSchema | None = None
        self._n_rows: int | None = None

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def save(self, table: DataTable) -> None:
        """Write a table as schema + grid cell files + target row-groups."""
        cfg = self.config
        with self.fs.create(f"{self.base}/{self.SCHEMA_FILE}", overwrite=True) as w:
            w.write(_schema_to_json(table.schema, table.n_rows, cfg).encode())
        n_col_groups = self.n_column_groups(table.n_columns)
        n_row_groups = self.n_row_groups(table.n_rows)
        for cg in range(n_col_groups):
            cols = self.columns_of_group(cg, table.n_columns)
            for rg in range(n_row_groups):
                lo, hi = self.row_range(rg, table.n_rows)
                with self.fs.create(self.cell_path(cg, rg), overwrite=True) as w:
                    for col in cols:
                        spec = table.column_spec(col)
                        w.write(_encode(spec, table.column(col)[lo:hi]))
        # The target column Y is stored separately (replicated to every
        # worker at load time) in row-group files.
        for rg in range(n_row_groups):
            lo, hi = self.row_range(rg, table.n_rows)
            path = f"{self.base}/{self.TARGET_PREFIX}/rg{rg}"
            with self.fs.create(path, overwrite=True) as w:
                w.write(_encode(table.schema.target, table.target[lo:hi]))
        self._schema = table.schema
        self._n_rows = table.n_rows

    # ------------------------------------------------------------------
    # grid arithmetic
    # ------------------------------------------------------------------
    def n_column_groups(self, n_columns: int) -> int:
        """Number of grid columns."""
        return max(1, math.ceil(n_columns / self.config.columns_per_group))

    def n_row_groups(self, n_rows: int) -> int:
        """Number of grid rows."""
        return max(1, math.ceil(n_rows / self.config.rows_per_group))

    def columns_of_group(self, group: int, n_columns: int) -> list[int]:
        """Column indices inside one column-group."""
        lo = group * self.config.columns_per_group
        hi = min(n_columns, lo + self.config.columns_per_group)
        if lo >= n_columns:
            raise ValueError(f"column group {group} out of range")
        return list(range(lo, hi))

    def row_range(self, group: int, n_rows: int) -> tuple[int, int]:
        """Half-open row range of one row-group."""
        lo = group * self.config.rows_per_group
        hi = min(n_rows, lo + self.config.rows_per_group)
        if lo >= n_rows:
            raise ValueError(f"row group {group} out of range")
        return lo, hi

    def cell_path(self, col_group: int, row_group: int) -> str:
        """Path of one grid cell file."""
        return f"{self.base}/cg{col_group}/rg{row_group}"

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def schema(self) -> TableSchema:
        """Read (and cache) the stored schema."""
        if self._schema is None:
            with self.fs.open(f"{self.base}/{self.SCHEMA_FILE}") as r:
                data = json.loads(r.read().decode())
            self._schema = TableSchema(
                tuple(_spec_from_json(c) for c in data["columns"]),
                _spec_from_json(data["target"]),
                ProblemKind(data["problem"]),
            )
            self._n_rows = int(data["n_rows"])
            self.config = LayoutConfig(
                columns_per_group=int(data["columns_per_group"]),
                rows_per_group=int(data["rows_per_group"]),
            )
        return self._schema

    def n_rows(self) -> int:
        """Stored row count."""
        self.schema()
        assert self._n_rows is not None
        return self._n_rows

    def load_column_group(self, group: int) -> dict[int, np.ndarray]:
        """Read whole columns of one column-group (a TreeServer worker's
        load path: one file per row-group, few and large)."""
        schema = self.schema()
        n_rows = self.n_rows()
        cols = self.columns_of_group(group, schema.n_columns)
        parts: dict[int, list[np.ndarray]] = {c: [] for c in cols}
        for rg in range(self.n_row_groups(n_rows)):
            lo, hi = self.row_range(rg, n_rows)
            with self.fs.open(self.cell_path(group, rg)) as r:
                blob = r.read()
            offset = 0
            for col in cols:
                spec = schema.columns[col]
                width = 8 if spec.kind is ColumnKind.NUMERIC else 4
                size = (hi - lo) * width
                parts[col].append(_decode(spec, blob[offset : offset + size]))
                offset += size
        return {c: np.concatenate(parts[c]) for c in cols}

    def load_target(self) -> np.ndarray:
        """Read the full Y column (replicated to every worker)."""
        schema = self.schema()
        n_rows = self.n_rows()
        parts = []
        for rg in range(self.n_row_groups(n_rows)):
            path = f"{self.base}/{self.TARGET_PREFIX}/rg{rg}"
            with self.fs.open(path) as r:
                parts.append(_decode(schema.target, r.read()))
        return np.concatenate(parts)

    def load_row_group(self, group: int) -> DataTable:
        """Read one row partition (the deep-forest helpers' load path: one
        file per column-group, few and large)."""
        schema = self.schema()
        n_rows = self.n_rows()
        lo, hi = self.row_range(group, n_rows)
        columns: list[np.ndarray | None] = [None] * schema.n_columns
        for cg in range(self.n_column_groups(schema.n_columns)):
            cols = self.columns_of_group(cg, schema.n_columns)
            with self.fs.open(self.cell_path(cg, group)) as r:
                blob = r.read()
            offset = 0
            for col in cols:
                spec = schema.columns[col]
                width = 8 if spec.kind is ColumnKind.NUMERIC else 4
                size = (hi - lo) * width
                columns[col] = _decode(spec, blob[offset : offset + size])
                offset += size
        path = f"{self.base}/{self.TARGET_PREFIX}/rg{group}"
        with self.fs.open(path) as r:
            target = _decode(schema.target, r.read())
        assert all(c is not None for c in columns)
        return DataTable(schema, [c for c in columns if c is not None], target)

    def load_table(self) -> DataTable:
        """Read the whole table back (round-trip tests, small data)."""
        schema = self.schema()
        columns: dict[int, np.ndarray] = {}
        for cg in range(self.n_column_groups(schema.n_columns)):
            columns.update(self.load_column_group(cg))
        target = self.load_target()
        return DataTable(
            schema, [columns[i] for i in range(schema.n_columns)], target
        )

    def estimated_load_seconds(
        self,
        connection_seconds: float,
        bandwidth_bytes_per_second: float,
        column_groups: list[int] | None = None,
    ) -> float:
        """Analytic worker load time: connections + bytes (ablation bench).

        This is the quantity the Fig. 13 design optimizes: fewer, larger
        files mean fewer connection setups for the same bytes.
        """
        schema = self.schema()
        n_rows = self.n_rows()
        groups = (
            column_groups
            if column_groups is not None
            else list(range(self.n_column_groups(schema.n_columns)))
        )
        seconds = 0.0
        for cg in groups:
            cols = self.columns_of_group(cg, schema.n_columns)
            for rg in range(self.n_row_groups(n_rows)):
                seconds += connection_seconds
                seconds += (
                    self.fs.file_size(self.cell_path(cg, rg))
                    / bandwidth_bytes_per_second
                )
        # Plus the replicated target column.
        for rg in range(self.n_row_groups(n_rows)):
            path = f"{self.base}/{self.TARGET_PREFIX}/rg{rg}"
            seconds += connection_seconds
            seconds += self.fs.file_size(path) / bandwidth_bytes_per_second
        return seconds
