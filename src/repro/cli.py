"""Command-line interface: train, evaluate and apply tree models on CSVs.

A small operational surface over the library, in the spirit of the released
TreeServer's demo workflow:

* ``train`` — load a CSV, train a decision tree / random forest /
  extra-trees model on the simulated TreeServer deployment, report run
  metrics, and save the model as JSON files.
* ``predict`` — apply a saved model to a CSV and write predictions
  (compiled flat-array engine by default; ``--engine node`` for the
  node-based reference descent).
* ``serve`` — replay a CSV through the micro-batching
  :class:`~repro.serving.server.PredictionServer` and report latency and
  throughput counters; with ``--http``, run the asyncio HTTP/JSON
  gateway (admission control, hedged replicas, hot swap/rollback)
  instead.
* ``worker`` — dial into a ``train --backend socket --listen`` master and
  serve as one remote worker for the duration of the run.
* ``evaluate`` — score a saved model against a labelled CSV.
* ``datasets`` — list the built-in Table-I-shaped synthetic datasets and
  optionally materialize one as a CSV.

Usage::

    python -m repro.cli train --csv data.csv --target label \
        --model-dir model/ --forest 20 --workers 8
    python -m repro.cli predict --csv new.csv --model-dir model/ --out preds.csv
    python -m repro.cli serve --csv new.csv --model-dir model/ --out preds.csv \
        --batch-size 256 --max-delay-ms 2
    python -m repro.cli evaluate --csv held_out.csv --target label --model-dir model/
    python -m repro.cli datasets --materialize higgs_boson --out higgs.csv
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .core.config import (
    SPLIT_MODES,
    TREE_KERNELS,
    SystemConfig,
    TreeConfig,
    TreeKind,
)
from .core.jobs import decision_tree_job, extra_trees_job, random_forest_job
from .core.persistence import load_model_local, save_model_local
from .core.server import TreeServer
from .data.io import read_csv, write_csv
from .data.schema import ProblemKind
from .data.table import DataTable
from .datasets.registry import dataset_names, dataset_spec
from .datasets.synthetic import generate
from .evaluation.metrics import accuracy, rmse
from .runtime import (
    FAULT_POLICIES,
    RuntimeOptions,
    WorkerDiedError,
    graceful_sigint,
    reap_children,
)
from .serving.registry import load_compiled_local
from .serving.server import PredictionServer, QueueFullError, ServerConfig


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TreeServer reproduction: train tree models on CSV data",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train a model from a CSV file")
    train.add_argument("--csv", required=True, help="input CSV path")
    train.add_argument("--target", required=True, help="target column name")
    train.add_argument("--model-dir", required=True, help="output directory")
    train.add_argument("--max-depth", type=int, default=10)
    train.add_argument("--tau-leaf", type=int, default=1)
    train.add_argument(
        "--forest", type=int, default=0, metavar="N",
        help="train a random forest with N trees (default: one tree)",
    )
    train.add_argument(
        "--extra-trees", action="store_true",
        help="use completely-random trees instead of exact splits",
    )
    train.add_argument("--workers", type=int, default=8)
    train.add_argument("--compers", type=int, default=4)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--backend", choices=("sim", "mp", "socket"), default="sim",
        help="execution substrate: sim (discrete-event simulator, default), "
        "mp (real worker processes; same model, wall-clock time), or "
        "socket (TCP transport; loopback subprocesses by default, "
        "--listen for true multi-host runs)",
    )
    train.add_argument(
        "--mp-timeout", type=float, default=30.0, metavar="SECONDS",
        help="mp/socket backends: max silence between protocol messages "
        "before the run is declared wedged",
    )
    train.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="socket backend: listen on this address and wait for "
        "'repro worker --connect' clients instead of self-launching "
        "loopback workers",
    )
    train.add_argument(
        "--hosts", default=None, metavar="ID,ID,...",
        help="socket backend with --listen: comma-separated roster of "
        "expected worker host ids; a dialing worker whose host id is "
        "not on the roster is rejected at rendezvous",
    )
    train.add_argument(
        "--shm", action=argparse.BooleanOptionalAction, default=True,
        help="mp backend: shared-memory data plane — column table in shm "
        "segments, large row-id sets shipped as descriptors "
        "(default: on; --no-shm pickles everything through the queues)",
    )
    train.add_argument(
        "--fault-policy", choices=FAULT_POLICIES, default=None,
        help="worker-crash handling: fail_fast (structured error; mp "
        "default) or recover (reassign the dead worker's columns to "
        "surviving replicas and retrain affected trees; sim default)",
    )
    train.add_argument(
        "--max-worker-failures", type=int, default=1, metavar="N",
        help="fault-policy recover: give up after N worker crashes "
        "(default: 1)",
    )
    train.add_argument(
        "--kernel", choices=TREE_KERNELS, default="vectorized",
        help="subtree training kernel: vectorized (level-synchronous "
        "breadth-first batching, default) or scalar (one node at a "
        "time); both build bit-identical trees",
    )
    train.add_argument(
        "--split-mode", choices=SPLIT_MODES, default="exact",
        help="numeric split search: exact (every distinct value, "
        "default) or hist (equi-depth histogram summaries, O(bins) "
        "scoring and far smaller messages; columns with <= max_bins "
        "distinct values stay exact)",
    )
    train.add_argument(
        "--max-bins", type=int, default=32, metavar="B",
        help="hist split mode: maximum histogram bins per numeric "
        "column (default: 32; must be >= 2)",
    )

    predict = sub.add_parser("predict", help="apply a saved model to a CSV")
    predict.add_argument("--csv", required=True)
    predict.add_argument("--model-dir", required=True)
    predict.add_argument("--out", required=True, help="output CSV path")
    predict.add_argument(
        "--target", default=None,
        help="target column to ignore if present in the CSV",
    )
    predict.add_argument(
        "--max-depth", type=int, default=None,
        help="truncate prediction at this depth (Appendix D)",
    )
    predict.add_argument(
        "--engine", choices=("flat", "node"), default="flat",
        help="flat: compiled array kernel via the registry (default); "
        "node: reference node-based descent",
    )

    serve = sub.add_parser(
        "serve",
        help="replay a CSV through the micro-batching prediction server, "
        "or run the HTTP/JSON gateway (--http)",
    )
    serve.add_argument(
        "--csv", default=None,
        help="rows to serve (CSV replay mode; not used with --http)",
    )
    serve.add_argument("--model-dir", required=True)
    serve.add_argument(
        "--out", default=None,
        help="output CSV path (CSV replay mode; not used with --http)",
    )
    serve.add_argument(
        "--target", default=None,
        help="target column to ignore if present in the CSV",
    )
    serve.add_argument(
        "--batch-size", type=int, default=256,
        help="flush a micro-batch at this many rows",
    )
    serve.add_argument(
        "--max-delay-ms", type=float, default=2.0,
        help="flush when the oldest queued request is this old",
    )
    serve.add_argument("--queue-capacity", type=int, default=4096)
    serve.add_argument(
        "--request-rows", type=int, default=1,
        help="rows per simulated client request",
    )
    serve.add_argument(
        "--max-depth", type=int, default=None,
        help="truncate prediction at this depth (Appendix D)",
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help="serve through a fleet of this many OS worker processes "
        "mapping the compiled model from shared memory (default: "
        "in-process)",
    )
    serve.add_argument(
        "--quantize", action="store_true",
        help="serve the compact float32/int16 compiled form "
        "(see docs/SERVING.md for the accuracy contract)",
    )
    serve.add_argument(
        "--http", action="store_true",
        help="run the asyncio HTTP/JSON gateway instead of replaying a "
        "CSV: POST /predict, /models/swap, /models/rollback, "
        "GET /healthz, /stats (Ctrl-C to stop)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="gateway bind address (default: loopback)",
    )
    serve.add_argument(
        "--port", type=int, default=8080,
        help="gateway port (0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--replicas", type=int, default=1, metavar="R",
        help="prediction-server replicas behind the gateway; >= 2 "
        "enables hedged dispatch of straggling requests",
    )
    serve.add_argument(
        "--client-rate", type=float, default=None, metavar="RPS",
        help="per-client token-bucket quota, requests/second keyed by "
        "the X-Client header (default: unlimited)",
    )
    serve.add_argument(
        "--client-burst", type=int, default=32,
        help="token-bucket burst headroom per client",
    )
    serve.add_argument(
        "--max-waiters", type=int, default=64,
        help="bounded waiting-room seats before 429 + Retry-After",
    )
    serve.add_argument(
        "--hedge-ms", type=float, default=None, metavar="MS",
        help="fixed hedge delay in milliseconds (default: derived from "
        "the observed p99 gateway latency)",
    )

    worker = sub.add_parser(
        "worker",
        help="join a socket-backend training run as a remote worker",
    )
    worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="master address (the train side's --listen)",
    )
    worker.add_argument(
        "--worker-id", required=True, type=int, metavar="N",
        help="this worker's id, 1..n_workers (each id joins exactly once)",
    )
    worker.add_argument("--csv", required=True, help="training CSV path")
    worker.add_argument("--target", required=True, help="target column name")
    worker.add_argument(
        "--host-id", default=None, metavar="ID",
        help="override the auto-detected host identity (hostname/machine-id); "
        "workers sharing a host id exchange shared-memory descriptors",
    )

    evaluate = sub.add_parser("evaluate", help="score a saved model")
    evaluate.add_argument("--csv", required=True)
    evaluate.add_argument("--target", required=True)
    evaluate.add_argument("--model-dir", required=True)

    datasets = sub.add_parser(
        "datasets", help="list / materialize built-in synthetic datasets"
    )
    datasets.add_argument(
        "--materialize", default=None, metavar="NAME",
        help="write this dataset as CSV",
    )
    datasets.add_argument("--out", default=None, help="CSV output path")
    datasets.add_argument(
        "--small", action="store_true", help="use the small variant"
    )
    return parser


def _cmd_train(args: argparse.Namespace, out) -> int:
    if args.max_bins < 2:
        print("--max-bins must be >= 2", file=sys.stderr)
        return 2
    table = read_csv(args.csv, target=args.target)
    config = TreeConfig(
        max_depth=args.max_depth,
        tau_leaf=args.tau_leaf,
        tree_kind=TreeKind.EXTRA if args.extra_trees else TreeKind.DECISION,
        seed=args.seed,
        kernel=args.kernel,
        split_mode=args.split_mode,
        max_bins=args.max_bins,
    )
    if args.forest > 0:
        if args.extra_trees:
            job = extra_trees_job("model", args.forest, config, seed=args.seed)
        else:
            job = random_forest_job("model", args.forest, config, seed=args.seed)
    else:
        job = decision_tree_job("model", config)
    system = SystemConfig(
        n_workers=args.workers, compers_per_worker=args.compers
    ).scaled_to(table.n_rows)
    if args.listen is not None and args.backend != "socket":
        print("--listen requires --backend socket", file=sys.stderr)
        return 2
    hosts = None
    if args.hosts is not None:
        if args.listen is None:
            print("--hosts requires --listen", file=sys.stderr)
            return 2
        hosts = tuple(
            part.strip() for part in args.hosts.split(",") if part.strip()
        )
    options = RuntimeOptions(
        message_timeout_seconds=args.mp_timeout,
        use_shm=args.shm,
        fault_policy=args.fault_policy,
        max_worker_failures=args.max_worker_failures,
        listen=args.listen,
        expected_hosts=hosts,
    )
    server = TreeServer(
        system, backend=args.backend, runtime_options=options
    )
    try:
        with graceful_sigint():
            report = server.fit(table, [job])
    except WorkerDiedError as error:
        policy = options.resolved_fault_policy(args.backend)
        exitcode = (
            error.exitcode if error.exitcode is not None else "unknown"
        )
        hint = (
            "raise --max-worker-failures, add workers, or increase "
            "column replication"
            if policy == "recover"
            else "rerun with --fault-policy recover to retrain on survivors"
        )
        print(
            f"error: worker {error.worker_id} died (exitcode={exitcode}, "
            f"fault-policy={policy}); {hint}",
            file=sys.stderr,
        )
        return 1
    trees = report.trees("model")
    save_model_local(args.model_dir, "model", trees)
    if report.backend in ("mp", "socket"):
        timing = (
            f"in {report.wall_seconds:.3f} wall-clock seconds on "
            f"{args.workers} worker processes"
        )
    else:
        timing = (
            f"in {report.sim_seconds:.3f} simulated seconds "
            f"(CPU {report.cluster.avg_worker_cpu_percent:.0f}%, "
            f"send {report.cluster.avg_worker_send_mbps:.0f} Mbps)"
        )
    print(
        f"trained {len(trees)} tree(s) on {table.n_rows} rows "
        f"({table.n_columns} columns) {timing}",
        file=out,
    )
    transport = report.cluster.transport
    if transport:
        print(
            f"data plane: shm={'on' if transport['shm'] else 'off'} "
            f"start={transport['start_method']} "
            f"messages={transport['messages_sent']} "
            f"pickled={transport['bytes_pickled'] / 1e6:.2f}MB "
            f"shm-mapped={transport['shm_bytes_mapped'] / 1e6:.2f}MB "
            f"coalesced-batches={transport['coalesced_batches']}",
            file=out,
        )
        if transport.get("subtree_nodes_built"):
            print(
                f"training kernel: {transport['kernel']} "
                f"build={transport['subtree_kernel_s']:.3f}s "
                f"gather={transport['subtree_gather_s']:.3f}s "
                f"nodes={transport['subtree_nodes_built']}",
                file=out,
            )
        if transport.get("recovered_workers"):
            print(
                f"fault recovery: policy={transport['fault_policy']} "
                f"recovered-workers={transport['recovered_workers']} "
                f"revoked-trees={transport['revoked_trees']} "
                f"stale-shm-drops={transport['stale_shm_drops']}",
                file=out,
            )
    print(f"model saved to {args.model_dir}", file=out)
    return 0


def _cmd_worker(args: argparse.Namespace, out) -> int:
    from .runtime.socket import HandshakeError, connect_worker

    table = read_csv(args.csv, target=args.target)
    print(
        f"worker {args.worker_id}: dialing {args.connect} "
        f"({table.n_rows} rows, {table.n_columns} columns)",
        file=out,
    )
    try:
        with graceful_sigint():
            code = connect_worker(
                args.connect, args.worker_id, table, host_id=args.host_id
            )
    except HandshakeError as error:
        print(f"error: rendezvous failed: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: cannot reach {args.connect}: {error}", file=sys.stderr)
        return 1
    if code == 0:
        print(f"worker {args.worker_id}: run complete", file=out)
    else:
        print(
            f"worker {args.worker_id}: exited with code {code}",
            file=sys.stderr,
        )
    return code


def _read_feature_csv(
    path: str, target: str | None, problem: ProblemKind
) -> DataTable:
    """Read a prediction-input CSV, tolerating a missing target column."""
    try:
        return read_csv(path, target=target or "", problem=problem)
    except ValueError:
        # No target column in the CSV: append a dummy one.
        import csv as csv_module
        import io

        with open(path, newline="") as handle:
            rows = list(csv_module.reader(handle))
        dummy = "0" if problem is ProblemKind.CLASSIFICATION else "0.0"
        buffer = io.StringIO()
        writer = csv_module.writer(buffer)
        writer.writerow(rows[0] + ["__target__"])
        for row in rows[1:]:
            if row:
                writer.writerow(row + [dummy])
        buffer.seek(0)
        return read_csv(buffer, target="__target__", problem=problem)


def _write_predictions(path: str, predictions) -> None:
    with open(path, "w") as handle:
        handle.write("prediction\n")
        for value in predictions:
            handle.write(f"{value}\n")


def _cmd_predict(args: argparse.Namespace, out) -> int:
    if args.engine == "flat":
        entry, cache_hit = load_compiled_local(args.model_dir)
        engine = entry.predictor
        note = (
            f"engine=flat ({entry.n_trees} tree(s), "
            f"{entry.compiled.total_nodes()} nodes, "
            f"{'cache hit' if cache_hit else 'compiled'})"
        )
    else:
        engine = load_model_local(args.model_dir)
        note = "engine=node"
    table = _read_feature_csv(args.csv, args.target, engine.problem)
    predictions = engine.predict(table, max_depth=args.max_depth)
    _write_predictions(args.out, predictions)
    print(
        f"wrote {len(predictions)} predictions to {args.out} [{note}]",
        file=out,
    )
    return 0


def _cmd_serve_http(args: argparse.Namespace, out) -> int:
    """Run the asyncio HTTP/JSON gateway until interrupted."""
    import signal as signal_module
    import time as time_module

    from .serving.admission import QuotaConfig
    from .serving.gateway import Gateway, GatewayConfig, GatewayThread

    if args.replicas < 1:
        print("--replicas must be >= 1", file=sys.stderr)
        return 2
    entry, _ = load_compiled_local(args.model_dir)
    config = ServerConfig(
        max_batch_size=args.batch_size,
        max_delay_seconds=args.max_delay_ms / 1e3,
        queue_capacity=args.queue_capacity,
        max_depth=args.max_depth,
    )
    replicas = [
        PredictionServer(
            entry.predictor,
            config,
            n_workers=args.workers,
            quantize=args.quantize,
        )
        for _ in range(args.replicas)
    ]
    gateway = Gateway(
        replicas,
        GatewayConfig(
            host=args.host,
            port=args.port,
            quota=QuotaConfig(
                rate=args.client_rate,
                burst=args.client_burst,
                max_waiters=args.max_waiters,
            ),
            hedge_after_ms=args.hedge_ms,
        ),
    )
    runner = GatewayThread(gateway).start()
    print(
        f"gateway listening on http://{args.host}:{runner.port} "
        f"(replicas={args.replicas} workers={args.workers or 'in-process'} "
        f"model={gateway.model_key[:12]})",
        file=out, flush=True,
    )
    # A supervisor's SIGTERM should drain exactly like Ctrl-C: convert it
    # so replicas/fleet workers are reaped, not orphaned.
    def _sigterm(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    try:
        signal_module.signal(signal_module.SIGTERM, _sigterm)
    except ValueError:  # pragma: no cover - non-main thread
        pass
    try:
        with graceful_sigint():
            while True:
                time_module.sleep(0.5)
    except KeyboardInterrupt:
        pass
    finally:
        runner.stop()
    counters = gateway.gateway_counters()
    print(
        f"gateway: requests={counters['http_requests']} "
        f"admitted={counters['admitted']} throttled={counters['throttled']} "
        f"hedges_fired={counters['hedges_fired']} "
        f"hedge_wins={counters['hedge_wins']} "
        f"swaps={counters['swaps']} rollbacks={counters['rollbacks']}",
        file=out,
    )
    return 0


def _cmd_serve(args: argparse.Namespace, out) -> int:
    if args.http:
        return _cmd_serve_http(args, out)
    if args.csv is None or args.out is None:
        print("serve needs --csv and --out (or --http)", file=sys.stderr)
        return 2
    entry, _ = load_compiled_local(args.model_dir)
    table = _read_feature_csv(args.csv, args.target, entry.predictor.problem)
    config = ServerConfig(
        max_batch_size=args.batch_size,
        max_delay_seconds=args.max_delay_ms / 1e3,
        queue_capacity=args.queue_capacity,
        max_depth=args.max_depth,
    )
    chunk = max(1, args.request_rows)
    matrix = np.column_stack(
        [np.asarray(col, dtype=np.float64) for col in table.columns]
    ) if table.n_columns else np.zeros((table.n_rows, 0))
    predictions: list[np.ndarray] = []
    backpressure_waits = 0
    with graceful_sigint(), PredictionServer(
        entry.predictor,
        config,
        n_workers=args.workers,
        quantize=args.quantize,
    ) as server:
        futures = []
        drained = 0  # backpressure cursor: oldest future not yet waited on
        for start in range(0, table.n_rows, chunk):
            rows = matrix[start : start + chunk]
            while True:
                try:
                    futures.append(server.submit(rows))
                    break
                except QueueFullError:
                    # Bounded queue is full: absorb it as backpressure by
                    # waiting for the oldest in-flight request to finish.
                    backpressure_waits += 1
                    futures[drained].result(timeout=60.0)
                    drained += 1
        for future in futures:
            predictions.append(future.result(timeout=60.0))
        report = server.report()
    flat = np.concatenate(predictions) if predictions else np.empty(0)
    _write_predictions(args.out, flat)
    print(f"wrote {len(flat)} predictions to {args.out}", file=out)
    print(report.summary(), file=out)
    print(
        f"rejections: queue_full={report.rejected_queue_full} "
        f"shutdown={report.rejected_shutdown} "
        f"backpressure_waits={backpressure_waits}",
        file=out,
    )
    if report.fleet is not None:
        for worker in report.fleet["workers"]:
            print(
                f"worker {worker['worker_id']}: rows={worker['rows']} "
                f"batches={worker['batches']} "
                f"shm_bytes_mapped={worker['shm_bytes_mapped']} "
                f"respawns={worker['respawns']}",
                file=out,
            )
    return 0


def _cmd_evaluate(args: argparse.Namespace, out) -> int:
    model = load_model_local(args.model_dir)
    table = read_csv(args.csv, target=args.target)
    predictions = model.predict(table)
    if table.problem is ProblemKind.CLASSIFICATION:
        value = accuracy(table.target, predictions)
        print(f"accuracy: {value:.4f}", file=out)
    else:
        value = rmse(table.target, np.asarray(predictions, dtype=float))
        print(f"rmse: {value:.4f}", file=out)
    return 0


def _cmd_datasets(args: argparse.Namespace, out) -> int:
    if args.materialize is None:
        for name in dataset_names():
            spec = dataset_spec(name)
            print(
                f"{name:12s} rows={spec.n_rows:<7d} numeric={spec.n_numeric:<4d}"
                f"categorical={spec.n_categorical:<4d} "
                f"problem={spec.problem.value}",
                file=out,
            )
        return 0
    if args.out is None:
        print("--materialize requires --out", file=sys.stderr)
        return 2
    spec = dataset_spec(args.materialize, small=args.small)
    table = generate(spec)
    write_csv(table, args.out)
    print(f"wrote {table.n_rows} rows to {args.out}", file=out)
    return 0


def main(argv: list[str] | None = None, out=sys.stdout) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "train":
            return _cmd_train(args, out)
        if args.command == "worker":
            return _cmd_worker(args, out)
        if args.command == "predict":
            return _cmd_predict(args, out)
        if args.command == "serve":
            return _cmd_serve(args, out)
        if args.command == "evaluate":
            return _cmd_evaluate(args, out)
        if args.command == "datasets":
            return _cmd_datasets(args, out)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: normal for CLIs.
        return 0
    except KeyboardInterrupt:
        # Ctrl-C: make sure no worker process outlives the run, then exit
        # with the conventional 128 + SIGINT code.
        reaped = reap_children()
        suffix = f" (reaped {reaped} worker process(es))" if reaped else ""
        print(f"interrupted{suffix}", file=sys.stderr)
        return 130
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
