"""Cascade forest (CF): stacked forest layers on re-represented features.

The second phase of a deep forest (paper Fig. 11): layer 0 trains on the
re-representation from the smallest MGS window; each later layer trains on
the previous layer's output PMFs concatenated with the MGS features of the
next window size (cycled).  The layer prediction averages its forests' PMF
outputs; the paper's experiment reports test accuracy after every layer
(Table VII, CF0extract .. CF5extract).

Layers are *sequentially dependent* — exactly the staged-job dependency the
TreeServer master supports — but each layer's forests train concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import TreeConfig, TreeKind
from ..data.schema import ColumnKind, ColumnSpec, ProblemKind, TableSchema
from ..data.table import DataTable
from .backend import TrainedForest


@dataclass(frozen=True)
class CascadeConfig:
    """Cascade hyperparameters (paper: 6 layers, 2 RFs of 20 trees each).

    ``max_depth=None`` reproduces the paper's CF setting (``d_max`` is
    unbounded in the CF stage, which is why training accuracy is 100%).
    """

    n_layers: int = 6
    n_forests: int = 2
    trees_per_forest: int = 20
    max_depth: int | None = None
    #: The paper found extra-trees hurt CF accuracy and used RFs only.
    forest_kinds: tuple[TreeKind, ...] = (TreeKind.DECISION,)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_layers < 1 or self.n_forests < 1:
            raise ValueError("cascade needs >= 1 layer and >= 1 forest")


def features_to_table(
    features: np.ndarray, labels: np.ndarray, n_classes: int
) -> DataTable:
    """Wrap a dense feature matrix as a numeric classification table."""
    n, d = features.shape
    schema = TableSchema(
        tuple(ColumnSpec(f"f{i}", ColumnKind.NUMERIC) for i in range(d)),
        ColumnSpec(
            "label", ColumnKind.CATEGORICAL, tuple(f"c{i}" for i in range(n_classes))
        ),
        ProblemKind.CLASSIFICATION,
    )
    return DataTable(
        schema,
        [np.ascontiguousarray(features[:, i]) for i in range(d)],
        labels.astype(np.int32),
    )


@dataclass
class CascadeLayer:
    """One trained CF layer."""

    index: int
    grain_window: int
    forests: list[TrainedForest] = field(default_factory=list)

    @property
    def train_seconds(self) -> float:
        """Total (simulated) training seconds of this layer."""
        return sum(f.train_seconds for f in self.forests)

    def output(self, features: np.ndarray, n_classes: int) -> np.ndarray:
        """Layer output: concatenated per-forest PMFs, ``(n, F * k)``."""
        table = features_to_table(
            features, np.zeros(len(features), dtype=np.int64), n_classes
        )
        return np.concatenate(
            [t.forest.predict_proba(table) for t in self.forests], axis=1
        )

    def predict_proba(self, features: np.ndarray, n_classes: int) -> np.ndarray:
        """Layer prediction: the *average* of the forests' PMFs."""
        out = self.output(features, n_classes)
        k = n_classes
        return out.reshape(len(features), len(self.forests), k).mean(axis=1)


class CascadeForest:
    """Trains and applies the cascade layers."""

    def __init__(self, config: CascadeConfig, backend) -> None:
        self.config = config
        self.backend = backend
        self.layers: list[CascadeLayer] = []
        self.n_classes = 0

    def layer_input(
        self,
        layer_index: int,
        grain_features: dict[int, np.ndarray],
        previous_output: np.ndarray | None,
    ) -> tuple[np.ndarray, int]:
        """Features feeding one layer: MGS grain (cycled) + previous PMFs."""
        windows = sorted(grain_features)
        window = windows[layer_index % len(windows)]
        grain = grain_features[window]
        if previous_output is None:
            return grain, window
        return np.concatenate([grain, previous_output], axis=1), window

    def fit_layer(
        self,
        layer_index: int,
        grain_features: dict[int, np.ndarray],
        labels: np.ndarray,
        n_classes: int,
        previous_output: np.ndarray | None,
    ) -> tuple[CascadeLayer, np.ndarray]:
        """Train one layer; returns it plus its output on the training set."""
        self.n_classes = n_classes
        cfg = self.config
        features, window = self.layer_input(
            layer_index, grain_features, previous_output
        )
        table = features_to_table(features, labels, n_classes)
        layer = CascadeLayer(index=layer_index, grain_window=window)
        for f in range(cfg.n_forests):
            kind = cfg.forest_kinds[f % len(cfg.forest_kinds)]
            tree_config = TreeConfig(
                max_depth=cfg.max_depth,
                tree_kind=kind,
                seed=cfg.seed * 104729 + layer_index * 127 + f,
            )
            layer.forests.append(
                self.backend.train_forest(
                    table,
                    cfg.trees_per_forest,
                    tree_config,
                    seed=cfg.seed * 37 + layer_index * 11 + f,
                )
            )
        self.layers.append(layer)
        return layer, layer.output(features, n_classes)

    def predict_proba_per_layer(
        self, grain_features: dict[int, np.ndarray]
    ) -> list[np.ndarray]:
        """PMF predictions after each layer (Table VII accuracy column)."""
        outputs: list[np.ndarray] = []
        previous: np.ndarray | None = None
        for layer in self.layers:
            features, _ = self.layer_input(
                layer.index, grain_features, previous
            )
            outputs.append(layer.predict_proba(features, self.n_classes))
            previous = layer.output(features, self.n_classes)
        return outputs

    def predict(self, grain_features: dict[int, np.ndarray]) -> np.ndarray:
        """Final prediction: argmax of the last layer's averaged PMFs."""
        if not self.layers:
            raise RuntimeError("cascade not fitted")
        return np.argmax(self.predict_proba_per_layer(grain_features)[-1], axis=1)

    def compiled(self):
        """Freeze the fitted cascade into flat-array serving form.

        Returns a :class:`~repro.serving.compiler.CompiledCascade` whose
        prediction is parity-tested identical to this object's, with every
        forest traversed by the vectorized kernel — the form the serving
        layer deploys (deep-forest inference is the paper's Section VII
        row-parallel workload).
        """
        from ..serving.compiler import compile_cascade

        return compile_cascade(self)
