"""Deep forest on TreeServer: multi-grained scanning + cascade forest."""

from .backend import LocalBackend, TrainedForest, TreeServerBackend
from .cascade import CascadeConfig, CascadeForest, CascadeLayer, features_to_table
from .mgs import (
    MGSConfig,
    MultiGrainedScanner,
    n_window_positions,
    sliding_windows,
    windows_to_table,
)
from .model import DeepForest, DeepForestReport, StepRecord
from .sequences import (
    SequenceDataset,
    SequenceMGSConfig,
    SequenceScanner,
    generate_sequences,
    n_sequence_positions,
    sliding_windows_1d,
)

__all__ = [
    "CascadeConfig",
    "CascadeForest",
    "CascadeLayer",
    "DeepForest",
    "DeepForestReport",
    "LocalBackend",
    "MGSConfig",
    "MultiGrainedScanner",
    "SequenceDataset",
    "SequenceMGSConfig",
    "SequenceScanner",
    "StepRecord",
    "TrainedForest",
    "TreeServerBackend",
    "features_to_table",
    "generate_sequences",
    "n_sequence_positions",
    "sliding_windows_1d",
    "n_window_positions",
    "sliding_windows",
    "windows_to_table",
]
