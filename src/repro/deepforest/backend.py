"""Forest-training backends for the deep forest pipeline.

The paper trains every forest of a deep forest as a TreeServer job
(Section VII).  This module abstracts that choice so the pipeline can run
either:

* :class:`TreeServerBackend` — each forest is a job on the simulated
  cluster; returns paper-comparable simulated seconds (used by the
  Table VII benchmark);
* :class:`LocalBackend` — forests train with the serial builder and the
  time is *estimated* from the same cost model (used by tests and the
  quick example, where spinning the full protocol for dozens of forests
  would be slow in real time).

Both backends produce identical models for the same seeds (the engine's
exactness invariant), so accuracy numbers do not depend on the backend.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.cost import CostModel
from ..core.builder import train_tree
from ..core.config import SystemConfig, TreeConfig, TreeKind
from ..core.jobs import extra_trees_job, random_forest_job
from ..core.server import TreeServer
from ..data.table import DataTable
from ..ensemble.forest import ForestModel


@dataclass
class TrainedForest:
    """A forest plus the (simulated) seconds its training took."""

    forest: ForestModel
    train_seconds: float


class TreeServerBackend:
    """Train each forest as a TreeServer job on the simulated cluster."""

    def __init__(self, system: SystemConfig | None = None) -> None:
        self.system = system or SystemConfig()

    def train_forest(
        self,
        table: DataTable,
        n_trees: int,
        config: TreeConfig,
        seed: int,
    ) -> TrainedForest:
        """One forest = one TreeServer job (thresholds scaled to the data)."""
        system = self.system.scaled_to(table.n_rows)
        if config.tree_kind is TreeKind.EXTRA:
            job = extra_trees_job("forest", n_trees, config, seed=seed)
        else:
            job = random_forest_job("forest", n_trees, config, seed=seed)
        report = TreeServer(system).fit(table, [job])
        return TrainedForest(
            forest=report.forest("forest"), train_seconds=report.sim_seconds
        )


class LocalBackend:
    """Serial training with an analytic TreeServer-equivalent time estimate.

    The estimate charges the dominant terms of the distributed run —
    subtree/column compute spread over the cluster cores plus the data
    movement of each tree's candidate columns — against the same constants,
    so local-mode reports remain roughly comparable.
    """

    def __init__(
        self,
        system: SystemConfig | None = None,
        cost: CostModel | None = None,
    ) -> None:
        self.system = system or SystemConfig()
        self.cost = cost or CostModel(
            ops_per_second=self.system.core_ops_per_second,
            bandwidth_bytes_per_second=self.system.bandwidth_bytes_per_second,
        )

    def train_forest(
        self,
        table: DataTable,
        n_trees: int,
        config: TreeConfig,
        seed: int,
    ) -> TrainedForest:
        """Train serially; estimate cluster time analytically."""
        if config.tree_kind is TreeKind.EXTRA:
            job = extra_trees_job("forest", n_trees, config, seed=seed)
        else:
            job = random_forest_job("forest", n_trees, config, seed=seed)
        trees = []
        total_ops = 0.0
        total_bytes = 0.0
        for request in job.stages[0].trees:
            tree = train_tree(table, request.config)
            trees.append(tree)
            n_cols = request.config.n_candidate_columns(table.n_columns)
            total_ops += self.cost.subtree_build_ops(table.n_rows, n_cols)
            total_bytes += table.n_rows * n_cols * self.cost.value_bytes
        cores = self.system.n_workers * self.system.compers_per_worker
        compute = self.cost.compute_seconds(total_ops) / cores
        transfer = total_bytes / (
            self.cost.bandwidth_bytes_per_second * self.system.n_workers
        )
        return TrainedForest(
            forest=ForestModel(trees),
            train_seconds=max(compute, transfer),
        )
