"""End-to-end deep forest on TreeServer — the paper's Section VII pipeline.

Reproduces the whole workflow of Table VII, step by step, with per-step
timing:

* ``slide`` — row-parallel window extraction over images;
* ``winWtrain`` — TreeServer jobs training the MGS forests of window ``W``;
* ``winWextract`` — row-parallel re-representation through those forests;
* ``CFitrain`` / ``CFiextract`` — cascade layer training and feature
  extraction, with test accuracy reported after every layer.

Training (forest fitting) timing comes from the configured backend
(simulated TreeServer seconds); the row-parallel helper jobs are charged
analytically against the same cost constants, since they are embarrassingly
parallel scans (the paper's two helper operations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.cost import CostModel
from ..core.config import SystemConfig
from ..datasets.mnist_like import ImageDataset
from ..evaluation.metrics import accuracy
from .backend import LocalBackend
from .cascade import CascadeConfig, CascadeForest
from .mgs import MGSConfig, MultiGrainedScanner, sliding_ops


@dataclass
class StepRecord:
    """One row of the Table VII-style report."""

    step: str
    train_seconds: float
    test_seconds: float | None = None
    test_accuracy: float | None = None


@dataclass
class DeepForestReport:
    """Per-step timings and accuracies of one deep-forest build."""

    steps: list[StepRecord] = field(default_factory=list)

    def step(self, name: str) -> StepRecord:
        """Look up a step by name."""
        for record in self.steps:
            if record.step == name:
                return record
        raise KeyError(name)

    def final_accuracy(self) -> float:
        """Test accuracy after the last cascade layer."""
        cf_steps = [s for s in self.steps if s.test_accuracy is not None]
        if not cf_steps:
            raise RuntimeError("no cascade accuracy recorded")
        return cf_steps[-1].test_accuracy  # type: ignore[return-value]


class DeepForest:
    """Multi-grained scanning + cascade forest, trained step by step."""

    def __init__(
        self,
        mgs_config: MGSConfig | None = None,
        cascade_config: CascadeConfig | None = None,
        backend=None,
        system: SystemConfig | None = None,
    ) -> None:
        self.system = system or SystemConfig()
        self.backend = backend or LocalBackend(self.system)
        self.mgs = MultiGrainedScanner(mgs_config or MGSConfig(), self.backend)
        self.cascade = CascadeForest(
            cascade_config or CascadeConfig(), self.backend
        )
        self.cost = CostModel(
            ops_per_second=self.system.core_ops_per_second,
            bandwidth_bytes_per_second=self.system.bandwidth_bytes_per_second,
        )

    # ------------------------------------------------------------------
    def _row_parallel_seconds(self, ops: float) -> float:
        """Analytic time of an embarrassingly parallel per-image job."""
        cores = self.system.n_workers * self.system.compers_per_worker
        return self.cost.compute_seconds(ops) / cores

    def fit_report(
        self, train: ImageDataset, test: ImageDataset
    ) -> DeepForestReport:
        """Train on ``train``, measuring every Table VII step on ``test``."""
        report = DeepForestReport()
        side = train.side

        # Step: slide (window extraction over train; test timed separately).
        slide_train = self._row_parallel_seconds(
            sliding_ops(train.n_images, side, self.mgs.config)
        )
        slide_test = self._row_parallel_seconds(
            sliding_ops(test.n_images, side, self.mgs.config)
        )
        report.steps.append(StepRecord("slide", slide_train, slide_test))

        # Steps: winWtrain / winWextract per window size.
        train_grain_features: dict[int, np.ndarray] = {}
        test_grain_features: dict[int, np.ndarray] = {}
        for window in self.mgs.config.window_sizes:
            grain = self.mgs.fit_grain(window, train)
            report.steps.append(
                StepRecord(f"win{window}train", grain.train_seconds)
            )
            train_grain_features[window] = self.mgs.transform_grain(
                window, train
            )
            test_grain_features[window] = self.mgs.transform_grain(window, test)
            extract_train = self._row_parallel_seconds(
                self.mgs.transform_ops(window, train.n_images, side)
            )
            extract_test = self._row_parallel_seconds(
                self.mgs.transform_ops(window, test.n_images, side)
            )
            report.steps.append(
                StepRecord(f"win{window}extract", extract_train, extract_test)
            )

        # Steps: cascade layers.
        previous: np.ndarray | None = None
        for layer_index in range(self.cascade.config.n_layers):
            layer, previous = self.cascade.fit_layer(
                layer_index,
                train_grain_features,
                train.labels,
                train.n_classes,
                previous,
            )
            report.steps.append(
                StepRecord(f"CF{layer_index}train", layer.train_seconds)
            )
            # Extract step: re-represent + report test accuracy so far.
            per_layer = self.cascade.predict_proba_per_layer(
                test_grain_features
            )
            acc = accuracy(test.labels, np.argmax(per_layer[-1], axis=1))
            extract_ops = self._layer_traversal_ops(layer, train.n_images)
            extract_test_ops = self._layer_traversal_ops(layer, test.n_images)
            report.steps.append(
                StepRecord(
                    f"CF{layer_index}extract",
                    self._row_parallel_seconds(extract_ops),
                    self._row_parallel_seconds(extract_test_ops),
                    test_accuracy=acc,
                )
            )
        return report

    @staticmethod
    def _layer_traversal_ops(layer, n_images: int) -> float:
        traversals = 0.0
        for trained in layer.forests:
            for tree in trained.forest.trees:
                traversals += max(1, tree.depth)
        return n_images * traversals

    # ------------------------------------------------------------------
    def predict(self, images: ImageDataset) -> np.ndarray:
        """Classify images with the trained pipeline."""
        grain_features = {
            window: self.mgs.transform_grain(window, images)
            for window in self.mgs.config.window_sizes
        }
        return self.cascade.predict(grain_features)
