"""Multi-grained scanning (MGS): sliding-window feature re-representation.

The first phase of a deep forest (paper Fig. 11/12): windows of several
sizes slide over each raw image; the window-sized vectors train forests,
and each image is re-represented as the concatenation of the class-PMF
vectors its windows produce across all forests.  A ``w x w`` window over an
``s x s`` image at stride ``t`` yields ``((s - w) // t + 1)^2`` positions,
so the re-representation "can easily have thousands of dimensions".

The sliding extraction itself is a *row-parallel* job in TreeServer's
deployment (images partitioned over machines' threads — the paper's first
helper operation); :func:`sliding_ops` provides the analytic cost of that
job for the Table VII ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import TreeConfig, TreeKind
from ..data.schema import ColumnKind, ColumnSpec, ProblemKind, TableSchema
from ..data.table import DataTable
from ..datasets.mnist_like import ImageDataset
from .backend import TrainedForest


@dataclass(frozen=True)
class MGSConfig:
    """MGS hyperparameters (paper Table VII uses windows 3, 5, 7)."""

    window_sizes: tuple[int, ...] = (3, 5, 7)
    stride: int = 1
    n_forests: int = 2
    trees_per_forest: int = 20
    max_depth: int | None = 10  # the paper found dmax=100 hurts; 10 is used
    #: One forest kind per forest index; cycled.  The deep-forest paper uses
    #: one random forest and one completely-random forest per grain.
    forest_kinds: tuple[TreeKind, ...] = (TreeKind.DECISION, TreeKind.EXTRA)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.window_sizes:
            raise ValueError("need at least one window size")
        if self.stride < 1:
            raise ValueError("stride must be >= 1")
        if self.n_forests < 1:
            raise ValueError("need at least one forest per window size")


def n_window_positions(side: int, window: int, stride: int) -> int:
    """Positions per axis of a sliding window."""
    if window > side:
        raise ValueError(f"window {window} larger than image side {side}")
    return (side - window) // stride + 1


def sliding_windows(
    images: np.ndarray, window: int, stride: int
) -> np.ndarray:
    """Extract all window vectors: shape ``(n, positions^2, window^2)``.

    Vectorized via stride tricks; the returned array is a copy (windows are
    reused as training rows).
    """
    n, side, _ = images.shape
    positions = n_window_positions(side, window, stride)
    s0, s1, s2 = images.strides
    view = np.lib.stride_tricks.as_strided(
        images,
        shape=(n, positions, positions, window, window),
        strides=(s0, s1 * stride, s2 * stride, s1, s2),
        writeable=False,
    )
    return view.reshape(n, positions * positions, window * window).copy()


def windows_to_table(
    window_vectors: np.ndarray, labels: np.ndarray, n_classes: int
) -> DataTable:
    """Flatten per-image window vectors into one training table.

    Every window inherits its image's label (the deep-forest training
    convention); rows = ``n_images * n_positions``.
    """
    n, positions, dims = window_vectors.shape
    flat = window_vectors.reshape(n * positions, dims)
    schema = TableSchema(
        tuple(ColumnSpec(f"px{i}", ColumnKind.NUMERIC) for i in range(dims)),
        ColumnSpec("label", ColumnKind.CATEGORICAL,
                   tuple(f"c{i}" for i in range(n_classes))),
        ProblemKind.CLASSIFICATION,
    )
    return DataTable(
        schema,
        [np.ascontiguousarray(flat[:, i]) for i in range(dims)],
        np.repeat(labels, positions).astype(np.int32),
    )


def sliding_ops(n_images: int, side: int, config: MGSConfig) -> float:
    """Compute ops of the row-parallel window-sliding job (``slide`` step)."""
    total = 0.0
    for window in config.window_sizes:
        positions = n_window_positions(side, window, config.stride) ** 2
        total += n_images * positions * window * window
    return total


@dataclass
class GrainModel:
    """The trained forests of one window size."""

    window: int
    forests: list[TrainedForest] = field(default_factory=list)

    @property
    def train_seconds(self) -> float:
        """Total (simulated) training seconds of this grain's forests."""
        return sum(f.train_seconds for f in self.forests)


class MultiGrainedScanner:
    """Trains per-grain forests and re-represents images."""

    def __init__(self, config: MGSConfig, backend) -> None:
        self.config = config
        self.backend = backend
        self.grains: dict[int, GrainModel] = {}
        self.n_classes = 0

    # ------------------------------------------------------------------
    # training ("winWtrain" steps of Table VII)
    # ------------------------------------------------------------------
    def fit_grain(self, window: int, data: ImageDataset) -> GrainModel:
        """Train the forests of one window size."""
        cfg = self.config
        self.n_classes = data.n_classes
        vectors = sliding_windows(data.images, window, cfg.stride)
        table = windows_to_table(vectors, data.labels, data.n_classes)
        grain = GrainModel(window=window)
        for f in range(cfg.n_forests):
            kind = cfg.forest_kinds[f % len(cfg.forest_kinds)]
            tree_config = TreeConfig(
                max_depth=cfg.max_depth,
                tree_kind=kind,
                seed=cfg.seed * 7919 + window * 101 + f,
            )
            grain.forests.append(
                self.backend.train_forest(
                    table,
                    cfg.trees_per_forest,
                    tree_config,
                    seed=cfg.seed * 31 + window * 7 + f,
                )
            )
        self.grains[window] = grain
        return grain

    def fit(self, data: ImageDataset) -> None:
        """Train all grains."""
        for window in self.config.window_sizes:
            self.fit_grain(window, data)

    # ------------------------------------------------------------------
    # transformation ("winWextract" steps of Table VII)
    # ------------------------------------------------------------------
    def transform_grain(self, window: int, data: ImageDataset) -> np.ndarray:
        """Re-represent images with one grain's forests.

        Output shape: ``(n_images, positions^2 * n_forests * n_classes)``.
        """
        grain = self.grains.get(window)
        if grain is None:
            raise ValueError(f"grain {window} not fitted")
        vectors = sliding_windows(data.images, window, self.config.stride)
        n, positions, _ = vectors.shape
        table = windows_to_table(
            vectors, np.zeros(n, dtype=np.int64), self.n_classes
        )
        parts = []
        for trained in grain.forests:
            pmf = trained.forest.predict_proba(table)
            parts.append(pmf.reshape(n, positions * self.n_classes))
        return np.concatenate(parts, axis=1)

    def transform_ops(self, window: int, n_images: int, side: int) -> float:
        """Analytic cost of the row-parallel re-representation job."""
        grain = self.grains[window]
        positions = n_window_positions(side, window, self.config.stride) ** 2
        traversals = 0.0
        for trained in grain.forests:
            for tree in trained.forest.trees:
                traversals += max(1, tree.depth)
        return n_images * positions * traversals
