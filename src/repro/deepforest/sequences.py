"""Multi-grained scanning over 1-D sequences.

The deep-forest design (Zhou & Feng 2017, the paper's [37]) applies
multi-grained scanning to sequence data with the same mechanism as images:
windows of several lengths slide along the sequence, window vectors train
forests, and each sequence is re-represented by the concatenated class-PMF
outputs.  The TreeServer paper's case study uses images only; this module
is the natural sequence-data extension, sharing the tabular machinery of
:mod:`repro.deepforest.mgs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import TreeConfig, TreeKind
from .backend import TrainedForest
from .mgs import windows_to_table


@dataclass
class SequenceDataset:
    """A batch of equal-length 1-D sequences with integer class labels."""

    sequences: np.ndarray  # (n, length)
    labels: np.ndarray  # (n,)
    n_classes: int

    def __post_init__(self) -> None:
        if self.sequences.ndim != 2:
            raise ValueError("sequences must be (n, length)")
        if len(self.labels) != len(self.sequences):
            raise ValueError("labels/sequences length mismatch")

    @property
    def n_sequences(self) -> int:
        """Number of sequences."""
        return len(self.sequences)

    @property
    def length(self) -> int:
        """Sequence length."""
        return self.sequences.shape[1]


def n_sequence_positions(length: int, window: int, stride: int) -> int:
    """Window positions along a sequence."""
    if window > length:
        raise ValueError(f"window {window} longer than sequence {length}")
    return (length - window) // stride + 1


def sliding_windows_1d(
    sequences: np.ndarray, window: int, stride: int
) -> np.ndarray:
    """All window vectors: shape ``(n, positions, window)`` (a copy)."""
    n, length = sequences.shape
    positions = n_sequence_positions(length, window, stride)
    s0, s1 = sequences.strides
    view = np.lib.stride_tricks.as_strided(
        sequences,
        shape=(n, positions, window),
        strides=(s0, s1 * stride, s1),
        writeable=False,
    )
    return view.copy()


@dataclass(frozen=True)
class SequenceMGSConfig:
    """MGS hyperparameters for sequence data."""

    window_sizes: tuple[int, ...] = (4, 8)
    stride: int = 1
    n_forests: int = 2
    trees_per_forest: int = 10
    max_depth: int | None = 10
    forest_kinds: tuple[TreeKind, ...] = (TreeKind.DECISION, TreeKind.EXTRA)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.window_sizes:
            raise ValueError("need at least one window size")
        if self.stride < 1:
            raise ValueError("stride must be >= 1")


@dataclass
class SequenceGrain:
    """Trained forests of one window length."""

    window: int
    forests: list[TrainedForest] = field(default_factory=list)


class SequenceScanner:
    """Trains per-grain forests over sequence windows; re-represents."""

    def __init__(self, config: SequenceMGSConfig, backend) -> None:
        self.config = config
        self.backend = backend
        self.grains: dict[int, SequenceGrain] = {}
        self.n_classes = 0

    def fit(self, data: SequenceDataset) -> None:
        """Train the forests of every window length."""
        cfg = self.config
        self.n_classes = data.n_classes
        for window in cfg.window_sizes:
            vectors = sliding_windows_1d(data.sequences, window, cfg.stride)
            table = windows_to_table(vectors, data.labels, data.n_classes)
            grain = SequenceGrain(window=window)
            for f in range(cfg.n_forests):
                kind = cfg.forest_kinds[f % len(cfg.forest_kinds)]
                tree_config = TreeConfig(
                    max_depth=cfg.max_depth,
                    tree_kind=kind,
                    seed=cfg.seed * 6151 + window * 13 + f,
                )
                grain.forests.append(
                    self.backend.train_forest(
                        table,
                        cfg.trees_per_forest,
                        tree_config,
                        seed=cfg.seed * 17 + window * 3 + f,
                    )
                )
            self.grains[window] = grain

    def transform(self, data: SequenceDataset) -> np.ndarray:
        """Concatenated PMF re-representation across all grains."""
        if not self.grains:
            raise RuntimeError("scanner not fitted")
        parts = []
        for window in self.config.window_sizes:
            grain = self.grains[window]
            vectors = sliding_windows_1d(
                data.sequences, window, self.config.stride
            )
            n, positions, _ = vectors.shape
            table = windows_to_table(
                vectors, np.zeros(n, dtype=np.int64), self.n_classes
            )
            for trained in grain.forests:
                pmf = trained.forest.predict_proba(table)
                parts.append(pmf.reshape(n, positions * self.n_classes))
        return np.concatenate(parts, axis=1)


def generate_sequences(
    n_sequences: int,
    length: int = 32,
    n_classes: int = 4,
    noise: float = 0.2,
    seed: int = 7,
) -> SequenceDataset:
    """Synthetic labelled sequences with class-specific local motifs.

    Each class plants a short characteristic motif at a class-dependent
    region — exactly the local structure sliding windows detect.
    """
    rng = np.random.default_rng(seed)
    sequences = rng.normal(0.0, noise, size=(n_sequences, length))
    labels = (np.arange(n_sequences) % n_classes).astype(np.int64)
    rng.shuffle(labels)
    motif_len = 5
    for i in range(n_sequences):
        cls = int(labels[i])
        start = (cls * 7 + int(rng.integers(0, 3))) % (length - motif_len)
        motif = np.sin(np.linspace(0, np.pi * (1 + cls), motif_len)) * 2.0
        sequences[i, start : start + motif_len] += motif
    return SequenceDataset(sequences, labels, n_classes)
