"""CSV reading and writing with schema inference.

TreeServer accepts "flexible user data input like in pandas" and performs
runtime type dispatch per column (paper Section VIII, *Fairness of
Implementation*).  This module provides the equivalent ingestion path: a CSV
file is scanned once to infer, per column, whether it is numeric or
categorical, then encoded into the column-major :class:`DataTable`.

The same reader backs the simulated HDFS ``put`` program
(:mod:`repro.hdfs.put`), which streams rows into per-column-group files.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Sequence, TextIO

import numpy as np

from .schema import ColumnKind, ColumnSpec, ProblemKind, TableSchema
from .table import MISSING_CODE, DataTable

#: Tokens treated as a missing value during parsing (case-insensitive).
MISSING_TOKENS = frozenset({"", "na", "nan", "null", "?"})


def _is_missing(token: str) -> bool:
    return token.strip().lower() in MISSING_TOKENS


def _is_float(token: str) -> bool:
    try:
        float(token)
    except ValueError:
        return False
    return True


def infer_column_kind(tokens: Iterable[str]) -> ColumnKind:
    """Infer a column kind from raw string tokens.

    A column is numeric iff every non-missing token parses as a float.
    A column whose tokens are all missing defaults to numeric.
    """
    for token in tokens:
        if _is_missing(token):
            continue
        if not _is_float(token):
            return ColumnKind.CATEGORICAL
    return ColumnKind.NUMERIC


def _encode_numeric(tokens: Sequence[str]) -> np.ndarray:
    out = np.empty(len(tokens), dtype=np.float64)
    for i, token in enumerate(tokens):
        out[i] = np.nan if _is_missing(token) else float(token)
    return out


def _encode_categorical(tokens: Sequence[str]) -> tuple[np.ndarray, tuple[str, ...]]:
    categories: dict[str, int] = {}
    codes = np.empty(len(tokens), dtype=np.int32)
    for i, token in enumerate(tokens):
        if _is_missing(token):
            codes[i] = MISSING_CODE
            continue
        token = token.strip()
        if token not in categories:
            categories[token] = len(categories)
        codes[i] = categories[token]
    return codes, tuple(categories)


def read_csv(
    source: str | Path | TextIO,
    target: str,
    problem: ProblemKind | None = None,
) -> DataTable:
    """Parse a CSV file with a header row into a :class:`DataTable`.

    Parameters
    ----------
    source:
        Path or open text stream.
    target:
        Name of the column to predict (``Y``).
    problem:
        Force classification or regression; by default regression is chosen
        iff the target column is numeric.
    """
    if isinstance(source, (str, Path)):
        with open(source, newline="") as handle:
            return read_csv(handle, target, problem)

    reader = csv.reader(source)
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("CSV file is empty") from None
    header = [h.strip() for h in header]
    if target not in header:
        raise ValueError(f"target column {target!r} not in header {header}")

    raw_columns: list[list[str]] = [[] for _ in header]
    for row in reader:
        if not row:
            continue
        if len(row) != len(header):
            raise ValueError(
                f"row has {len(row)} fields, header has {len(header)}"
            )
        for buf, token in zip(raw_columns, row):
            buf.append(token)

    target_pos = header.index(target)
    target_tokens = raw_columns[target_pos]
    target_kind = infer_column_kind(target_tokens)
    if problem is None:
        problem = (
            ProblemKind.REGRESSION
            if target_kind is ColumnKind.NUMERIC
            else ProblemKind.CLASSIFICATION
        )

    if problem is ProblemKind.REGRESSION:
        if target_kind is not ColumnKind.NUMERIC:
            raise ValueError("regression requested but target is not numeric")
        target_spec = ColumnSpec(target, ColumnKind.NUMERIC)
        target_arr: np.ndarray = _encode_numeric(target_tokens)
    else:
        codes, classes = _encode_categorical(
            [str(t).strip() for t in target_tokens]
        )
        if (codes == MISSING_CODE).any():
            raise ValueError("target column has missing values")
        target_spec = ColumnSpec(target, ColumnKind.CATEGORICAL, classes)
        target_arr = codes

    specs: list[ColumnSpec] = []
    arrays: list[np.ndarray] = []
    for name, tokens in zip(header, raw_columns):
        if name == target:
            continue
        kind = infer_column_kind(tokens)
        if kind is ColumnKind.NUMERIC:
            specs.append(ColumnSpec(name, ColumnKind.NUMERIC))
            arrays.append(_encode_numeric(tokens))
        else:
            codes, categories = _encode_categorical(tokens)
            specs.append(ColumnSpec(name, ColumnKind.CATEGORICAL, categories))
            arrays.append(codes)

    schema = TableSchema(tuple(specs), target_spec, problem)
    return DataTable(schema, arrays, target_arr)


def write_csv(table: DataTable, destination: str | Path | TextIO) -> None:
    """Write a :class:`DataTable` back to CSV (decoding category codes)."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="") as handle:
            write_csv(table, handle)
            return

    writer = csv.writer(destination)
    header = [c.name for c in table.schema.columns] + [table.schema.target.name]
    writer.writerow(header)
    for i in range(table.n_rows):
        row: list[str] = []
        for spec, col in zip(table.schema.columns, table.columns):
            row.append(_format_value(spec, col[i]))
        row.append(_format_value(table.schema.target, table.target[i]))
        writer.writerow(row)


def _format_value(spec: ColumnSpec, value: float | int) -> str:
    if spec.kind is ColumnKind.NUMERIC:
        return "" if np.isnan(value) else repr(float(value))
    code = int(value)
    return "" if code == MISSING_CODE else spec.categories[code]


def table_to_csv_text(table: DataTable) -> str:
    """Render a table as CSV text (used by the HDFS ``put`` tests)."""
    buf = io.StringIO()
    write_csv(table, buf)
    return buf.getvalue()
