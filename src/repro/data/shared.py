"""Compatibility re-exports: the shm machinery moved to ``repro.data.shm``.

This module was the original home of the mp backend's shared-memory data
plane (``SharedTableHandle``, ``ShmArena`` and the segment lifecycle
helpers).  When the serving fleet needed the same machinery for compiled
models, everything generic was refactored into :mod:`repro.data.shm` —
import from there in new code.  Every public name keeps working from this
path, unchanged.
"""

from __future__ import annotations

from .shm import (
    SHM_NAME_PREFIX,
    AttachedPack,
    AttachedTable,
    PackedArraySpec,
    SharedArrayPack,
    SharedArraySpec,
    SharedTableHandle,
    ShmArena,
    ShmSlice,
    attach_segment,
    create_segment,
    list_segments,
    new_run_prefix,
    unlink_segment,
    unlink_segments,
)

__all__ = [
    "SHM_NAME_PREFIX",
    "AttachedPack",
    "AttachedTable",
    "PackedArraySpec",
    "SharedArrayPack",
    "SharedArraySpec",
    "SharedTableHandle",
    "ShmArena",
    "ShmSlice",
    "attach_segment",
    "create_segment",
    "list_segments",
    "new_run_prefix",
    "unlink_segment",
    "unlink_segments",
]
