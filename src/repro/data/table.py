"""Column-major in-memory data table.

The :class:`DataTable` is the substrate every trainer in this repository
consumes.  It is deliberately column-major — a plain list of NumPy arrays,
one per attribute — because TreeServer's central design decision is to
partition data *by columns* so a single machine can hold an entire attribute
and compute its exact best split without communication (paper Section I/III).

Missing values follow the schema conventions: ``NaN`` in numeric columns and
code ``-1`` in categorical columns.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .schema import ColumnKind, ColumnSpec, ProblemKind, TableSchema

#: Sentinel code for a missing categorical value.
MISSING_CODE: int = -1


@dataclass
class DataTable:
    """A typed, column-major table of ``n`` rows.

    Attributes
    ----------
    schema:
        Column and target descriptions.
    columns:
        One array per feature column: ``float64`` for numeric columns,
        ``int32`` codes for categorical columns.
    target:
        The ``Y`` column: ``float64`` for regression, ``int32`` class codes
        for classification.
    """

    schema: TableSchema
    columns: list[np.ndarray]
    target: np.ndarray

    def __post_init__(self) -> None:
        if len(self.columns) != self.schema.n_columns:
            raise ValueError(
                f"schema declares {self.schema.n_columns} columns, "
                f"got {len(self.columns)} arrays"
            )
        n = len(self.target)
        for spec, arr in zip(self.schema.columns, self.columns):
            if len(arr) != n:
                raise ValueError(f"column {spec.name!r} length {len(arr)} != {n}")
        self.columns = [
            self._coerce(spec, arr)
            for spec, arr in zip(self.schema.columns, self.columns)
        ]
        self.target = self._coerce(self.schema.target, self.target)

    @staticmethod
    def _coerce(spec: ColumnSpec, arr: np.ndarray) -> np.ndarray:
        arr = np.asarray(arr)
        if spec.kind is ColumnKind.NUMERIC:
            return np.ascontiguousarray(arr, dtype=np.float64)
        codes = np.ascontiguousarray(arr, dtype=np.int32)
        if spec.n_categories and codes.size:
            hi = int(codes.max())
            if hi >= spec.n_categories:
                raise ValueError(
                    f"column {spec.name!r} has code {hi} but only "
                    f"{spec.n_categories} categories"
                )
            if int(codes.min()) < MISSING_CODE:
                raise ValueError(f"column {spec.name!r} has code below -1")
        return codes

    # ------------------------------------------------------------------
    # basic shape accessors
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Number of rows ``n``."""
        return len(self.target)

    @property
    def n_columns(self) -> int:
        """Number of feature columns."""
        return len(self.columns)

    @property
    def problem(self) -> ProblemKind:
        """Shortcut to the schema's problem kind."""
        return self.schema.problem

    @property
    def n_classes(self) -> int:
        """Number of target classes (0 for regression)."""
        return self.schema.n_classes

    def column(self, index: int) -> np.ndarray:
        """Return the full array of feature column ``index``."""
        return self.columns[index]

    def column_spec(self, index: int) -> ColumnSpec:
        """Return the spec of feature column ``index``."""
        return self.schema.columns[index]

    # ------------------------------------------------------------------
    # row access
    # ------------------------------------------------------------------
    def take(self, row_ids: np.ndarray | Sequence[int]) -> "DataTable":
        """Materialize the sub-table ``D_x`` for a row-id set ``I_x``.

        This is what a subtree-task's key worker does after pulling the
        requested rows of every candidate column (paper Fig. 3(b)).
        """
        idx = np.asarray(row_ids, dtype=np.int64)
        return DataTable(
            schema=self.schema,
            columns=[c[idx] for c in self.columns],
            target=self.target[idx],
        )

    def row(self, i: int) -> list[float | int]:
        """Return row ``i`` as a list of raw feature values (for prediction)."""
        return [c[i] for c in self.columns]

    def rows(self) -> Iterable[list[float | int]]:
        """Iterate over rows as value lists."""
        for i in range(self.n_rows):
            yield self.row(i)

    def select_columns(self, indices: Sequence[int]) -> "DataTable":
        """Return a table restricted to the given feature columns.

        Used when a tree is trained on a sampled attribute subset ``C``.
        """
        specs = tuple(self.schema.columns[i] for i in indices)
        schema = TableSchema(specs, self.schema.target, self.schema.problem)
        return DataTable(schema, [self.columns[i] for i in indices], self.target)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        schema: TableSchema,
        columns: Sequence[np.ndarray],
        target: np.ndarray,
    ) -> "DataTable":
        """Build a table from pre-encoded arrays (validating shapes/dtypes)."""
        return cls(schema, list(columns), np.asarray(target))

    def split_train_test(
        self, test_fraction: float, seed: int = 0
    ) -> tuple["DataTable", "DataTable"]:
        """Deterministically shuffle and split into train/test tables."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        perm = rng.permutation(self.n_rows)
        n_test = max(1, int(round(self.n_rows * test_fraction)))
        test_ids, train_ids = perm[:n_test], perm[n_test:]
        return self.take(train_ids), self.take(test_ids)

    # ------------------------------------------------------------------
    # bookkeeping used by the simulated cluster's memory accounting
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Total payload bytes across all columns plus the target."""
        return int(sum(c.nbytes for c in self.columns) + self.target.nbytes)

    def missing_mask(self, index: int) -> np.ndarray:
        """Boolean mask of missing entries in feature column ``index``."""
        spec = self.schema.columns[index]
        col = self.columns[index]
        if spec.kind is ColumnKind.NUMERIC:
            return np.isnan(col)
        return col == MISSING_CODE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DataTable(rows={self.n_rows}, cols={self.n_columns}, "
            f"problem={self.problem.value})"
        )


def table_fingerprint(table: DataTable) -> str:
    """Content hash of a table: schema shape plus every payload byte.

    The socket backend's rendezvous handshake compares this hash between
    the master and each dialing worker — exact distributed training is
    only meaningful when every machine holds byte-identical data, and a
    mismatched CSV or encoding difference should fail loudly at join
    time, not as a silently different model.  Hashes cover dtype and
    schema metadata as well as raw bytes, so e.g. the same values as
    ``float32`` vs ``float64`` fingerprint differently.
    """
    h = hashlib.sha256()
    h.update(f"{table.problem.value}|{table.n_classes}|".encode())
    for spec, arr in zip(table.schema.columns, table.columns):
        h.update(
            f"{spec.name}|{spec.kind.value}|{spec.n_categories}|"
            f"{arr.dtype.str}|".encode()
        )
        h.update(np.ascontiguousarray(arr).tobytes())
    h.update(f"target|{table.target.dtype.str}|".encode())
    h.update(np.ascontiguousarray(table.target).tobytes())
    return h.hexdigest()
