"""Tabular data substrate: typed column-major tables, schemas and CSV IO."""

from .io import read_csv, table_to_csv_text, write_csv
from .preprocess import cleanse, drop_sparse_columns, fill_missing, join_tables
from .schema import (
    ColumnKind,
    ColumnSpec,
    ProblemKind,
    SchemaBuilder,
    TableSchema,
)
from .shm import (
    AttachedPack,
    AttachedTable,
    PackedArraySpec,
    SharedArrayPack,
    SharedArraySpec,
    SharedTableHandle,
    ShmArena,
    ShmSlice,
)
from .table import MISSING_CODE, DataTable

__all__ = [
    "AttachedPack",
    "AttachedTable",
    "ColumnKind",
    "ColumnSpec",
    "DataTable",
    "MISSING_CODE",
    "PackedArraySpec",
    "ProblemKind",
    "SchemaBuilder",
    "SharedArrayPack",
    "SharedArraySpec",
    "SharedTableHandle",
    "ShmArena",
    "ShmSlice",
    "cleanse",
    "drop_sparse_columns",
    "fill_missing",
    "join_tables",
    "TableSchema",
    "read_csv",
    "table_to_csv_text",
    "write_csv",
]
