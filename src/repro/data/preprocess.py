"""Dataset preprocessing: joins and cleansing (paper Appendix G).

The paper's loan dataset is built by joining two tables ("Origination
Data" x "Monthly Performance Data") on ``LOAN SEQUENCE NUMBER``, then
dropping every column with more than 75% missing values and filling the
remaining missing values with the column mean.  This module provides those
operations over :class:`~repro.data.table.DataTable` so the full data-prep
pipeline is reproducible, not just the training.
"""

from __future__ import annotations

import numpy as np

from .schema import ColumnKind, ColumnSpec, TableSchema
from .table import MISSING_CODE, DataTable


def join_tables(
    left: DataTable,
    right: DataTable,
    left_key: str,
    right_key: str | None = None,
) -> DataTable:
    """Inner-join two tables on a key column (many-to-one).

    Every ``left`` row is matched to the unique ``right`` row with the same
    key value; unmatched left rows are dropped.  The result carries the
    left table's target and all feature columns of both sides except the
    key columns themselves (join keys like loan sequence numbers are
    identifiers, which the paper strips before training).

    The key columns must be of the same kind on both sides; categorical
    keys are matched by their category *labels* (codes may differ).
    """
    right_key = right_key or left_key
    li = left.schema.column_index(left_key)
    ri = right.schema.column_index(right_key)
    lspec = left.schema.columns[li]
    rspec = right.schema.columns[ri]
    if lspec.kind is not rspec.kind:
        raise ValueError("join key kinds differ between the tables")

    if lspec.kind is ColumnKind.CATEGORICAL:
        left_labels = [
            lspec.categories[c] if c != MISSING_CODE else None
            for c in left.column(li)
        ]
        right_labels = [
            rspec.categories[c] if c != MISSING_CODE else None
            for c in right.column(ri)
        ]
    else:
        left_labels = list(left.column(li))
        right_labels = list(right.column(ri))

    lookup: dict = {}
    for row, label in enumerate(right_labels):
        if label is None or (isinstance(label, float) and np.isnan(label)):
            continue
        if label in lookup:
            raise ValueError(
                f"right key {label!r} is not unique; many-to-one join only"
            )
        lookup[label] = row

    left_rows: list[int] = []
    right_rows: list[int] = []
    for row, label in enumerate(left_labels):
        if label is None or (isinstance(label, float) and np.isnan(label)):
            continue
        match = lookup.get(label)
        if match is not None:
            left_rows.append(row)
            right_rows.append(match)
    if not left_rows:
        raise ValueError("join produced no rows")
    lidx = np.asarray(left_rows, dtype=np.int64)
    ridx = np.asarray(right_rows, dtype=np.int64)

    specs: list[ColumnSpec] = []
    columns: list[np.ndarray] = []
    for i, spec in enumerate(left.schema.columns):
        if i == li:
            continue
        specs.append(spec)
        columns.append(left.column(i)[lidx])
    taken = {spec.name for spec in specs} | {left.schema.target.name}
    for i, spec in enumerate(right.schema.columns):
        if i == ri:
            continue
        name = spec.name if spec.name not in taken else f"{spec.name}_r"
        specs.append(ColumnSpec(name, spec.kind, spec.categories))
        columns.append(right.column(i)[ridx])

    schema = TableSchema(tuple(specs), left.schema.target, left.problem)
    return DataTable(schema, columns, left.target[lidx])


def drop_sparse_columns(
    table: DataTable, max_missing_fraction: float = 0.75
) -> DataTable:
    """Remove feature columns missing in more than the given fraction of
    rows (the paper drops columns with > 75% missing)."""
    keep = [
        i
        for i in range(table.n_columns)
        if table.missing_mask(i).mean() <= max_missing_fraction
    ]
    if not keep:
        raise ValueError("every column exceeded the missing threshold")
    return table.select_columns(keep)


def fill_missing(table: DataTable) -> DataTable:
    """Impute missing values: column mean (numeric) / mode (categorical).

    The paper "cleansed the rest by filling missing values with the mean
    attribute value"; the mode is the categorical analogue.
    """
    columns: list[np.ndarray] = []
    for i, spec in enumerate(table.schema.columns):
        col = table.column(i).copy()
        mask = table.missing_mask(i)
        if mask.any():
            if spec.kind is ColumnKind.NUMERIC:
                present = col[~mask]
                fill = float(present.mean()) if present.size else 0.0
                col[mask] = fill
            else:
                present = col[col != MISSING_CODE]
                if present.size:
                    fill_code = int(np.bincount(present).argmax())
                else:
                    fill_code = 0
                col[mask] = fill_code
        columns.append(col)
    return DataTable(table.schema, columns, table.target.copy())


def cleanse(
    table: DataTable, max_missing_fraction: float = 0.75
) -> DataTable:
    """The paper's full Appendix-G cleansing: drop sparse columns, then
    fill the remaining missing values."""
    return fill_missing(drop_sparse_columns(table, max_missing_fraction))
