"""Shared-memory utility layer: immutable big arrays, mapped not copied.

Both sides of this reproduction hit the same shape: a large, *immutable*
set of NumPy arrays (the training table's columns; a compiled serving
model's flat arrays) must be visible to many OS processes at once.  POSIX
shared memory is exactly that shape — write once, map read-only
everywhere — so the primitives live here as one reusable layer, all with
*explicit* create / attach / close / unlink lifecycles so they work under
any ``multiprocessing`` start method (``fork`` inherits nothing it should
not; ``spawn`` attaches by name):

* segment lifecycle helpers — :func:`create_segment` /
  :func:`attach_segment` / :func:`unlink_segment`, plus the
  :func:`list_segments` / :func:`unlink_segments` crash sweep — every
  segment named under :data:`SHM_NAME_PREFIX` so leak checks have no
  false positives;
* :class:`SharedArrayPack` — N named arrays packed into **one** named
  segment.  The picklable pack carries only per-array
  ``(name, offset, dtype, shape)`` records; :meth:`SharedArrayPack.attach`
  rebuilds every array as a read-only zero-copy view in any process.
  This is what serving's ``SharedCompiledModel`` rides: one segment per
  published model, one ``mmap`` per worker, zero copies.
* :class:`SharedTableHandle` — a per-column shared-memory image of a
  :class:`~repro.data.table.DataTable`.  The creating process copies each
  column array (and the target ``Y``) into its own named segment; the
  picklable handle carries only ``(segment name, dtype, shape)`` per
  array, and :meth:`SharedTableHandle.attach` rebuilds the table as
  read-only zero-copy NumPy views in any other process.
* :class:`ShmArena` — a pooled bump allocator for shipping large row-id
  sets (``I_xl`` / ``I_xr``) between workers.  The owner writes an array
  once and sends only a tiny :class:`ShmSlice` descriptor on the wire;
  readers attach the segment (cached per name) and copy the slice out.
  Slots are recycled when the owner frees them — a whole segment's cursor
  rewinds once all its live slices are freed, which matches the
  protocol's lifecycle (delegate stores are freed when the master
  confirms a child side resolved, by which time causality guarantees
  every reader has consumed its copy).

``repro.data.shared`` re-exports everything here for compatibility — it
was this module's original home before the serving fleet needed the same
machinery.

CPython's ``resource_tracker`` is deliberately kept out of the loop: on
3.12 and earlier it registers segments on *attach* as well as create, and
its registry is a name set shared by every process of the program, so any
multi-process create/attach/unlink choreography leaves it either
double-counting or complaining about names it no longer knows.  Every
constructor here immediately balances the tracker's implicit register,
and :func:`unlink_segments` re-balances before unlinking — ownership is
explicit and the parent's post-join sweep (see
``runtime/process.py``) covers crash paths instead.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path

import numpy as np

from .schema import TableSchema
from .table import DataTable

#: Every segment this package creates starts with this, so leak checks and
#: crash sweeps can identify ours in ``/dev/shm`` without false positives.
SHM_NAME_PREFIX = "repro-shm-"

#: Whether this Python exposes ``SharedMemory(..., track=...)`` (3.13+);
#: if so the tracker never learns about our segments in the first place.
#: Resolved lazily by :func:`_supports_track`.
_HAS_TRACK_PARAM: bool | None = None


def _supports_track() -> bool:
    import inspect

    global _HAS_TRACK_PARAM
    if _HAS_TRACK_PARAM is None:
        try:
            params = inspect.signature(
                shared_memory.SharedMemory.__init__
            ).parameters
            _HAS_TRACK_PARAM = "track" in params
        except (TypeError, ValueError):  # pragma: no cover - C signature
            _HAS_TRACK_PARAM = False
    return _HAS_TRACK_PARAM


def _untrack(segment: shared_memory.SharedMemory) -> None:
    """Balance the implicit ``resource_tracker.register`` (pre-3.13)."""
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker already gone
        pass


def new_run_prefix() -> str:
    """A fresh, collision-safe name prefix for one training run.

    Short on purpose: POSIX limits shm names to ~30 chars on some
    platforms and every segment name appends ``-w<id>-s<n>`` style
    suffixes to this.
    """
    return f"{SHM_NAME_PREFIX}{secrets.token_hex(4)}"


def create_segment(name: str, size: int) -> shared_memory.SharedMemory:
    """Create an untracked shared-memory segment of at least ``size`` bytes."""
    if _supports_track():
        return shared_memory.SharedMemory(
            name=name, create=True, size=max(1, size), track=False
        )
    segment = shared_memory.SharedMemory(
        name=name, create=True, size=max(1, size)
    )
    _untrack(segment)
    return segment


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment by name, untracked."""
    if _supports_track():
        return shared_memory.SharedMemory(name=name, track=False)
    segment = shared_memory.SharedMemory(name=name)
    _untrack(segment)
    return segment


def unlink_segment(segment: shared_memory.SharedMemory) -> None:
    """Unlink without involving the resource tracker, tolerating races.

    On Linux the segment is a plain tmpfs file, so removing it directly
    keeps the tracker entirely out of the exchange — important because
    the pre-3.13 ``SharedMemory.unlink`` path (register to balance its
    unconditional UNREGISTER, then unlink) leaks a tracker entry if the
    process is terminated between the two calls, which a parent's
    ``terminate → join`` shutdown can do to a worker mid-teardown.
    """
    name = segment._name.lstrip("/")
    root = Path("/dev/shm")
    if root.is_dir():
        try:
            (root / name).unlink()
        except FileNotFoundError:
            pass  # someone else (a sweep) beat us to it
        return
    if not _supports_track():  # pragma: no cover - non-Linux
        try:
            resource_tracker.register(segment._name, "shared_memory")
        except Exception:
            pass
    try:  # pragma: no cover - non-Linux
        segment.unlink()
    except FileNotFoundError:
        # ``shm_unlink`` raised before the stdlib's own UNREGISTER ran;
        # rebalance the register above so the tracker forgets the name.
        if not _supports_track():
            try:
                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:
                pass


def list_segments(prefix: str = SHM_NAME_PREFIX) -> list[str]:
    """Names of live shared-memory segments matching ``prefix``.

    Reads ``/dev/shm`` directly (Linux); on platforms without it there is
    no portable enumeration, so the sweep degrades to a no-op and
    lifecycle relies on the in-process teardown paths alone.
    """
    root = Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - non-Linux
        return []
    return sorted(p.name for p in root.glob(f"{prefix}*") if p.is_file())


def unlink_segments(names: list[str]) -> list[str]:
    """Force-unlink the named segments (crash sweep); returns those removed."""
    removed = []
    for name in names:
        try:
            segment = attach_segment(name)
        except FileNotFoundError:
            continue
        unlink_segment(segment)
        segment.close()
        removed.append(name)
    return removed


# ----------------------------------------------------------------------
# shared table
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedArraySpec:
    """Everything needed to re-materialize one array from shared memory."""

    segment: str
    dtype: str
    shape: tuple[int, ...]

    @property
    def nbytes(self) -> int:
        """Payload bytes of the described array."""
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


class AttachedTable:
    """A :class:`DataTable` of read-only views over attached segments.

    Owns the attachments (not the segments): :meth:`close` unmaps them,
    it never unlinks — that is the creator's job.
    """

    def __init__(
        self,
        table: DataTable,
        segments: list[shared_memory.SharedMemory],
        nbytes: int,
    ) -> None:
        self.table = table
        self.nbytes = nbytes
        self._segments = segments

    def close(self) -> None:
        """Unmap all attached segments (idempotent).

        The table's arrays become invalid after this; callers drop both
        together.
        """
        for segment in self._segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - view still exported
                pass
        self._segments = []


class SharedTableHandle:
    """A picklable description of a :class:`DataTable` living in shm.

    Create once in the driver (:meth:`create` copies each column and the
    target into its own named segment), ship the handle to workers under
    any start method, :meth:`attach` there.  The creator — and only the
    creator — calls :meth:`unlink` after the run; attachers only
    :meth:`AttachedTable.close` their views.
    """

    def __init__(
        self,
        schema: TableSchema,
        columns: list[SharedArraySpec],
        target: SharedArraySpec,
    ) -> None:
        self.schema = schema
        self.columns = columns
        self.target = target
        self._owned: list[shared_memory.SharedMemory] = []

    # -- lifecycle ------------------------------------------------------
    @classmethod
    def create(cls, table: DataTable, prefix: str) -> "SharedTableHandle":
        """Copy every array of ``table`` into named shm segments."""
        owned: list[shared_memory.SharedMemory] = []

        def place(array: np.ndarray, name: str) -> SharedArraySpec:
            segment = create_segment(name, array.nbytes)
            owned.append(segment)
            view = np.ndarray(
                array.shape, dtype=array.dtype, buffer=segment.buf
            )
            view[...] = array
            return SharedArraySpec(name, str(array.dtype), tuple(array.shape))

        try:
            specs = [
                place(column, f"{prefix}-c{i}")
                for i, column in enumerate(table.columns)
            ]
            target = place(table.target, f"{prefix}-y")
        except BaseException:
            for segment in owned:
                unlink_segment(segment)
                segment.close()
            raise
        handle = cls(table.schema, specs, target)
        handle._owned = owned
        return handle

    def attach(self) -> AttachedTable:
        """Rebuild the table as read-only zero-copy views in this process."""
        segments: list[shared_memory.SharedMemory] = []

        def view_of(spec: SharedArraySpec) -> np.ndarray:
            segment = attach_segment(spec.segment)
            segments.append(segment)
            array = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf
            )
            array.flags.writeable = False
            return array

        try:
            columns = [view_of(spec) for spec in self.columns]
            target = view_of(self.target)
            table = DataTable(self.schema, columns, target)
        except BaseException:
            for segment in segments:
                segment.close()
            raise
        return AttachedTable(table, segments, self.nbytes)

    def unlink(self) -> None:
        """Destroy the segments (creator only; idempotent)."""
        for segment in self._owned:
            unlink_segment(segment)
            segment.close()
        self._owned = []

    # -- introspection --------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Total shared payload bytes (columns + target)."""
        return sum(spec.nbytes for spec in self.columns) + self.target.nbytes

    def segment_names(self) -> list[str]:
        """All segment names this handle describes."""
        return [spec.segment for spec in self.columns] + [self.target.segment]

    # -- pickling (metadata only; live mappings never travel) -----------
    def __getstate__(self) -> dict:
        return {
            "schema": self.schema,
            "columns": self.columns,
            "target": self.target,
        }

    def __setstate__(self, state: dict) -> None:
        self.schema = state["schema"]
        self.columns = state["columns"]
        self.target = state["target"]
        self._owned = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedTableHandle(columns={len(self.columns)}, "
            f"nbytes={self.nbytes})"
        )


# ----------------------------------------------------------------------
# single-segment array pack
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PackedArraySpec:
    """One array's position inside a :class:`SharedArrayPack` segment."""

    name: str
    offset: int
    dtype: str
    shape: tuple[int, ...]

    @property
    def nbytes(self) -> int:
        """Payload bytes of the described array."""
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


class AttachedPack:
    """Read-only views over one attached :class:`SharedArrayPack` segment.

    Owns the attachment (not the segment): :meth:`close` unmaps it, it
    never unlinks — that is the creator's job.  The views become invalid
    after :meth:`close`; callers drop both together.
    """

    def __init__(
        self,
        arrays: dict[str, np.ndarray],
        segment: shared_memory.SharedMemory,
        nbytes: int,
    ) -> None:
        self.arrays = arrays
        self.nbytes = nbytes
        self._segment: shared_memory.SharedMemory | None = segment

    def close(self) -> None:
        """Unmap the attached segment (idempotent)."""
        if self._segment is None:
            return
        self.arrays = {}
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - view still exported
            pass
        self._segment = None


class SharedArrayPack:
    """N named immutable arrays packed into **one** shared-memory segment.

    Where :class:`SharedTableHandle` spends one segment per column (the
    training table is huge and column-partitioned), a pack trades
    granularity for attach cost: everything lands 8-byte-aligned in a
    single segment, so an attacher performs exactly one ``shm_open`` +
    ``mmap`` no matter how many arrays travel.  That is the right shape
    for compiled serving models — dozens of small arrays per tree, all
    consumed together by every fleet worker.

    The pack itself is picklable metadata only: ``(segment name,
    [(name, offset, dtype, shape), ...])``.  The creator — and only the
    creator — calls :meth:`unlink`; attachers :meth:`AttachedPack.close`
    their views.
    """

    def __init__(self, segment: str, specs: list[PackedArraySpec]) -> None:
        self.segment = segment
        self.specs = specs
        self._owned: shared_memory.SharedMemory | None = None

    # -- lifecycle ------------------------------------------------------
    @classmethod
    def create(
        cls, arrays: list[tuple[str, np.ndarray]], segment_name: str
    ) -> "SharedArrayPack":
        """Copy the named arrays into one fresh segment.

        Names must be unique — they are the attach-side lookup keys.
        """
        names = [name for name, _ in arrays]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate array names in pack: {names}")
        specs: list[PackedArraySpec] = []
        offset = 0
        for name, array in arrays:
            specs.append(
                PackedArraySpec(
                    name, offset, str(array.dtype), tuple(array.shape)
                )
            )
            offset += -(-array.nbytes // 8) * 8  # keep 8-byte alignment
        segment = create_segment(segment_name, max(1, offset))
        try:
            for spec, (_, array) in zip(specs, arrays):
                destination = np.ndarray(
                    array.shape,
                    dtype=array.dtype,
                    buffer=segment.buf,
                    offset=spec.offset,
                )
                destination[...] = array
        except BaseException:
            unlink_segment(segment)
            segment.close()
            raise
        pack = cls(segment_name, specs)
        pack._owned = segment
        return pack

    def attach(self) -> AttachedPack:
        """Rebuild every array as a read-only zero-copy view (one mmap)."""
        segment = attach_segment(self.segment)
        try:
            arrays: dict[str, np.ndarray] = {}
            for spec in self.specs:
                view = np.ndarray(
                    spec.shape,
                    dtype=np.dtype(spec.dtype),
                    buffer=segment.buf,
                    offset=spec.offset,
                )
                view.flags.writeable = False
                arrays[spec.name] = view
        except BaseException:
            segment.close()
            raise
        return AttachedPack(arrays, segment, self.nbytes)

    def unlink(self) -> None:
        """Destroy the segment (creator only; idempotent)."""
        if self._owned is None:
            return
        unlink_segment(self._owned)
        try:
            self._owned.close()
        except BufferError:  # pragma: no cover - view still exported
            pass
        self._owned = None

    # -- introspection --------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Total payload bytes across all packed arrays."""
        return sum(spec.nbytes for spec in self.specs)

    # -- pickling (metadata only; the live mapping never travels) -------
    def __getstate__(self) -> dict:
        return {"segment": self.segment, "specs": self.specs}

    def __setstate__(self, state: dict) -> None:
        self.segment = state["segment"]
        self.specs = state["specs"]
        self._owned = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedArrayPack(segment={self.segment!r}, "
            f"arrays={len(self.specs)}, nbytes={self.nbytes})"
        )


# ----------------------------------------------------------------------
# row-id arena
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShmSlice:
    """Wire descriptor of one array parked in a shared-memory arena.

    This — not the array — is what crosses the transport for large row-id
    sets: ``(segment, offset, count, dtype)``, a few dozen pickled bytes
    regardless of how many million rows it describes.
    """

    segment: str
    offset: int
    count: int
    dtype: str = "int64"

    @property
    def nbytes(self) -> int:
        """Payload bytes the descriptor points at."""
        return self.count * np.dtype(self.dtype).itemsize


class _ArenaSegment:
    """One pooled segment: a bump cursor plus a live-allocation count."""

    __slots__ = ("shm", "name", "cursor", "live")

    def __init__(self, shm: shared_memory.SharedMemory, name: str) -> None:
        self.shm = shm
        self.name = name
        self.cursor = 0
        self.live = 0


class ShmArena:
    """Pooled shared-memory writer (own segments) + reader (attach cache).

    Each worker process owns one arena.  Writes bump-allocate out of
    fixed-size segments (new segments are added on demand, oversized
    payloads get a dedicated one); :meth:`free` decrements a segment's
    live count and rewinds its cursor once it hits zero, so steady-state
    training recycles the same few segments.  Reads resolve a
    :class:`ShmSlice` against the local segment table or an attach cache
    and return a private copy — the copy is what makes the owner's
    recycling safe without any cross-process refcounting.
    """

    #: Default pooled-segment size; large enough that typical row-id sets
    #: of one delegate store fit without a dedicated segment.
    DEFAULT_SEGMENT_BYTES = 4 << 20

    def __init__(
        self, prefix: str, segment_bytes: int = DEFAULT_SEGMENT_BYTES
    ) -> None:
        self.prefix = prefix
        self.segment_bytes = int(segment_bytes)
        self._own: list[_ArenaSegment] = []
        self._by_name: dict[str, _ArenaSegment] = {}
        self._attached: dict[str, shared_memory.SharedMemory] = {}
        #: Live (written, not yet freed) slice count — a leak detector.
        self.live_slices = 0
        self.bytes_written = 0
        self.bytes_read = 0

    # -- owner side -----------------------------------------------------
    def write(self, array: np.ndarray) -> ShmSlice:
        """Park ``array`` in the arena; returns its wire descriptor."""
        array = np.ascontiguousarray(array)
        segment = self._segment_with_room(array.nbytes)
        offset = segment.cursor
        destination = np.ndarray(
            array.shape,
            dtype=array.dtype,
            buffer=segment.shm.buf,
            offset=offset,
        )
        destination[...] = array
        segment.cursor += -(-array.nbytes // 8) * 8  # keep 8-byte alignment
        segment.live += 1
        self.live_slices += 1
        self.bytes_written += array.nbytes
        return ShmSlice(segment.name, offset, int(array.size), str(array.dtype))

    def free(self, ref: ShmSlice) -> None:
        """Release one written slice; a fully-freed segment is recycled."""
        segment = self._by_name.get(ref.segment)
        if segment is None:
            raise ValueError(f"slice {ref} does not belong to this arena")
        segment.live -= 1
        self.live_slices -= 1
        if segment.live < 0:
            raise RuntimeError(f"double free of arena segment {ref.segment}")
        if segment.live == 0:
            segment.cursor = 0

    def _segment_with_room(self, nbytes: int) -> _ArenaSegment:
        for segment in self._own:
            if segment.cursor + nbytes <= segment.shm.size:
                return segment
        size = max(self.segment_bytes, nbytes)
        name = f"{self.prefix}-s{len(self._own)}"
        segment = _ArenaSegment(create_segment(name, size), name)
        self._own.append(segment)
        self._by_name[name] = segment
        return segment

    # -- reader side ----------------------------------------------------
    def read(self, ref: ShmSlice) -> np.ndarray:
        """Copy the described array out of shared memory.

        A copy, deliberately: the receiver may retain the rows long after
        the owner recycles the slot (a column task keeps ``I_x`` until it
        learns whether it is the delegate), so zero-copy stops at the
        wire and one memcpy buys lifetime independence.
        """
        local = self._by_name.get(ref.segment)
        if local is not None:
            buffer = local.shm.buf
        else:
            segment = self._attached.get(ref.segment)
            if segment is None:
                segment = attach_segment(ref.segment)
                self._attached[ref.segment] = segment
            buffer = segment.buf
        view = np.ndarray(
            (ref.count,),
            dtype=np.dtype(ref.dtype),
            buffer=buffer,
            offset=ref.offset,
        )
        self.bytes_read += view.nbytes
        return view.copy()

    # -- teardown -------------------------------------------------------
    def close(self) -> None:
        """Unmap attachments, destroy owned segments (idempotent)."""
        for segment in self._attached.values():
            try:
                segment.close()
            except BufferError:  # pragma: no cover - view still exported
                pass
        self._attached = {}
        for segment in self._own:
            unlink_segment(segment.shm)
            try:
                segment.shm.close()
            except BufferError:  # pragma: no cover - view still exported
                pass
        self._own = []
        self._by_name = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShmArena(prefix={self.prefix!r}, segments={len(self._own)}, "
            f"live={self.live_slices})"
        )
