"""Column and table schemas for the tabular data substrate.

TreeServer is data-type transparent: the system infers, for every column,
whether it is *numeric* (ordinal, split with ``A_i <= v``) or *categorical*
(split with ``A_i in S_l``), and dispatches the matching exact split-search
algorithm (paper Appendix B).  The schema layer records that decision once so
every component — the serial builder, the distributed engine, the baselines
and the simulated HDFS layout — agrees on how each column is encoded.

Encodings used throughout the repository:

* numeric columns are ``float64`` arrays; ``NaN`` marks a missing value;
* categorical columns are ``int32`` code arrays indexing a category list;
  code ``-1`` marks a missing value.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence


class ColumnKind(enum.Enum):
    """How a column's values are interpreted when searching for splits."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"


class ProblemKind(enum.Enum):
    """The learning problem the target column defines."""

    CLASSIFICATION = "classification"
    REGRESSION = "regression"


@dataclass(frozen=True)
class ColumnSpec:
    """Static description of one column.

    Parameters
    ----------
    name:
        Human readable column name (``A1`` ... in the paper's notation).
    kind:
        Whether the column is numeric or categorical.
    categories:
        For categorical columns, the ordered list of category labels; the
        integer code of a value is its position in this tuple.  Empty for
        numeric columns.
    """

    name: str
    kind: ColumnKind
    categories: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind is ColumnKind.NUMERIC and self.categories:
            raise ValueError(f"numeric column {self.name!r} cannot list categories")

    @property
    def n_categories(self) -> int:
        """Number of distinct categories (0 for numeric columns)."""
        return len(self.categories)

    def code_of(self, label: str) -> int:
        """Return the integer code of a category label, or -1 if unseen."""
        try:
            return self.categories.index(label)
        except ValueError:
            return -1


@dataclass(frozen=True)
class TableSchema:
    """Schema of a full data table: feature columns plus one target column.

    The target column ``Y`` is carried separately from the feature columns
    because TreeServer replicates ``Y`` on every worker machine while feature
    columns are partitioned (paper Section III).
    """

    columns: tuple[ColumnSpec, ...]
    target: ColumnSpec
    problem: ProblemKind = ProblemKind.CLASSIFICATION

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns] + [self.target.name]
        if len(set(names)) != len(names):
            raise ValueError("duplicate column names in schema")
        if self.problem is ProblemKind.REGRESSION:
            if self.target.kind is not ColumnKind.NUMERIC:
                raise ValueError("regression target must be numeric")
        elif self.target.kind is not ColumnKind.CATEGORICAL:
            raise ValueError("classification target must be categorical")

    @property
    def n_columns(self) -> int:
        """Number of feature columns (the paper's ``m - 1``)."""
        return len(self.columns)

    @property
    def n_classes(self) -> int:
        """Number of target classes (0 for regression)."""
        if self.problem is ProblemKind.REGRESSION:
            return 0
        return self.target.n_categories

    def column_index(self, name: str) -> int:
        """Return the position of a feature column by name."""
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise KeyError(f"no feature column named {name!r}")

    def numeric_indices(self) -> list[int]:
        """Indices of all numeric feature columns."""
        return [i for i, c in enumerate(self.columns) if c.kind is ColumnKind.NUMERIC]

    def categorical_indices(self) -> list[int]:
        """Indices of all categorical feature columns."""
        return [
            i for i, c in enumerate(self.columns) if c.kind is ColumnKind.CATEGORICAL
        ]


@dataclass
class SchemaBuilder:
    """Incremental helper for constructing a :class:`TableSchema`.

    Used by the synthetic dataset generators and the CSV reader, both of
    which discover columns one at a time.
    """

    problem: ProblemKind = ProblemKind.CLASSIFICATION
    _columns: list[ColumnSpec] = field(default_factory=list)
    _target: ColumnSpec | None = None

    def add_numeric(self, name: str) -> "SchemaBuilder":
        """Append a numeric feature column."""
        self._columns.append(ColumnSpec(name, ColumnKind.NUMERIC))
        return self

    def add_categorical(self, name: str, categories: Sequence[str]) -> "SchemaBuilder":
        """Append a categorical feature column with the given category list."""
        self._columns.append(
            ColumnSpec(name, ColumnKind.CATEGORICAL, tuple(categories))
        )
        return self

    def set_target_numeric(self, name: str) -> "SchemaBuilder":
        """Declare a numeric (regression) target column."""
        self._target = ColumnSpec(name, ColumnKind.NUMERIC)
        self.problem = ProblemKind.REGRESSION
        return self

    def set_target_classes(self, name: str, classes: Sequence[str]) -> "SchemaBuilder":
        """Declare a categorical (classification) target column."""
        self._target = ColumnSpec(name, ColumnKind.CATEGORICAL, tuple(classes))
        self.problem = ProblemKind.CLASSIFICATION
        return self

    def build(self) -> TableSchema:
        """Finalize and validate the schema."""
        if self._target is None:
            raise ValueError("schema has no target column")
        return TableSchema(tuple(self._columns), self._target, self.problem)
