"""Equi-depth histogram split candidates — PLANET / Spark MLlib style.

PLANET (and MLlib, which adopts it) avoids the per-split-value communication
of exact search by computing, per numeric attribute, an approximate
equi-depth histogram up front and considering *one* splitting value per
bucket (paper Section II, Related Systems).  MLlib exposes this as the
``maxBins`` parameter (default 32), which the paper uses in Table II.

:func:`equi_depth_thresholds` computes the candidate split values exactly as
MLlib's ``findSplits`` does conceptually: quantiles of the full column.
:func:`best_binned_numeric_split` then scores only those candidates, reusing
the repository's impurity machinery so the accuracy difference vs exact
search is purely the binning approximation — the effect Table II measures.
"""

from __future__ import annotations

import numpy as np

from ..core.impurity import (
    Impurity,
    classification_impurity_rows,
    variance_rows,
    weighted_children_impurity,
)
from ..core.splits import CandidateSplit
from ..data.schema import ColumnKind


def equi_depth_thresholds(values: np.ndarray, max_bins: int) -> np.ndarray:
    """Candidate thresholds: ``max_bins - 1`` equi-depth quantiles.

    Computed once per column over the whole table at training start, as in
    MLlib; missing values are ignored.  Duplicate quantiles collapse, so
    low-cardinality columns get exact candidate sets (also as in MLlib).
    """
    if max_bins < 2:
        raise ValueError("max_bins must be >= 2")
    present = values[~np.isnan(values)]
    if present.size == 0:
        return np.empty(0)
    qs = np.linspace(0.0, 1.0, max_bins + 1)[1:-1]
    # method="lower": candidates are actual data values, as in MLlib.
    thresholds = np.unique(np.quantile(present, qs, method="lower"))
    # A threshold equal to the maximum would send everything left.
    return thresholds[thresholds < present.max()]


def bin_indices(values: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
    """Bucket index per row: ``searchsorted`` over the thresholds.

    Bin ``b`` contains rows with ``thresholds[b-1] < v <= thresholds[b]``;
    missing values get bin ``-1``.
    """
    bins = np.searchsorted(thresholds, values, side="left").astype(np.int64)
    bins[np.isnan(values)] = -1
    return bins


def best_binned_numeric_split(
    column: int,
    bins: np.ndarray,
    thresholds: np.ndarray,
    y: np.ndarray,
    criterion: Impurity,
    n_classes: int,
) -> CandidateSplit | None:
    """Best candidate threshold from pre-binned values.

    Statistics per bucket are what the distributed PLANET aggregation ships;
    scoring over ``<= max_bins`` prefix cuts replaces the exact scan.
    """
    present = bins >= 0
    n_missing = int(bins.size - present.sum())
    b = bins[present]
    ys = y[present]
    if b.size < 2 or thresholds.size == 0:
        return None
    n_bins = len(thresholds) + 1

    if criterion.is_classification:
        flat = b * n_classes + ys.astype(np.int64)
        stats = np.bincount(flat, minlength=n_bins * n_classes).reshape(
            n_bins, n_classes
        ).astype(np.float64)
        cum = np.cumsum(stats, axis=0)[:-1]  # prefix: "bin <= t" per threshold
        total = stats.sum(axis=0)
        n_left = cum.sum(axis=1)
        n_right = total.sum() - n_left
        left_imp = classification_impurity_rows(cum, criterion)
        right_imp = classification_impurity_rows(total[None, :] - cum, criterion)
    else:
        counts = np.bincount(b, minlength=n_bins).astype(np.float64)
        sums = np.bincount(b, weights=ys, minlength=n_bins)
        sqs = np.bincount(b, weights=ys * ys, minlength=n_bins)
        c_cum = np.cumsum(counts)[:-1]
        s_cum = np.cumsum(sums)[:-1]
        q_cum = np.cumsum(sqs)[:-1]
        n_left = c_cum
        n_right = counts.sum() - c_cum
        left_imp = variance_rows(c_cum, s_cum, q_cum)
        right_imp = variance_rows(
            counts.sum() - c_cum, sums.sum() - s_cum, sqs.sum() - q_cum
        )

    valid = (n_left > 0) & (n_right > 0)
    if not valid.any():
        return None
    scores = weighted_children_impurity(left_imp, n_left, right_imp, n_right)
    scores = np.where(valid, scores, np.inf)
    best = int(np.argmin(scores))
    nl, nr = int(n_left[best]), int(n_right[best])
    return CandidateSplit(
        column=column,
        kind=ColumnKind.NUMERIC,
        score=float(scores[best]),
        n_left=nl + (n_missing if nl >= nr else 0),
        n_right=nr + (0 if nl >= nr else n_missing),
        threshold=float(thresholds[best]),
        n_missing=n_missing,
        missing_to_left=nl >= nr,
    )
