"""Equi-depth histogram splits — re-exports of the promoted core module.

This module started as the PLANET / Spark-MLlib-style prototype of
histogram split search (the comparison system of the paper's Table II).
The machinery has been promoted into :mod:`repro.core.histogram` as the
engine behind ``TreeConfig(split_mode="hist")`` — gaining the
exact-collapse parity fix (columns with at most ``max_bins`` distinct
values bin on their exact distinct values), node-local missing-row
accounting, and degenerate-column guards on the way.  The
:mod:`repro.baselines.planet` trainer keeps importing from here; it now
runs on exactly the same code as the core hist path.
"""

from __future__ import annotations

from ..core.histogram import (
    ColumnHistogram,
    best_binned_numeric_split,
    bin_indices,
    column_histogram,
    equi_depth_thresholds,
    score_histogram,
)

__all__ = [
    "ColumnHistogram",
    "best_binned_numeric_split",
    "bin_indices",
    "column_histogram",
    "equi_depth_thresholds",
    "score_histogram",
]
