"""Baseline systems the paper compares against: PLANET/MLlib-style
histogram training and XGBoost-style gradient boosting."""

from .histogram import (
    best_binned_numeric_split,
    bin_indices,
    equi_depth_thresholds,
)
from .planet import PlanetConfig, PlanetReport, PlanetTrainer
from .sketch import WeightedQuantileSketch
from .yggdrasil import YggdrasilConfig, YggdrasilReport, YggdrasilTrainer
from .xgboost_like import (
    XGBoostConfig,
    XGBoostModel,
    XGBoostReport,
    XGBoostTrainer,
)

__all__ = [
    "PlanetConfig",
    "PlanetReport",
    "PlanetTrainer",
    "WeightedQuantileSketch",
    "XGBoostConfig",
    "XGBoostModel",
    "XGBoostReport",
    "XGBoostTrainer",
    "YggdrasilConfig",
    "YggdrasilReport",
    "YggdrasilTrainer",
    "best_binned_numeric_split",
    "bin_indices",
    "equi_depth_thresholds",
]
