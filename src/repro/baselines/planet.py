"""PLANET / Spark-MLlib-style baseline: row-partitioned, level-synchronous,
histogram-approximate tree training.

This is the comparison system of the paper's Tables II, IV, V and VI.  It
reproduces both axes on which TreeServer beats MLlib:

* **Approximation** — numeric splits are chosen among ``maxBins`` equi-depth
  candidates (computed once up front, as MLlib's ``findSplits`` does), so
  the trained model differs slightly from the exact one.  Categorical
  attributes are handled exactly (MLlib does not bin small-arity
  categoricals).  The *model* produced here is real — accuracy rows in the
  benchmark tables come from actually predicting with it.
* **Execution model** — training proceeds level-by-level over row-partitioned
  data: every iteration is a full pass over the table (each machine scans
  its row block and builds per-node statistics), histograms are aggregated
  at the driver, and each iteration pays a fixed Spark-stage overhead.
  Upper levels are therefore IO-bound with CPUs underutilized — exactly the
  behaviour the paper's Introduction criticizes.  The time ledger charges
  these costs against the same :class:`~repro.cluster.CostModel` constants
  the TreeServer simulation uses, so simulated seconds are comparable.

MLlib's random forests batch nodes of several trees into one iteration
bounded by memory (``node_group_size`` here), which this trainer models too.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..cluster.cost import CostModel
from ..core.builder import (
    node_statistics,
    parent_impurity_of,
    sample_candidate_columns,
)
from ..core.config import ColumnSampling, TreeConfig
from ..core.splits import (
    CandidateSplit,
    best_split_for_column,
    route_training_rows,
)
from ..core.tree import DecisionTree, TreeNode
from ..data.schema import ColumnKind, ProblemKind
from ..data.table import DataTable
from .histogram import best_binned_numeric_split, bin_indices, equi_depth_thresholds


@dataclass(frozen=True)
class PlanetConfig:
    """Deployment knobs of the MLlib-style baseline."""

    max_bins: int = 32
    n_machines: int = 15
    threads_per_machine: int = 10
    #: Fixed per-iteration job overhead (Spark stage scheduling, task
    #: launch, shuffle setup).  Local single-process mode is much cheaper.
    stage_overhead_seconds: float = 0.02
    #: Nodes whose statistics fit in one iteration (the maxMemoryInMB
    #: analogue: ~256 MB over a few KB of per-node statistics allows
    #: thousands of nodes per pass).
    node_group_size: int = 4096
    #: Ops per (row, column) statistic update in the JVM row-iterator scan.
    #: Calibrated against the paper's fairness experiment: single-threaded
    #: MLlib is comparable to single-threaded TreeServer, whose exact scan
    #: costs ~``log2(n)`` ops per value — so the binned row-wise update is
    #: charged a similar per-value constant.
    row_scan_ops_per_value: float = 12.0
    #: Executor-side ops per histogram entry for serialization and
    #: treeAggregate merging — CPU work that scales with threads (this is
    #: why the paper's MLlib shows thread scaling even when network bytes
    #: do not shrink).
    hist_merge_ops_per_entry: float = 25.0
    #: Effective multiples of one histogram payload crossing the bottleneck
    #: link during treeAggregate plus the broadcast of split decisions.
    aggregation_fanin_factor: float = 3.0

    def single_thread(self) -> "PlanetConfig":
        """The paper's *MLlib (Single Thread)* configuration.

        One machine, one thread, local-mode overheads, no histogram
        shipping (everything is in one JVM).
        """
        return PlanetConfig(
            max_bins=self.max_bins,
            n_machines=1,
            threads_per_machine=1,
            stage_overhead_seconds=0.001,
            node_group_size=self.node_group_size,
            row_scan_ops_per_value=self.row_scan_ops_per_value,
            hist_merge_ops_per_entry=0.0,  # everything stays in one JVM
            aggregation_fanin_factor=0.0,
        )


@dataclass
class _NodeWork:
    """One examined node, as the cost ledger sees it."""

    level: int
    n_rows: int
    n_columns: int


@dataclass
class PlanetReport:
    """Trained model plus the simulated time breakdown."""

    trees: list[DecisionTree]
    sim_seconds: float
    n_iterations: int
    scan_seconds: float
    comm_seconds: float
    overhead_seconds: float
    nodes_examined: int

    def forest(self):
        """Trees wrapped as a :class:`repro.ensemble.ForestModel`."""
        from ..ensemble.forest import ForestModel

        return ForestModel(self.trees)

    def tree(self) -> DecisionTree:
        """The single tree of a one-tree run."""
        if len(self.trees) != 1:
            raise ValueError(f"run trained {len(self.trees)} trees")
        return self.trees[0]


class PlanetTrainer:
    """Level-synchronous approximate trainer with a simulated-time ledger."""

    def __init__(
        self, config: PlanetConfig | None = None, cost: CostModel | None = None
    ) -> None:
        self.config = config or PlanetConfig()
        self.cost = cost or CostModel()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def fit(
        self,
        table: DataTable,
        tree_config: TreeConfig | None = None,
        n_trees: int = 1,
        seed: int = 0,
    ) -> PlanetReport:
        """Train ``n_trees`` trees (sharing one node queue, as MLlib does)."""
        if n_trees < 1:
            raise ValueError("need at least one tree")
        base = tree_config or TreeConfig()
        if n_trees > 1 and base.column_sampling is ColumnSampling.ALL:
            # Forests use sqrt(|A|) columns per tree (paper Section VIII);
            # normalize exactly as TreeServer's random_forest_job does.
            base = replace(
                base, column_sampling=ColumnSampling.SQRT, seed=base.seed or seed
            )
        thresholds, bins = self._find_splits(table)
        work: list[_NodeWork] = []
        trees = []
        for i in range(n_trees):
            config = base.with_seed(base.seed * 1_000_003 + i) if n_trees > 1 else base
            trees.append(self._train_tree(table, config, thresholds, bins, work, i))
        ledger = self._ledger(table, work)
        return PlanetReport(trees=trees, **ledger)

    # ------------------------------------------------------------------
    # split candidates (findSplits)
    # ------------------------------------------------------------------
    def _find_splits(
        self, table: DataTable
    ) -> tuple[dict[int, np.ndarray], dict[int, np.ndarray]]:
        thresholds: dict[int, np.ndarray] = {}
        bins: dict[int, np.ndarray] = {}
        for idx in table.schema.numeric_indices():
            t = equi_depth_thresholds(table.column(idx), self.config.max_bins)
            thresholds[idx] = t
            bins[idx] = bin_indices(table.column(idx), t)
        return thresholds, bins

    # ------------------------------------------------------------------
    # model construction (level-synchronous, real computation)
    # ------------------------------------------------------------------
    def _train_tree(
        self,
        table: DataTable,
        config: TreeConfig,
        thresholds: dict[int, np.ndarray],
        bins: dict[int, np.ndarray],
        work: list[_NodeWork],
        tree_id: int,
    ) -> DecisionTree:
        candidates = sample_candidate_columns(config, table.n_columns)
        criterion = config.resolved_criterion(
            table.problem is ProblemKind.CLASSIFICATION
        )
        root_ids = np.arange(table.n_rows, dtype=np.int64)
        frontier: list[tuple[int, np.ndarray, TreeNode | None, str]] = [
            (1, root_ids, None, "")
        ]
        root_holder: list[TreeNode] = []
        while frontier:
            next_frontier: list[tuple[int, np.ndarray, TreeNode | None, str]] = []
            for path, ids, parent, side in frontier:
                depth = path.bit_length() - 1
                y = table.target[ids]
                stats = node_statistics(y, table.problem, table.n_classes)
                node = TreeNode(
                    node_id=path,
                    depth=depth,
                    n_rows=stats.n_rows,
                    prediction=stats.prediction,
                )
                if parent is None:
                    root_holder.append(node)
                else:
                    setattr(parent, side, node)
                work.append(
                    _NodeWork(
                        level=depth, n_rows=stats.n_rows, n_columns=len(candidates)
                    )
                )
                stop = (
                    stats.is_pure
                    or stats.n_rows <= config.tau_leaf
                    or (
                        config.max_depth is not None
                        and depth >= config.max_depth
                    )
                )
                if stop:
                    continue
                split = self._best_approx_split(
                    table, ids, candidates, criterion, thresholds, bins
                )
                parent_imp = parent_impurity_of(y, criterion, table.n_classes)
                if (
                    split is None
                    or split.n_left == 0
                    or split.n_right == 0
                    or split.score >= parent_imp - config.min_impurity_decrease
                ):
                    continue
                node.split = split
                go_left = route_training_rows(
                    table.column(split.column)[ids], split
                )
                next_frontier.append((2 * path, ids[go_left], node, "left"))
                next_frontier.append((2 * path + 1, ids[~go_left], node, "right"))
            frontier = next_frontier
        return DecisionTree(
            root=root_holder[0],
            problem=table.problem,
            n_classes=table.n_classes,
            tree_id=tree_id,
        )

    def _best_approx_split(
        self,
        table: DataTable,
        ids: np.ndarray,
        candidates: tuple[int, ...],
        criterion,
        thresholds: dict[int, np.ndarray],
        bins: dict[int, np.ndarray],
    ) -> CandidateSplit | None:
        y = table.target[ids]
        best: CandidateSplit | None = None
        for col in candidates:
            spec = table.column_spec(col)
            if spec.kind is ColumnKind.NUMERIC:
                split = best_binned_numeric_split(
                    col,
                    bins[col][ids],
                    thresholds[col],
                    y,
                    criterion,
                    table.n_classes,
                )
            else:
                split = best_split_for_column(
                    col,
                    spec.kind,
                    table.column(col)[ids],
                    y,
                    criterion,
                    table.n_classes,
                    spec.n_categories,
                )
            if split is None:
                continue
            if best is None or split.sort_key() < best.sort_key():
                best = split
        return best

    # ------------------------------------------------------------------
    # simulated-time ledger
    # ------------------------------------------------------------------
    def _ledger(self, table: DataTable, work: list[_NodeWork]) -> dict:
        """Charge the level-synchronous execution against the cost model.

        Iterations pull nodes level-by-level (across trees), up to
        ``node_group_size`` per iteration.  Each iteration pays:

        * a full row-block pass on every machine (reading + routing every
          row, whether or not its node is in the group) — the IO-bound term;
        * per-node statistic building over the node's rows and columns;
        * histogram shipping: ``machines * nodes * cols * bins * stat_width``
          bytes into the driver NIC;
        * driver-side split selection;
        * a fixed stage overhead.
        """
        cfg = self.config
        cost = self.cost
        cores = cfg.n_machines * cfg.threads_per_machine
        stat_width = max(2, table.n_classes) if table.n_classes else 3

        by_level: dict[int, list[_NodeWork]] = {}
        for item in work:
            by_level.setdefault(item.level, []).append(item)

        scan = comm = overhead = 0.0
        iterations = 0
        for level in sorted(by_level):
            nodes = by_level[level]
            for start in range(0, len(nodes), cfg.node_group_size):
                group = nodes[start : start + cfg.node_group_size]
                iterations += 1
                # Full pass over the row blocks (read + node routing).
                pass_ops = table.n_rows * 2.0
                # Statistic updates for the grouped nodes (row-wise JVM scan),
                # plus executor-side histogram serialization and treeAggregate
                # merging — both thread-parallel CPU work.
                hist_entries = sum(
                    n.n_columns * cfg.max_bins * stat_width for n in group
                )
                stat_ops = cfg.row_scan_ops_per_value * sum(
                    n.n_rows * n.n_columns for n in group
                )
                merge_ops = cfg.hist_merge_ops_per_entry * hist_entries
                scan += cost.compute_seconds(pass_ops + stat_ops + merge_ops) / cores
                hist_bytes = cfg.aggregation_fanin_factor * hist_entries * 8
                comm += hist_bytes / cost.bandwidth_bytes_per_second
                comm += cost.compute_seconds(hist_entries)  # driver select
                overhead += cfg.stage_overhead_seconds
        return {
            "sim_seconds": scan + comm + overhead,
            "n_iterations": iterations,
            "scan_seconds": scan,
            "comm_seconds": comm,
            "overhead_seconds": overhead,
            "nodes_examined": len(work),
        }
