"""Weighted quantile sketch for approximate split proposals.

XGBoost finds split candidates with a *weighted* quantile sketch: each row
is weighted by its second-order gradient ``h``, and candidate thresholds are
chosen so that consecutive candidates bound at most ``eps`` of the total
weight (Chen & Guestrin 2016, Section 3.3 / appendix).  The paper under
reproduction cites exactly this mechanism as XGBoost's counterpart to
PLANET's unweighted histograms, with per-node ("local") sketch refresh.

This module implements a mergeable summary: a sorted list of
``(value, weight)`` entries supporting ``merge`` (for distributed
construction across row-partitioned machines) and ``prune`` (to bound the
summary size while keeping weighted-rank error within ``1/size``).  It is a
simplified GK-style summary — collapsing equal values exactly and pruning on
the cumulative weight grid — which keeps the rank-error guarantee needed
here while staying readable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class WeightedQuantileSketch:
    """A mergeable weighted quantile summary of one column."""

    values: np.ndarray = field(default_factory=lambda: np.empty(0))
    weights: np.ndarray = field(default_factory=lambda: np.empty(0))

    def __post_init__(self) -> None:
        if len(self.values) != len(self.weights):
            raise ValueError("values/weights length mismatch")

    @classmethod
    def from_arrays(
        cls, values: np.ndarray, weights: np.ndarray
    ) -> "WeightedQuantileSketch":
        """Build a summary from raw rows (NaN values are skipped)."""
        values = np.asarray(values, dtype=np.float64)
        weights = np.asarray(weights, dtype=np.float64)
        if values.shape != weights.shape:
            raise ValueError("values/weights shape mismatch")
        keep = ~np.isnan(values)
        values, weights = values[keep], weights[keep]
        if (weights < 0).any():
            raise ValueError("weights must be non-negative")
        if values.size == 0:
            return cls()
        order = np.argsort(values, kind="stable")
        v = values[order]
        w = weights[order]
        # Collapse duplicate values exactly.
        uniq, inverse = np.unique(v, return_inverse=True)
        agg = np.bincount(inverse, weights=w)
        return cls(values=uniq, weights=agg)

    @property
    def total_weight(self) -> float:
        """Sum of all weights in the summary."""
        return float(self.weights.sum()) if self.weights.size else 0.0

    @property
    def size(self) -> int:
        """Number of retained entries."""
        return int(self.values.size)

    def merge(self, other: "WeightedQuantileSketch") -> "WeightedQuantileSketch":
        """Combine two summaries (the distributed reduction step)."""
        if self.size == 0:
            return WeightedQuantileSketch(other.values.copy(), other.weights.copy())
        if other.size == 0:
            return WeightedQuantileSketch(self.values.copy(), self.weights.copy())
        values = np.concatenate([self.values, other.values])
        weights = np.concatenate([self.weights, other.weights])
        return WeightedQuantileSketch.from_arrays(values, weights)

    def prune(self, max_size: int) -> "WeightedQuantileSketch":
        """Shrink to at most ``max_size`` entries on the weighted-rank grid.

        Keeps the first and last entries exactly, so min/max survive; the
        interior is resampled at evenly spaced cumulative-weight ranks,
        bounding rank error by ``total_weight / max_size``.
        """
        if max_size < 2:
            raise ValueError("max_size must be >= 2")
        if self.size <= max_size:
            return WeightedQuantileSketch(self.values.copy(), self.weights.copy())
        cum = np.cumsum(self.weights)
        targets = np.linspace(0.0, cum[-1], max_size)
        idx = np.unique(np.searchsorted(cum, targets, side="left").clip(0, self.size - 1))
        kept_values = self.values[idx]
        # Re-aggregate weights into the kept entries (each original entry is
        # accounted to the nearest kept entry at or after it).
        bucket = np.searchsorted(kept_values, self.values, side="left").clip(
            0, len(idx) - 1
        )
        kept_weights = np.bincount(bucket, weights=self.weights, minlength=len(idx))
        return WeightedQuantileSketch(kept_values, kept_weights)

    def query(self, rank_fraction: float) -> float:
        """Value at a weighted-rank fraction in [0, 1]."""
        if self.size == 0:
            raise ValueError("empty sketch")
        if not 0.0 <= rank_fraction <= 1.0:
            raise ValueError("rank_fraction must be in [0, 1]")
        cum = np.cumsum(self.weights)
        target = rank_fraction * cum[-1]
        idx = int(np.searchsorted(cum, target, side="left").clip(0, self.size - 1))
        return float(self.values[idx])

    def candidates(self, n_candidates: int) -> np.ndarray:
        """Split-candidate thresholds at the eps-grid of weighted ranks.

        Returns at most ``n_candidates`` distinct values, excluding the
        column maximum (a threshold at the max splits nothing).
        """
        if self.size == 0:
            return np.empty(0)
        if n_candidates < 1:
            raise ValueError("need at least one candidate")
        fractions = np.linspace(0.0, 1.0, n_candidates + 2)[1:-1]
        cum = np.cumsum(self.weights)
        idx = np.searchsorted(cum, fractions * cum[-1], side="left").clip(
            0, self.size - 1
        )
        out = np.unique(self.values[idx])
        return out[out < self.values[-1]]
