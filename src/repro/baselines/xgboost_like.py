"""XGBoost-style gradient boosting baseline.

The paper's Table II(c) and IV(c) compare TreeServer's 100-tree random
forests against XGBoost with 100 boosted trees.  Two properties drive those
tables, and both are reproduced here:

* **Accuracy potential** — second-order gradient boosting ("considers
  second-order approximation of the learning objective") often beats
  bagging, and keeps improving with more trees (Table IV(c)).
* **Sequential dependency** — boosted trees must be trained one after
  another, so 100 trees cost ~100x one tree, while TreeServer trains its
  forest's trees concurrently.  This is why the paper reports XGBoost up to
  56x slower despite being a highly optimized system.

Implementation notes:

* Objectives: squared error (regression), logistic (binary), softmax
  (multiclass, one tree per class per round — as XGBoost does).
* Split finding uses the local (per-node) weighted quantile sketch of
  :mod:`repro.baselines.sketch`, hessian-weighted, with ``sketch_bins``
  candidates — the mechanism the paper attributes to XGBoost.
* Categorical columns are consumed as ordinal integer codes: 2016-era
  XGBoost had no native categorical support and users encoded categories
  numerically, which is the comparable behaviour.
* The simulated-time ledger charges level-synchronous histogram allreduce
  per tree against the shared cost constants, sequentially across trees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.cost import CostModel
from ..data.schema import ColumnKind, ProblemKind
from ..data.table import DataTable
from .sketch import WeightedQuantileSketch


@dataclass(frozen=True)
class XGBoostConfig:
    """Boosting hyperparameters plus deployment knobs."""

    n_rounds: int = 100
    eta: float = 0.3
    reg_lambda: float = 1.0
    gamma: float = 0.0
    max_depth: int = 6
    min_child_weight: float = 1.0
    sketch_bins: int = 32
    base_score: float = 0.5
    # Deployment (for the simulated-time ledger).
    n_machines: int = 15
    threads_per_machine: int = 10
    per_level_overhead_seconds: float = 0.004
    per_tree_overhead_seconds: float = 0.01
    row_scan_ops_per_value: float = 12.0
    allreduce_fanin_factor: float = 2.0


@dataclass
class _BoostNode:
    """A node of one boosted regression tree (on gradients)."""

    weight: float
    column: int = -1
    threshold: float = 0.0
    missing_left: bool = True
    left: "._BoostNode | None" = None
    right: "._BoostNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


@dataclass
class XGBoostModel:
    """A trained boosted ensemble.

    ``rounds[r][k]`` is the tree for class ``k`` (or the single tree for
    regression/binary) at boosting round ``r``.
    """

    problem: ProblemKind
    n_classes: int
    base_score: float
    eta: float
    rounds: list[list[_BoostNode]]

    def raw_margin(self, table: DataTable) -> np.ndarray:
        """Additive raw scores, shape ``(n, k)`` (k=1 for non-multiclass)."""
        k = max(1, self.n_classes if self.n_classes > 2 else 1)
        out = np.full((table.n_rows, k), self._base_margin(), dtype=np.float64)
        columns = [table.column(i) for i in range(table.n_columns)]
        float_columns = [
            c.astype(np.float64) if c.dtype != np.float64 else c for c in columns
        ]
        for round_trees in self.rounds:
            for cls, root in enumerate(round_trees):
                out[:, cls] += self.eta * _predict_boost_tree(
                    root, float_columns, table.n_rows
                )
        return out

    def _base_margin(self) -> float:
        if self.problem is ProblemKind.REGRESSION:
            return self.base_score
        # Logistic / softmax margins start at 0 (probability 0.5 / uniform).
        return 0.0

    def predict(self, table: DataTable) -> np.ndarray:
        """Labels (classification) or values (regression)."""
        margin = self.raw_margin(table)
        if self.problem is ProblemKind.REGRESSION:
            return margin[:, 0]
        if self.n_classes == 2:
            return (margin[:, 0] > 0).astype(np.int64)
        return np.argmax(margin, axis=1)

    @property
    def n_trees(self) -> int:
        """Total individual trees across rounds and classes."""
        return sum(len(r) for r in self.rounds)


def _predict_boost_tree(
    root: _BoostNode, float_columns: list[np.ndarray], n_rows: int
) -> np.ndarray:
    out = np.zeros(n_rows, dtype=np.float64)
    stack = [(root, np.arange(n_rows, dtype=np.int64))]
    while stack:
        node, ids = stack.pop()
        if ids.size == 0:
            continue
        if node.is_leaf:
            out[ids] = node.weight
            continue
        values = float_columns[node.column][ids]
        missing = np.isnan(values)
        go_left = values <= node.threshold
        go_left = np.where(missing, node.missing_left, go_left)
        assert node.left is not None and node.right is not None
        stack.append((node.left, ids[go_left]))
        stack.append((node.right, ids[~go_left]))
    return out


@dataclass
class XGBoostReport:
    """Model plus the simulated-time breakdown."""

    model: XGBoostModel
    sim_seconds: float
    scan_seconds: float
    comm_seconds: float
    overhead_seconds: float
    nodes_built: int


class XGBoostTrainer:
    """Sequential second-order boosting with sketch-based splits."""

    def __init__(
        self, config: XGBoostConfig | None = None, cost: CostModel | None = None
    ) -> None:
        self.config = config or XGBoostConfig()
        self.cost = cost or CostModel()

    def fit(self, table: DataTable) -> XGBoostReport:
        """Train ``n_rounds`` boosting rounds on the table."""
        cfg = self.config
        columns = [
            table.column(i).astype(np.float64)
            if table.column_spec(i).kind is ColumnKind.CATEGORICAL
            else table.column(i)
            for i in range(table.n_columns)
        ]
        # Categorical codes -1 (missing) become NaN for the default route.
        for i in range(table.n_columns):
            if table.column_spec(i).kind is ColumnKind.CATEGORICAL:
                col = columns[i]
                col[col < 0] = np.nan

        n = table.n_rows
        problem = table.problem
        k_classes = table.n_classes
        multiclass = problem is ProblemKind.CLASSIFICATION and k_classes > 2
        k = k_classes if multiclass else 1

        margin = np.zeros((n, k), dtype=np.float64)
        if problem is ProblemKind.REGRESSION:
            margin[:, 0] = cfg.base_score
        y = table.target

        rounds: list[list[_BoostNode]] = []
        ledger = _Ledger()
        for _ in range(cfg.n_rounds):
            grad, hess = self._gradients(margin, y, problem, k_classes)
            round_trees: list[_BoostNode] = []
            for cls in range(k):
                root = self._grow_tree(
                    columns, grad[:, cls], hess[:, cls], table, ledger
                )
                round_trees.append(root)
                margin[:, cls] += cfg.eta * _predict_boost_tree(root, columns, n)
            rounds.append(round_trees)
            ledger.overhead += cfg.per_tree_overhead_seconds * k
        model = XGBoostModel(
            problem=problem,
            n_classes=k_classes,
            base_score=cfg.base_score,
            eta=cfg.eta,
            rounds=rounds,
        )
        return XGBoostReport(
            model=model,
            sim_seconds=ledger.total(),
            scan_seconds=ledger.scan,
            comm_seconds=ledger.comm,
            overhead_seconds=ledger.overhead,
            nodes_built=ledger.nodes,
        )

    # ------------------------------------------------------------------
    # gradients
    # ------------------------------------------------------------------
    @staticmethod
    def _gradients(
        margin: np.ndarray, y: np.ndarray, problem: ProblemKind, k_classes: int
    ) -> tuple[np.ndarray, np.ndarray]:
        if problem is ProblemKind.REGRESSION:
            grad = margin[:, :1] - y[:, None]
            hess = np.ones_like(grad)
            return grad, hess
        if k_classes == 2:
            p = 1.0 / (1.0 + np.exp(-margin[:, 0]))
            grad = (p - y)[:, None]
            hess = (p * (1 - p))[:, None]
            return grad, np.maximum(hess, 1e-16)
        # Softmax multiclass.
        shifted = margin - margin.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        p = exp / exp.sum(axis=1, keepdims=True)
        onehot = np.zeros_like(p)
        onehot[np.arange(len(y)), y.astype(np.int64)] = 1.0
        grad = p - onehot
        hess = np.maximum(2.0 * p * (1.0 - p), 1e-16)
        return grad, hess

    # ------------------------------------------------------------------
    # tree growth
    # ------------------------------------------------------------------
    def _grow_tree(
        self,
        columns: list[np.ndarray],
        grad: np.ndarray,
        hess: np.ndarray,
        table: DataTable,
        ledger: "_Ledger",
    ) -> _BoostNode:
        cfg = self.config
        lam = cfg.reg_lambda
        root_ids = np.arange(len(grad), dtype=np.int64)
        root = _BoostNode(weight=0.0)
        frontier: list[tuple[_BoostNode, np.ndarray, int]] = [(root, root_ids, 0)]
        while frontier:
            level = frontier[0][2]
            level_rows = sum(len(ids) for _, ids, _ in frontier)
            ledger.charge_level(
                self.cost, cfg, level_rows, table.n_columns, len(frontier)
            )
            next_frontier: list[tuple[_BoostNode, np.ndarray, int]] = []
            for node, ids, depth in frontier:
                ledger.nodes += 1
                g_sum = float(grad[ids].sum())
                h_sum = float(hess[ids].sum())
                node.weight = -g_sum / (h_sum + lam)
                if depth >= cfg.max_depth or h_sum < 2 * cfg.min_child_weight:
                    continue
                best = self._best_split(columns, ids, grad, hess, g_sum, h_sum)
                if best is None:
                    continue
                column, threshold, missing_left, gain, go_left = best
                if gain <= cfg.gamma:
                    continue
                node.column = column
                node.threshold = threshold
                node.missing_left = missing_left
                node.left = _BoostNode(weight=0.0)
                node.right = _BoostNode(weight=0.0)
                next_frontier.append((node.left, ids[go_left], depth + 1))
                next_frontier.append((node.right, ids[~go_left], depth + 1))
            frontier = next_frontier
        return root

    def _best_split(
        self,
        columns: list[np.ndarray],
        ids: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        g_total: float,
        h_total: float,
    ):
        """Best (column, threshold) by second-order gain over sketch
        candidates; returns the realized routing mask too."""
        cfg = self.config
        lam = cfg.reg_lambda
        parent_score = g_total * g_total / (h_total + lam)
        g = grad[ids]
        h = hess[ids]
        best = None
        for column, col in enumerate(columns):
            values = col[ids]
            present = ~np.isnan(values)
            if present.sum() < 2:
                continue
            sketch = WeightedQuantileSketch.from_arrays(
                values[present], h[present]
            ).prune(cfg.sketch_bins * 4)
            candidates = sketch.candidates(cfg.sketch_bins)
            if candidates.size == 0:
                continue
            bins = np.searchsorted(candidates, values[present], side="left")
            n_bins = len(candidates) + 1
            g_bins = np.bincount(bins, weights=g[present], minlength=n_bins)
            h_bins = np.bincount(bins, weights=h[present], minlength=n_bins)
            g_left = np.cumsum(g_bins)[:-1]
            h_left = np.cumsum(h_bins)[:-1]
            g_miss = float(g[~present].sum())
            h_miss = float(h[~present].sum())
            # Default direction: try missing on both sides, keep the better.
            for miss_left in (True, False):
                gl = g_left + (g_miss if miss_left else 0.0)
                hl = h_left + (h_miss if miss_left else 0.0)
                gr = (g_total - g_left) - (g_miss if miss_left else 0.0)
                hr = (h_total - h_left) - (h_miss if miss_left else 0.0)
                valid = (hl >= cfg.min_child_weight) & (hr >= cfg.min_child_weight)
                if not valid.any():
                    continue
                gains = (
                    gl * gl / (hl + lam) + gr * gr / (hr + lam) - parent_score
                )
                gains = np.where(valid, gains, -np.inf)
                idx = int(np.argmax(gains))
                gain = float(gains[idx])
                if best is None or gain > best[3]:
                    threshold = float(candidates[idx])
                    best = (column, threshold, miss_left, gain, None)
        if best is None or best[3] <= 0:
            return None
        column, threshold, miss_left, gain, _ = best
        values = columns[column][ids]
        missing = np.isnan(values)
        go_left = np.where(missing, miss_left, values <= threshold)
        nl = int(go_left.sum())
        if nl == 0 or nl == len(ids):
            return None
        return column, threshold, miss_left, gain, go_left.astype(bool)


@dataclass
class _Ledger:
    """Simulated-seconds accumulator for the boosting run."""

    scan: float = 0.0
    comm: float = 0.0
    overhead: float = 0.0
    nodes: int = 0

    def charge_level(
        self,
        cost: CostModel,
        cfg: XGBoostConfig,
        level_rows: int,
        n_columns: int,
        n_nodes: int,
    ) -> None:
        cores = cfg.n_machines * cfg.threads_per_machine
        scan_ops = cfg.row_scan_ops_per_value * level_rows * n_columns
        self.scan += cost.compute_seconds(scan_ops) / cores
        hist_bytes = (
            cfg.allreduce_fanin_factor
            * n_nodes
            * n_columns
            * cfg.sketch_bins
            * 2  # (G, H) pairs
            * 8
        )
        self.comm += hist_bytes / cost.bandwidth_bytes_per_second
        self.overhead += cfg.per_level_overhead_seconds

    def total(self) -> float:
        return self.scan + self.comm + self.overhead
