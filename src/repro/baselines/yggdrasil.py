"""Yggdrasil-style baseline: column-partitioned, exact, level-synchronous.

Yggdrasil (Abuzaid et al., NIPS 2016) is the paper's closest related system
and its most informative ablation point: like TreeServer it partitions data
*by columns* and computes *exact* split conditions — but it keeps PLANET's
top-down level-by-level construction, and after every level the master
broadcasts a bitvector of row-to-child assignments to all machines, a
single-point transmission bottleneck (paper Section II).  TreeServer's two
remaining contributions — node-centric tasks scheduled off the level
barrier, and delegate-worker row maintenance — are exactly what this
baseline lacks.

The trained model is the *same exact tree* TreeServer produces (both are
exact); only the execution schedule differs, so comparing simulated times
isolates the scheduling/communication contribution cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..cluster.cost import CostModel, log2_ceil
from ..core.builder import train_tree
from ..core.config import ColumnSampling, TreeConfig
from ..core.tree import DecisionTree
from ..data.table import DataTable


@dataclass(frozen=True)
class YggdrasilConfig:
    """Deployment knobs of the column-partitioned baseline."""

    n_machines: int = 15
    threads_per_machine: int = 10
    #: Per-level synchronization overhead (Spark job per level).
    stage_overhead_seconds: float = 0.02
    #: Exact split search cost per (row, log-row) unit, matching the
    #: TreeServer subtree cost model so compute totals are comparable.
    scan_ops_factor: float = 1.0


@dataclass
class YggdrasilReport:
    """Trained exact model plus the level-synchronous time ledger."""

    trees: list[DecisionTree]
    sim_seconds: float
    compute_seconds: float
    broadcast_seconds: float
    overhead_seconds: float
    n_levels: int

    def tree(self) -> DecisionTree:
        """The single tree of a one-tree run."""
        if len(self.trees) != 1:
            raise ValueError(f"run trained {len(self.trees)} trees")
        return self.trees[0]

    def forest(self):
        """Trees wrapped as a ForestModel."""
        from ..ensemble.forest import ForestModel

        return ForestModel(self.trees)


class YggdrasilTrainer:
    """Exact column-partitioned trainer with a per-level cost ledger."""

    def __init__(
        self,
        config: YggdrasilConfig | None = None,
        cost: CostModel | None = None,
    ) -> None:
        self.config = config or YggdrasilConfig()
        self.cost = cost or CostModel()

    def fit(
        self,
        table: DataTable,
        tree_config: TreeConfig | None = None,
        n_trees: int = 1,
        seed: int = 0,
    ) -> YggdrasilReport:
        """Train exact trees; charge the level-synchronous schedule.

        The model itself comes from the shared exact builder (Yggdrasil's
        splits are exact, so the tree is identical); the ledger walks the
        trained tree level by level.
        """
        base = tree_config or TreeConfig()
        if n_trees > 1 and base.column_sampling is ColumnSampling.ALL:
            base = replace(
                base, column_sampling=ColumnSampling.SQRT, seed=base.seed or seed
            )
        trees = []
        for i in range(n_trees):
            config = (
                base.with_seed(base.seed * 1_000_003 + i) if n_trees > 1 else base
            )
            trees.append(train_tree(table, config, tree_id=i))

        compute = broadcast = overhead = 0.0
        n_levels = 0
        cfg = self.config
        cores = cfg.n_machines * cfg.threads_per_machine
        for tree in trees:
            n_cols = base.n_candidate_columns(table.n_columns)
            # Column-partitioned parallelism cap: each whole column is
            # processed by one thread (Yggdrasil's per-partition scan), so
            # a level can never use more cores than there are candidate
            # columns — the thread under-utilization TreeServer's
            # node-centric tasks avoid.
            effective_cores = min(cores, max(1, n_cols))
            by_level: dict[int, int] = {}
            for node in tree.nodes():
                if node.split is not None:  # examined, split computed
                    by_level[node.depth] = by_level.get(node.depth, 0) + node.n_rows
            for depth in sorted(by_level):
                rows = by_level[depth]
                n_levels += 1
                ops = (
                    cfg.scan_ops_factor * rows * n_cols * log2_ceil(max(2, rows))
                )
                compute += self.cost.compute_seconds(ops) / effective_cores
                # The master broadcasts the row->child bitvector to every
                # machine through its single NIC (the bottleneck TreeServer
                # eliminates with delegate workers).
                bitvector_bytes = cfg.n_machines * (table.n_rows // 8 + 1)
                broadcast += bitvector_bytes / self.cost.bandwidth_bytes_per_second
                overhead += cfg.stage_overhead_seconds
        return YggdrasilReport(
            trees=trees,
            sim_seconds=compute + broadcast + overhead,
            compute_seconds=compute,
            broadcast_seconds=broadcast,
            overhead_seconds=overhead,
            n_levels=n_levels,
        )
