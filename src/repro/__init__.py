"""TreeServer reproduction: distributed task-based training of tree models.

A full reimplementation of the ICDE 2022 TreeServer system (Yan et al.) on
a deterministic discrete-event cluster simulator, plus the baselines its
evaluation compares against (Spark-MLlib/PLANET-style histogram training and
XGBoost-style gradient boosting), the deep-forest case study, a simulated
HDFS with the paper's column-group data layout, and synthetic datasets
mirroring the paper's Table I.

Quickstart::

    from repro import TreeServer, SystemConfig, TreeConfig, decision_tree_job
    from repro.datasets import train_test, dataset_spec

    train, test = train_test(dataset_spec("higgs_boson", small=True))
    server = TreeServer(SystemConfig(n_workers=8).scaled_to(train.n_rows))
    report = server.fit(train, [decision_tree_job("dt", TreeConfig(max_depth=10))])
    print(report.sim_seconds, (report.tree("dt").predict(test) == test.target).mean())
"""

from .core import (
    CandidateSplit,
    ColumnSampling,
    DecisionTree,
    Impurity,
    RunReport,
    SystemConfig,
    TrainingJob,
    TreeConfig,
    TreeKind,
    TreeNode,
    TreeServer,
    decision_tree_job,
    extra_trees_job,
    random_forest_job,
    staged_job,
    train_tree,
    trees_equal,
)
from .data import DataTable, ProblemKind, read_csv, write_csv
from .ensemble import ForestModel

__version__ = "1.0.0"

__all__ = [
    "CandidateSplit",
    "ColumnSampling",
    "DataTable",
    "DecisionTree",
    "ForestModel",
    "Impurity",
    "ProblemKind",
    "RunReport",
    "SystemConfig",
    "TrainingJob",
    "TreeConfig",
    "TreeKind",
    "TreeNode",
    "TreeServer",
    "decision_tree_job",
    "extra_trees_job",
    "random_forest_job",
    "read_csv",
    "staged_job",
    "train_tree",
    "trees_equal",
    "write_csv",
    "__version__",
]
