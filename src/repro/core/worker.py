"""Worker actor: the workhorse of task computation (paper Section IV/V).

A worker machine holds the full target column ``Y`` plus its assigned
feature columns (whole columns — TreeServer's column partitioning).  It
plays four roles, often simultaneously:

* **column-task executor** — fetch ``I_x`` from the parent worker, compute
  the exact best split of each assigned column, report to the master;
* **delegate worker** — after the master confirms this worker's column won,
  partition ``I_x`` into ``I_xl`` / ``I_xr`` and serve them to child tasks
  directly (the master never relays row ids — Section V);
* **key worker** — for a subtree-task, gather ``D_x`` from column servers
  and build the whole ``Delta_x`` locally with the serial exact builder;
* **column server** — fetch ``I_x`` itself and ship the requested column
  values of ``D_x`` to a key worker.

Task data readiness follows the T-thinker discipline: a task waits in the
task table until all its data has arrived, then moves to the compute queue
(a core of the simulated machine), so communication overlaps computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.network import Message
from ..cluster.topology import SimulatedCluster
from ..data.schema import ColumnKind, ProblemKind
from ..data.shm import ShmArena, ShmSlice
from ..data.table import DataTable
from .builder import extra_tree_split_rng
from .config import TreeKind
from .histogram import (
    ColumnHistogram,
    bin_indices,
    book_for_config,
    column_histogram,
    decode_bin_codes,
    encode_bin_codes,
)
from .kernel import KernelCounters, build_subtree_auto
from .splits import (
    CandidateSplit,
    best_split_for_column,
    random_split_for_column,
    route_training_rows,
)
from .tasks import (
    MasterFailoverMsg,
    MSG_COLUMN_REQUEST,
    MSG_COLUMN_RESPONSE,
    MSG_COLUMN_RESULT,
    MSG_ROW_REQUEST,
    MSG_ROW_RESPONSE,
    MSG_ROW_RESPONSE_SHM,
    MSG_SPLIT_DONE,
    MSG_SUBTREE_RESULT,
    ColumnPlanMsg,
    ColumnRequestMsg,
    ColumnResponseMsg,
    ColumnResultMsg,
    ExpectFetchesMsg,
    NodeStatsPayload,
    RevokeTreeMsg,
    RootRows,
    RowRequestMsg,
    RowResponseMsg,
    RowResponseShmMsg,
    SplitConfirmMsg,
    SplitDoneMsg,
    SubtreePlanMsg,
    SubtreeResultMsg,
    TaskDeleteMsg,
    TaskId,
)
from .tree import node_to_dict


class ProtocolError(RuntimeError):
    """A message arrived that the protocol forbids in the current state."""


#: Empty threshold set — degenerate columns bin into one bucket and offer
#: no split candidates (the guard the hist scorers honour).
_NO_THRESHOLDS = np.empty(0)


@dataclass
class _ColumnTaskState:
    """A column-task waiting for / holding its row ids."""

    plan: ColumnPlanMsg
    row_ids: np.ndarray | None = None
    alloc_bytes: int = 0


@dataclass
class _KeyTaskState:
    """A subtree-task at its key worker, gathering ``D_x``."""

    plan: SubtreePlanMsg
    row_ids: np.ndarray | None = None
    pending_servers: set[int] = field(default_factory=set)
    column_data: dict[int, np.ndarray] = field(default_factory=dict)
    alloc_bytes: int = 0
    running: bool = False


@dataclass
class _ServeTaskState:
    """A column-serving obligation for someone else's subtree-task."""

    request: ColumnRequestMsg
    row_ids: np.ndarray | None = None


@dataclass
class _DelegateStore:
    """Row ids this worker holds as the delegate of a completed split.

    ``sides[0]`` / ``sides[1]`` are ``I_xl`` / ``I_xr``; each side is freed
    when the master reports the child task resolved (with the count of row
    fetches this store must have served — a sanity check on the protocol).
    On the shm data plane, ``shm_refs`` caches the arena slice a side was
    parked in: written once on the first fetch, every further fetch of the
    same side re-sends the same descriptor, and the slot is freed together
    with the side.
    """

    sides: dict[int, np.ndarray]
    served: dict[int, int]
    alloc_bytes: dict[int, int]
    resolved: set[int] = field(default_factory=set)
    shm_refs: dict[int, ShmSlice] = field(default_factory=dict)


class WorkerActor:
    """One TreeServer worker on a simulated machine."""

    def __init__(
        self,
        cluster: SimulatedCluster,
        worker_id: int,
        table: DataTable,
        held_columns: set[int],
        master_id: int = SimulatedCluster.MASTER,
        arena: ShmArena | None = None,
        shm_threshold_bytes: int = 8192,
        shm_peers: set[int] | None = None,
        threshold_book: dict | None = None,
    ) -> None:
        self.cluster = cluster
        self.worker_id = worker_id
        self.table = table
        self.held_columns = set(held_columns)
        self.master_id = master_id
        #: Equi-depth threshold book for hist-mode jobs (``{max_bins:
        #: {column: thresholds}}``), computed once by the driver from the
        #: full table so every machine bins identically; ``None``/empty
        #: when every submitted job trains exact.
        self.threshold_book = threshold_book
        #: Shared-memory row-id arena (multiprocess backend only).  When
        #: set, row-id sets of at least ``shm_threshold_bytes`` travel as
        #: :class:`ShmSlice` descriptors instead of pickled arrays.
        self.arena = arena
        self.shm_threshold_bytes = shm_threshold_bytes
        #: Which peers may receive :class:`ShmSlice` descriptors from this
        #: worker.  ``None`` means everyone (mp backend: all workers share
        #: one host by construction); the socket backend narrows it to the
        #: workers whose handshake host id matches ours, and row responses
        #: to anyone else fall back to inline transfer (docs/PROTOCOL.md,
        #: "Descriptor vs inline: the host rule").
        self.shm_peers = shm_peers
        self.cost = cluster.cost
        self.machine = cluster.machines[worker_id]
        self._column_tasks: dict[TaskId, _ColumnTaskState] = {}
        self._key_tasks: dict[TaskId, _KeyTaskState] = {}
        self._serve_tasks: dict[TaskId, _ServeTaskState] = {}
        self._delegate: dict[TaskId, _DelegateStore] = {}
        self._revoked_trees: set[int] = set()
        #: Messages referencing trees below this uid belong to a dead
        #: master generation and are ignored (secondary-master failover).
        self._min_live_uid = 0
        # -- crash-recovery counters (reported in worker_stats) ---------
        self.revoked_trees_seen = 0
        self.stale_shm_drops = 0
        # -- training-kernel counters (reported in worker_stats) --------
        self.kernel_counters = KernelCounters()
        # Resident memory: held columns + the replicated Y column.
        base = sum(table.column(c).nbytes for c in self.held_columns)
        self.machine.set_base_memory(base + table.target.nbytes)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def column_values(self, column: int) -> np.ndarray:
        """Full values of a held column (enforces the partitioning)."""
        if column not in self.held_columns:
            raise ProtocolError(
                f"worker {self.worker_id} asked for column {column} "
                f"it does not hold"
            )
        return self.table.column(column)

    def _send(self, dst: int, kind: str, payload, size: int) -> None:
        self.cluster.send(self.worker_id, dst, kind, payload, size)

    def _is_revoked(self, task: TaskId) -> bool:
        return task[0] in self._revoked_trees or task[0] < self._min_live_uid

    def _stats_of(self, row_ids: np.ndarray) -> NodeStatsPayload:
        return NodeStatsPayload.from_labels(
            self.table.target[row_ids], self.table.problem, self.table.n_classes
        )

    def _request_rows(self, plan_parent, tag: tuple[str, TaskId]) -> None:
        """Ask the parent worker for ``I_x`` (local self-sends are free)."""
        request = RowRequestMsg(
            parent_task=plan_parent.task,
            side=plan_parent.side,
            requester=self.worker_id,
            tag=tag,
        )
        self._send(
            plan_parent.worker,
            MSG_ROW_REQUEST,
            request,
            self.cost.control_bytes,
        )

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------
    def handle_message(self, message: Message) -> None:
        """Route one delivered message to its handler."""
        payload = message.payload
        if isinstance(payload, ColumnPlanMsg):
            self._on_column_plan(payload)
        elif isinstance(payload, SubtreePlanMsg):
            self._on_subtree_plan(payload)
        elif isinstance(payload, SplitConfirmMsg):
            self._on_split_confirm(payload)
        elif isinstance(payload, TaskDeleteMsg):
            self._on_task_delete(payload)
        elif isinstance(payload, ExpectFetchesMsg):
            self._on_expect_fetches(payload)
        elif isinstance(payload, RowRequestMsg):
            self._on_row_request(payload)
        elif isinstance(payload, RowResponseMsg):
            self._on_row_response(payload)
        elif isinstance(payload, RowResponseShmMsg):
            self._on_row_response_shm(payload)
        elif isinstance(payload, ColumnRequestMsg):
            self._on_column_request(payload)
        elif isinstance(payload, ColumnResponseMsg):
            self._on_column_response(payload)
        elif isinstance(payload, RevokeTreeMsg):
            self._on_revoke_tree(payload)
        elif isinstance(payload, MasterFailoverMsg):
            self._on_master_failover(payload)
        else:
            raise ProtocolError(
                f"worker {self.worker_id} got unknown payload "
                f"{type(payload).__name__}"
            )

    # ------------------------------------------------------------------
    # column-task role
    # ------------------------------------------------------------------
    def _on_column_plan(self, plan: ColumnPlanMsg) -> None:
        if self._is_revoked(plan.task):
            return
        state = _ColumnTaskState(plan=plan)
        self._column_tasks[plan.task] = state
        if plan.parent is None:
            self._column_rows_ready(plan.task, RootRows(plan.ctx).materialize())
        else:
            self._request_rows(plan.parent, ("column", plan.task))

    def _column_rows_ready(self, task: TaskId, row_ids: np.ndarray) -> None:
        state = self._column_tasks.get(task)
        if state is None:  # revoked while the rows were in flight
            return
        state.row_ids = row_ids
        state.alloc_bytes = int(row_ids.nbytes)
        self.machine.alloc(state.alloc_bytes)
        n = int(row_ids.size)
        ops = self.cost.node_stats_ops(n)
        for _ in state.plan.columns:
            ops += self.cost.split_search_ops(n)
        self.machine.execute(
            ops, lambda: self._compute_column_task(task), label="column_task"
        )

    def _compute_column_task(self, task: TaskId) -> None:
        state = self._column_tasks.get(task)
        if state is None or state.row_ids is None:
            return  # revoked while queued
        plan = state.plan
        ids = state.row_ids
        y = self.table.target[ids]
        criterion = plan.ctx.config.resolved_criterion(
            self.table.problem is ProblemKind.CLASSIFICATION
        )
        thresholds = book_for_config(self.threshold_book, plan.ctx.config)
        splits: list[CandidateSplit | None] = []
        hists: list[ColumnHistogram] | None = (
            [] if thresholds is not None else None
        )
        for col in plan.columns:
            spec = self.table.column_spec(col)
            values = self.column_values(col)[ids]
            if plan.ctx.config.tree_kind is TreeKind.EXTRA:
                split = random_split_for_column(
                    col,
                    spec.kind,
                    values,
                    y,
                    criterion,
                    self.table.n_classes,
                    extra_tree_split_rng(plan.ctx.config.seed, plan.task[1], col),
                    spec.n_categories,
                )
            elif thresholds is not None and spec.kind is ColumnKind.NUMERIC:
                # Hist mode: ship the node-local per-bin summary instead
                # of an exact split; the master scores the prefix cuts.
                col_thresholds = thresholds.get(col, _NO_THRESHOLDS)
                hists.append(
                    column_histogram(
                        col,
                        bin_indices(values, col_thresholds),
                        y,
                        col_thresholds.size + 1,
                        criterion,
                        self.table.n_classes,
                    )
                )
                splits.append(None)
                continue
            else:
                split = best_split_for_column(
                    col,
                    spec.kind,
                    values,
                    y,
                    criterion,
                    self.table.n_classes,
                    spec.n_categories,
                )
            splits.append(split)
        result = ColumnResultMsg(
            task=task,
            worker=self.worker_id,
            splits=splits,
            stats=self._stats_of(ids),
            hists=hists,
        )
        size = self.cost.column_result_bytes(len(plan.columns))
        if hists:
            # Per-bin statistics ride along: O(bins) values per column.
            entries = sum(
                h.counts.size if h.counts is not None else 3 * h.bin_counts.size
                for h in hists
            )
            size += entries * self.cost.value_bytes
        self._send(self.master_id, MSG_COLUMN_RESULT, result, size)
        # I_x is retained: if this worker becomes the delegate it will
        # partition it; otherwise a task_delete will free it.

    def _on_split_confirm(self, msg: SplitConfirmMsg) -> None:
        if self._is_revoked(msg.task):
            return
        state = self._column_tasks.get(msg.task)
        if state is None or state.row_ids is None:
            raise ProtocolError(
                f"split_confirm for unknown task {msg.task} at worker "
                f"{self.worker_id}"
            )
        n = int(state.row_ids.size)
        ops = self.cost.partition_ops(n) + 2 * self.cost.node_stats_ops(n)
        self.machine.execute(
            ops, lambda: self._partition_rows(msg), label="partition"
        )

    def _partition_rows(self, msg: SplitConfirmMsg) -> None:
        state = self._column_tasks.get(msg.task)
        if state is None or state.row_ids is None:
            return  # revoked while queued
        ids = state.row_ids
        split = msg.split
        values = self.column_values(split.column)[ids]
        go_left = route_training_rows(values, split)
        left_ids = ids[go_left]
        right_ids = ids[~go_left]
        store = _DelegateStore(
            sides={0: left_ids, 1: right_ids},
            served={0: 0, 1: 0},
            alloc_bytes={0: int(left_ids.nbytes), 1: int(right_ids.nbytes)},
        )
        self._delegate[msg.task] = store
        self.machine.alloc(store.alloc_bytes[0] + store.alloc_bytes[1])
        # The parent I_x itself is no longer needed.
        self.machine.free(state.alloc_bytes)
        del self._column_tasks[msg.task]
        done = SplitDoneMsg(
            task=msg.task,
            left_stats=self._stats_of(left_ids),
            right_stats=self._stats_of(right_ids),
        )
        self._send(
            self.master_id, MSG_SPLIT_DONE, done, 2 * self.cost.control_bytes
        )

    def _on_task_delete(self, msg: TaskDeleteMsg) -> None:
        state = self._column_tasks.pop(msg.task, None)
        if state is not None and state.alloc_bytes:
            self.machine.free(state.alloc_bytes)

    # ------------------------------------------------------------------
    # delegate (parent-worker) role
    # ------------------------------------------------------------------
    def _on_row_request(self, msg: RowRequestMsg) -> None:
        if self._is_revoked(msg.parent_task):
            return  # requester's tree was revoked too; it will not wait
        store = self._delegate.get(msg.parent_task)
        if store is None or msg.side not in store.sides:
            raise ProtocolError(
                f"row_request for {msg.parent_task} side {msg.side} but "
                f"worker {self.worker_id} holds no such rows"
            )
        row_ids = store.sides[msg.side]
        store.served[msg.side] += 1
        if (
            self.arena is not None
            and int(row_ids.nbytes) >= self.shm_threshold_bytes
            and (self.shm_peers is None or msg.requester in self.shm_peers)
        ):
            # Zero-copy wire path: park the side in the arena once (every
            # replica fetch of the same side reuses the slot) and ship
            # only the descriptor.
            ref = store.shm_refs.get(msg.side)
            if ref is None:
                ref = self.arena.write(row_ids)
                store.shm_refs[msg.side] = ref
            self._send(
                msg.requester,
                MSG_ROW_RESPONSE_SHM,
                RowResponseShmMsg(tag=msg.tag, ref=ref),
                self.cost.control_bytes,
            )
            return
        response = RowResponseMsg(tag=msg.tag, row_ids=row_ids)
        self._send(
            msg.requester,
            MSG_ROW_RESPONSE,
            response,
            self.cost.row_ids_bytes(int(row_ids.size)),
        )

    def _on_expect_fetches(self, msg: ExpectFetchesMsg) -> None:
        """Master reports a child side resolved: free the stored rows.

        By causality the child's workers fetched their rows before the
        child's results reached the master, so ``served`` must already equal
        ``count`` — asserted here as a protocol invariant.  (The paper frees
        incrementally as fetches are served; freeing at resolution is
        equivalent and simpler — see DESIGN.md.)
        """
        if self._is_revoked(msg.task):
            return
        store = self._delegate.get(msg.task)
        if store is None or msg.side not in store.sides:
            raise ProtocolError(
                f"expect_fetches for missing store {msg.task}/{msg.side}"
            )
        if store.served[msg.side] != msg.count:
            raise ProtocolError(
                f"task {msg.task} side {msg.side}: served "
                f"{store.served[msg.side]} fetches, master says {msg.count}"
            )
        self.machine.free(store.alloc_bytes[msg.side])
        ref = store.shm_refs.pop(msg.side, None)
        if ref is not None:
            # All fetchers have consumed their copies by causality (their
            # results already reached the master); the slot can recycle.
            self.arena.free(ref)
        del store.sides[msg.side]
        store.resolved.add(msg.side)
        if not store.sides:
            del self._delegate[msg.task]

    # ------------------------------------------------------------------
    # key-worker role (subtree-tasks)
    # ------------------------------------------------------------------
    def _on_subtree_plan(self, plan: SubtreePlanMsg) -> None:
        if self._is_revoked(plan.task):
            return
        state = _KeyTaskState(
            plan=plan, pending_servers=set(plan.server_map)
        )
        self._key_tasks[plan.task] = state
        for server, columns in plan.server_map.items():
            request = ColumnRequestMsg(
                task=plan.task,
                columns=columns,
                parent=plan.parent,
                ctx=plan.ctx,
                key_worker=self.worker_id,
            )
            self._send(
                server,
                MSG_COLUMN_REQUEST,
                request,
                self.cost.plan_bytes(len(columns)),
            )
        if plan.parent is None:
            self._key_rows_ready(plan.task, RootRows(plan.ctx).materialize())
        else:
            self._request_rows(plan.parent, ("key", plan.task))

    def _key_rows_ready(self, task: TaskId, row_ids: np.ndarray) -> None:
        state = self._key_tasks.get(task)
        if state is None:
            return
        state.row_ids = row_ids
        nbytes = int(row_ids.nbytes)
        state.alloc_bytes += nbytes
        self.machine.alloc(nbytes)
        self._maybe_run_subtree(task)

    def _on_column_response(self, msg: ColumnResponseMsg) -> None:
        state = self._key_tasks.get(msg.task)
        if state is None:
            return  # revoked
        if msg.server not in state.pending_servers:
            raise ProtocolError(
                f"unexpected column_response from {msg.server} for {msg.task}"
            )
        state.pending_servers.discard(msg.server)
        nbytes = 0
        for col, arr in zip(msg.columns, msg.arrays):
            state.column_data[col] = arr
            nbytes += int(arr.nbytes)
        state.alloc_bytes += nbytes
        self.machine.alloc(nbytes)
        self._maybe_run_subtree(msg.task)

    def _maybe_run_subtree(self, task: TaskId) -> None:
        state = self._key_tasks.get(task)
        if (
            state is None
            or state.running
            or state.row_ids is None
            or state.pending_servers
        ):
            return
        state.running = True
        plan = state.plan
        n = int(state.row_ids.size)
        n_candidates = len(plan.ctx.candidate_columns)
        ops = self.cost.subtree_build_ops(n, max(1, n_candidates))
        self.machine.execute(
            ops, lambda: self._build_subtree(task), label="subtree_task"
        )

    def _build_subtree(self, task: TaskId) -> None:
        state = self._key_tasks.pop(task, None)
        if state is None or state.row_ids is None:
            return  # revoked while queued
        plan = state.plan
        ids = state.row_ids
        # Assemble the local D_x: fetched columns plus locally-held ones;
        # columns outside the candidate set are filled with missing values
        # and are never consulted by the builder.
        n = int(ids.size)
        thresholds = book_for_config(self.threshold_book, plan.ctx.config)
        columns: list[np.ndarray] = []
        needed = set(plan.local_columns) | set(state.column_data)
        for idx, spec in enumerate(self.table.schema.columns):
            if idx in state.column_data:
                arr = state.column_data[idx]
                if thresholds is not None and spec.kind is ColumnKind.NUMERIC:
                    # Fetched hist-mode columns arrived as bucket codes;
                    # decode into pseudo-values that rebin and route
                    # exactly like the originals.
                    arr = decode_bin_codes(
                        arr, thresholds.get(idx, _NO_THRESHOLDS)
                    )
                columns.append(arr)
            elif idx in needed:
                columns.append(self.column_values(idx)[ids])
            elif spec.kind is ColumnKind.NUMERIC:
                columns.append(np.full(n, np.nan))
            else:
                columns.append(np.full(n, -1, dtype=np.int32))
        d_x = DataTable(self.table.schema, columns, self.table.target[ids])
        root = build_subtree_auto(
            d_x,
            plan.ctx.config,
            row_ids=np.arange(n, dtype=np.int64),
            candidate_columns=plan.ctx.candidate_columns,
            root_path=plan.task[1],
            counters=self.kernel_counters,
            thresholds=thresholds,
        )
        n_nodes = root.count_nodes()
        self.kernel_counters.nodes_built += n_nodes
        result = SubtreeResultMsg(
            task=task,
            worker=self.worker_id,
            subtree=node_to_dict(root),
            n_nodes=n_nodes,
        )
        self._send(
            self.master_id,
            MSG_SUBTREE_RESULT,
            result,
            self.cost.subtree_bytes(n_nodes),
        )
        self.machine.free(state.alloc_bytes)

    # ------------------------------------------------------------------
    # column-server role
    # ------------------------------------------------------------------
    def _on_column_request(self, msg: ColumnRequestMsg) -> None:
        if self._is_revoked(msg.task):
            return
        state = _ServeTaskState(request=msg)
        self._serve_tasks[msg.task] = state
        if msg.parent is None:
            self._serve_rows_ready(msg.task, RootRows(msg.ctx).materialize())
        else:
            self._request_rows(msg.parent, ("serve", msg.task))

    def _serve_rows_ready(self, task: TaskId, row_ids: np.ndarray) -> None:
        state = self._serve_tasks.get(task)
        if state is None:
            return
        state.row_ids = row_ids
        msg = state.request
        ops = self.cost.gather_ops(int(row_ids.size), len(msg.columns))
        self.machine.execute(
            ops, lambda: self._serve_columns(task), label="serve"
        )

    def _serve_columns(self, task: TaskId) -> None:
        state = self._serve_tasks.pop(task, None)
        if state is None or state.row_ids is None:
            return
        msg = state.request
        ids = state.row_ids
        thresholds = book_for_config(self.threshold_book, msg.ctx.config)
        if thresholds is None:
            arrays = [self.column_values(col)[ids] for col in msg.columns]
            size = self.cost.column_data_bytes(int(ids.size), len(msg.columns))
        else:
            # Hist mode: numeric columns ship as compact int8/int16 bucket
            # codes (the key worker decodes them against the same book);
            # categorical columns still ship raw values.
            arrays = []
            size = self.cost.control_bytes
            for col in msg.columns:
                values = self.column_values(col)[ids]
                if self.table.column_spec(col).kind is ColumnKind.NUMERIC:
                    values = encode_bin_codes(
                        values, thresholds.get(col, _NO_THRESHOLDS)
                    )
                arrays.append(values)
                size += int(values.nbytes)
        response = ColumnResponseMsg(
            task=task,
            server=self.worker_id,
            columns=msg.columns,
            arrays=arrays,
        )
        self._send(msg.key_worker, MSG_COLUMN_RESPONSE, response, size)

    # ------------------------------------------------------------------
    # shared row-response routing
    # ------------------------------------------------------------------
    def _on_row_response(self, msg: RowResponseMsg) -> None:
        self._route_rows(msg.tag, msg.row_ids)

    def _on_row_response_shm(self, msg: RowResponseShmMsg) -> None:
        """Materialize a shared-memory row-id descriptor, then route it."""
        if self.arena is None:
            raise ProtocolError(
                f"worker {self.worker_id} got an shm row response but has "
                f"no arena (transport misconfiguration)"
            )
        if self._is_revoked(msg.tag[1]):
            return
        try:
            row_ids = self.arena.read(msg.ref)
        except FileNotFoundError:
            # The owning worker died and the driver swept its arena before
            # the master's revoke_tree reached us.  A vanished segment
            # proves the sender is dead, so the tagged tree is being
            # revoked — drop the response; the revocation cleans up the
            # waiting task state.
            self.stale_shm_drops += 1
            return
        self._route_rows(msg.tag, row_ids)

    def _route_rows(self, tag: tuple[str, TaskId], row_ids: np.ndarray) -> None:
        role, task = tag
        if self._is_revoked(task):
            return
        if role == "column":
            self._column_rows_ready(task, row_ids)
        elif role == "key":
            self._key_rows_ready(task, row_ids)
        elif role == "serve":
            self._serve_rows_ready(task, row_ids)
        else:
            raise ProtocolError(f"unknown row-response role {role!r}")

    # ------------------------------------------------------------------
    # fault recovery
    # ------------------------------------------------------------------
    def _on_revoke_tree(self, msg: RevokeTreeMsg) -> None:
        """Drop all state of a revoked tree, releasing its memory."""
        uid = msg.tree_uid
        self.revoked_trees_seen += 1
        self._revoked_trees.add(uid)
        for task in [t for t in self._column_tasks if t[0] == uid]:
            state = self._column_tasks.pop(task)
            if state.alloc_bytes:
                self.machine.free(state.alloc_bytes)
        for task in [t for t in self._key_tasks if t[0] == uid]:
            state = self._key_tasks.pop(task)
            if state.alloc_bytes:
                self.machine.free(state.alloc_bytes)
        for task in [t for t in self._serve_tasks if t[0] == uid]:
            self._serve_tasks.pop(task)
        for task in [t for t in self._delegate if t[0] == uid]:
            store = self._delegate.pop(task)
            self.machine.free(sum(store.alloc_bytes[s] for s in store.sides))
            for ref in store.shm_refs.values():
                self.arena.free(ref)
            store.shm_refs.clear()

    def _on_master_failover(self, msg: MasterFailoverMsg) -> None:
        """The secondary master took over: drop everything, redirect."""
        self.master_id = msg.new_master_id
        self._min_live_uid = msg.min_live_uid
        for uid in {t[0] for t in self._column_tasks} | {
            t[0] for t in self._key_tasks
        } | {t[0] for t in self._serve_tasks} | {
            t[0] for t in self._delegate
        }:
            self._on_revoke_tree(RevokeTreeMsg(tree_uid=uid))

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def outstanding_state(self) -> dict[str, int]:
        """Counts of live task objects (should be all zero after a run)."""
        state = {
            "column_tasks": len(self._column_tasks),
            "key_tasks": len(self._key_tasks),
            "serve_tasks": len(self._serve_tasks),
            "delegate_stores": len(self._delegate),
        }
        if self.arena is not None:
            # Parked row-id slices not yet freed — folded into the same
            # end-of-run leak invariant the task objects are held to.
            state["arena_slices"] = self.arena.live_slices
        return state
