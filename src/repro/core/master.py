"""Master actor: task management, tree assembly, fault recovery.

The master is dedicated to task management and never computes tasks itself
(paper Section IV).  Its two real-system threads map onto the simulator as:

* ``theta_main`` — the *dispatch pump*: a self-rescheduling loop that pops
  plans from ``B_plan`` (head first), computes the greedy worker assignment
  against ``M_work``, and sends the plan messages.  The pump paces itself on
  the master's NIC serialization time plus the assignment compute cost, so
  ``B_plan`` genuinely queues up under load and the hybrid BFS/DFS insertion
  order matters — as in the real system.
* ``theta_recv`` — the message handlers: column results are arbitrated into
  the overall best split, the delegate is confirmed, children are created
  and enqueued, subtree results are grafted, and ``T_prog`` tracks tree
  completion.

Fault recovery restarts affected trees wholesale (a documented
simplification of Appendix E's per-task revocation; see DESIGN.md): on a
worker crash the master drops the dead machine from every column's holder
list (column replicas make this safe for ``k >= 2``), broadcasts a tree
revocation, and re-admits the affected trees under fresh uids.  A tree is
*affected* only if the dead worker was involved in one of its in-flight
tasks (as an assigned worker, delegate, key worker, column server, or the
parent-store holder of a task or queued plan) — trees the dead worker
never touched keep running undisturbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.network import Message
from ..cluster.topology import SimulatedCluster
from ..data.schema import ProblemKind
from .config import SystemConfig, TreeKind
from .jobs import TrainingJob
from .load_balance import (
    LoadMatrix,
    TaskCharge,
    assign_column_task,
    assign_subtree_task,
)
from .scheduler import PlanDeque, ProgressTable, TreePool, TreeTicket
from .splits import CandidateSplit
from .tasks import (
    MSG_COLUMN_PLAN,
    MSG_EXPECT_FETCHES,
    MSG_REVOKE_TREE,
    MSG_SPLIT_CONFIRM,
    MSG_SUBTREE_PLAN,
    MSG_TASK_DELETE,
    ColumnPlanMsg,
    ColumnResultMsg,
    ExpectFetchesMsg,
    NodeStatsPayload,
    ParentRef,
    PlanEntry,
    RevokeTreeMsg,
    SplitConfirmMsg,
    SplitDoneMsg,
    SubtreePlanMsg,
    SubtreeResultMsg,
    TaskCounters,
    TaskDeleteMsg,
    TaskId,
    TreeContext,
)
from .tasks import TreeCompletedSync
from .builder import (
    extra_tree_column_order,
    sample_candidate_columns,
    split_is_useful,
)
from .histogram import book_for_config, score_histogram
from .tree import DecisionTree, TreeNode, node_from_dict


@dataclass
class _TableInfo:
    """What the master needs to know about the training table."""

    n_rows: int
    n_columns: int
    problem: ProblemKind
    n_classes: int


@dataclass
class _TreeBuild:
    """Assembly state of one tree under construction."""

    uid: int
    ticket: TreeTicket
    job: TrainingJob
    ctx: TreeContext
    nodes: dict[int, TreeNode] = field(default_factory=dict)

    def attach(self, path: int, node: TreeNode) -> None:
        """Register a node and link it under its parent (heap numbering)."""
        self.nodes[path] = node
        if path > 1:
            parent = self.nodes[path >> 1]
            if path & 1:
                parent.right = node
            else:
                parent.left = node


@dataclass
class _MasterTaskState:
    """Entry of the master's task table ``T_task``."""

    entry: PlanEntry
    charge: TaskCharge
    is_subtree: bool
    # column-task fields:
    expected_workers: frozenset[int] = frozenset()
    results: dict[int, ColumnResultMsg] = field(default_factory=dict)
    delegate: int | None = None
    split: CandidateSplit | None = None
    fetch_count: int = 0  # row fetches from this task's parent store
    extra_try_index: int = 0
    # subtree-task fields:
    key_worker: int | None = None
    n_servers: int = 0
    servers: frozenset[int] = frozenset()


class MasterActor:
    """The TreeServer master on machine 0 of the simulated cluster."""

    def __init__(
        self,
        cluster: SimulatedCluster,
        table_info: _TableInfo,
        jobs: list[TrainingJob],
        system: SystemConfig,
        holders: dict[int, list[int]],
        machine_id: int = SimulatedCluster.MASTER,
        uid_offset: int = 0,
        secondary_id: int | None = None,
        completed: dict[str, dict[int, DecisionTree]] | None = None,
        threshold_book: dict | None = None,
    ) -> None:
        self.cluster = cluster
        self.machine_id = machine_id
        self.info = table_info
        #: Equi-depth threshold book for hist-mode jobs (``{max_bins:
        #: {column: thresholds}}``); the master scores shipped per-bin
        #: summaries against it.  ``None`` when every job trains exact.
        self.threshold_book = threshold_book
        self.system = system
        self.cost = cluster.cost
        self.holders = {c: list(ws) for c, ws in holders.items()}
        self.live_workers = sorted(
            {w for ws in holders.values() for w in ws}
        ) or cluster.worker_ids()
        self.jobs = jobs
        completed = completed or {}
        name_to_index = {job.name: j for j, job in enumerate(jobs)}
        already = frozenset(
            (name_to_index[name], index)
            for name, trees in completed.items()
            for index in trees
        )
        self.pool = TreePool(
            jobs=jobs, n_pool=system.n_pool, already_completed=already
        )
        self.bplan = PlanDeque(
            tau_dfs=system.tau_dfs, policy=system.scheduling_policy
        )
        self.progress = ProgressTable()
        self.matrix = LoadMatrix(n_workers=cluster.n_workers)
        self.ttask: dict[TaskId, _MasterTaskState] = {}
        self.builds: dict[int, _TreeBuild] = {}
        self.counters = TaskCounters()
        self.results: dict[str, list[DecisionTree | None]] = {
            job.name: [None] * job.n_trees for job in jobs
        }
        for name, trees in completed.items():
            for index, tree in trees.items():
                self.results[name][index] = tree
        self._next_uid = uid_offset + 1
        self._pump_busy = False
        self._revoked: set[int] = set()
        self.secondary_id = secondary_id

    # ------------------------------------------------------------------
    # startup / admission
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Admit the first pool of trees and begin dispatching."""
        self._admit_trees()
        self._pump()

    def _admit_trees(self) -> None:
        while True:
            ticket = self.pool.admit()
            if ticket is None:
                return
            self._start_tree(ticket)

    def _start_tree(self, ticket: TreeTicket) -> None:
        uid = self._next_uid
        self._next_uid += 1
        job = self.jobs[ticket.job_index]
        config = ticket.request.config
        ctx = TreeContext(
            tree_uid=uid,
            config=config,
            candidate_columns=sample_candidate_columns(
                config, self.info.n_columns
            ),
            bootstrap=job.bootstrap_rows,
            n_table_rows=self.info.n_rows,
        )
        self.builds[uid] = _TreeBuild(uid=uid, ticket=ticket, job=job, ctx=ctx)
        self.progress.start_tree(uid)
        n = self.info.n_rows
        entry = PlanEntry(
            task=(uid, 1),
            n_rows=n,
            depth=0,
            parent=None,
            ctx=ctx,
            is_subtree=n <= self.system.tau_subtree,
        )
        self.bplan.insert(entry)
        self.counters.bplan_peak = max(self.counters.bplan_peak, len(self.bplan))

    # ------------------------------------------------------------------
    # the dispatch pump (theta_main)
    # ------------------------------------------------------------------
    @property
    def halted(self) -> bool:
        """Whether this master's machine has crashed."""
        return self.cluster.machines[self.machine_id].halted

    def _pump(self) -> None:
        if self._pump_busy or self.halted:
            return
        entry = self.bplan.pop()
        if entry is None:
            return
        self._pump_busy = True
        n_messages = self._dispatch(entry)
        self.counters.plans_dispatched += 1
        # Pace the pump: assignment compute + NIC backlog of what we sent.
        dispatch_seconds = self.cost.compute_seconds(
            self.cost.master_dispatch_ops(
                len(entry.ctx.candidate_columns), len(self.live_workers)
            )
        )
        ready_at = max(
            self.cluster.network.sender_free_at(self.machine_id),
            self.cluster.engine.now + dispatch_seconds,
        )
        if n_messages == 0:
            ready_at = self.cluster.engine.now + dispatch_seconds
        self.cluster.engine.schedule_at(ready_at, self._pump_unlock)

    def _pump_unlock(self) -> None:
        self._pump_busy = False
        if not self.halted:
            self._pump()

    def _send(self, dst: int, kind: str, payload, size: int) -> None:
        self.cluster.send(self.machine_id, dst, kind, payload, size)

    def _dispatch(self, entry: PlanEntry) -> int:
        """Assign one plan to workers; returns number of messages sent."""
        if entry.tree_uid in self._revoked:
            return 0
        if entry.is_subtree:
            return self._dispatch_subtree(entry)
        return self._dispatch_column(entry)

    def _task_columns(self, entry: PlanEntry) -> tuple[int, ...]:
        """Columns a task must consider: the tree's candidate set ``C``.

        For extra-trees jobs ``C`` is all attributes (Appendix F: every node
        resamples from all columns), so a subtree-task fetches every column;
        extra column-tasks try one random column at a time from the node's
        deterministic try order.
        """
        return entry.ctx.candidate_columns

    def _dispatch_subtree(self, entry: PlanEntry) -> int:
        self.counters.subtree_tasks += 1
        if "first_subtree_dispatch_us" not in self.counters.extra:
            # When the first CPU-bound subtree-task hits a worker — the
            # quantity the hybrid scheduling ablation measures.
            self.counters.extra["first_subtree_dispatch_us"] = int(
                self.cluster.engine.now * 1e6
            )
        columns = self._task_columns(entry)
        parent_worker = entry.parent.worker if entry.parent else None
        assignment = assign_subtree_task(
            self.matrix,
            self.live_workers,
            self.holders,
            columns,
            parent_worker,
            entry.n_rows,
            self.cost,
        )
        state = _MasterTaskState(
            entry=entry,
            charge=assignment.charge,
            is_subtree=True,
            key_worker=assignment.key_worker,
            n_servers=len(assignment.server_map),
            servers=frozenset(assignment.server_map),
        )
        self.ttask[entry.task] = state
        plan = SubtreePlanMsg(
            task=entry.task,
            parent=entry.parent,
            ctx=entry.ctx,
            n_rows=entry.n_rows,
            depth=entry.depth,
            local_columns=assignment.local_columns,
            server_map=assignment.server_map,
        )
        self._send(
            assignment.key_worker,
            MSG_SUBTREE_PLAN,
            plan,
            self.cost.plan_bytes(len(columns)),
        )
        return 1

    def _dispatch_column(self, entry: PlanEntry) -> int:
        self.counters.column_tasks += 1
        state = self.ttask.get(entry.task)
        if state is None:
            state = _MasterTaskState(
                entry=entry, charge=TaskCharge(), is_subtree=False
            )
            self.ttask[entry.task] = state
        if entry.ctx.config.tree_kind is TreeKind.EXTRA:
            order = extra_tree_column_order(
                entry.ctx.config.seed, entry.path, self._task_columns(entry)
            )
            if state.extra_try_index >= len(order):
                # No column yields a valid random split: the node is a leaf.
                self._finalize_column_leaf(state)
                return 0
            columns: tuple[int, ...] = (order[state.extra_try_index],)
            state.extra_try_index += 1
        else:
            columns = entry.ctx.candidate_columns
        parent_worker = entry.parent.worker if entry.parent else None
        assignment = assign_column_task(
            self.matrix,
            self.holders,
            columns,
            parent_worker,
            entry.n_rows,
            self.cost,
        )
        # Accumulate the charge (extra-tree retries stack onto one sheet).
        state.charge.entries.extend(assignment.charge.entries)
        state.expected_workers = frozenset(assignment.worker_columns)
        state.results = {}
        n_messages = 0
        for worker, cols in assignment.worker_columns.items():
            plan = ColumnPlanMsg(
                task=entry.task,
                columns=cols,
                parent=entry.parent,
                ctx=entry.ctx,
                n_rows=entry.n_rows,
                depth=entry.depth,
            )
            self._send(
                worker, MSG_COLUMN_PLAN, plan, self.cost.plan_bytes(len(cols))
            )
            n_messages += 1
        state.fetch_count += len(assignment.worker_columns)
        return n_messages

    # ------------------------------------------------------------------
    # message dispatch (theta_recv)
    # ------------------------------------------------------------------
    def handle_message(self, message: Message) -> None:
        """Route one delivered message."""
        if self.halted:
            return
        payload = message.payload
        if isinstance(payload, ColumnResultMsg):
            self._on_column_result(payload)
        elif isinstance(payload, SplitDoneMsg):
            self._on_split_done(payload)
        elif isinstance(payload, SubtreeResultMsg):
            self._on_subtree_result(payload)
        else:
            raise RuntimeError(
                f"master got unknown payload {type(payload).__name__}"
            )

    # -- column-task results -------------------------------------------
    def _on_column_result(self, msg: ColumnResultMsg) -> None:
        if msg.task[0] in self._revoked:
            return
        state = self.ttask.get(msg.task)
        if state is None:
            raise RuntimeError(f"column result for unknown task {msg.task}")
        state.results[msg.worker] = msg
        if frozenset(state.results) != state.expected_workers:
            return
        self._resolve_column_task(state)

    def _resolve_column_task(self, state: _MasterTaskState) -> None:
        entry = state.entry
        # All workers computed identical node stats; take any deterministically.
        first = state.results[min(state.results)]
        stats = first.stats
        build = self.builds[entry.tree_uid]
        node = build.nodes.get(entry.path)
        if node is None:  # root task: the node does not exist yet
            node = TreeNode(
                node_id=entry.path,
                depth=entry.depth,
                n_rows=stats.n_rows,
                prediction=stats.prediction(),
            )
            build.attach(entry.path, node)

        config = entry.ctx.config
        criterion = config.resolved_criterion(
            self.info.problem is ProblemKind.CLASSIFICATION
        )
        thresholds = book_for_config(self.threshold_book, config)
        best: CandidateSplit | None = None
        best_worker: int | None = None
        for worker in sorted(state.results):
            result = state.results[worker]
            candidates = list(result.splits)
            if thresholds is not None and result.hists:
                # Hist mode: score each shipped per-bin summary into a
                # CandidateSplit (O(bins) per column) before arbitration.
                for hist in result.hists:
                    t = thresholds.get(hist.column)
                    if t is None:
                        continue
                    candidates.append(score_histogram(hist, t, criterion))
            for split in candidates:
                if split is None:
                    continue
                if best is None or split.sort_key() < best.sort_key():
                    best = split
                    best_worker = worker
        useful = (
            not stats.is_pure
            and split_is_useful(best, stats.impurity(criterion), config)
        )
        if not useful and config.tree_kind is TreeKind.EXTRA:
            # Try the next column in the node's random order (or give up
            # and leaf the node inside _dispatch_column).
            for worker in state.results:
                self._send(
                    worker,
                    MSG_TASK_DELETE,
                    TaskDeleteMsg(state.entry.task),
                    self.cost.control_bytes,
                )
            retried = self._dispatch_column(entry)
            if retried:
                self.counters.extra["extra_retries"] = (
                    self.counters.extra.get("extra_retries", 0) + 1
                )
            return
        if not useful:
            self._finalize_column_leaf(state)
            return

        assert best is not None and best_worker is not None
        state.split = best
        state.delegate = best_worker
        self._send(
            best_worker,
            MSG_SPLIT_CONFIRM,
            SplitConfirmMsg(task=entry.task, split=best),
            self.cost.control_bytes,
        )
        for worker in state.expected_workers:
            if worker != best_worker:
                self._send(
                    worker,
                    MSG_TASK_DELETE,
                    TaskDeleteMsg(entry.task),
                    self.cost.control_bytes,
                )
        self._notify_parent_resolved(state)

    def _finalize_column_leaf(self, state: _MasterTaskState) -> None:
        """The node stays a leaf: no (useful) split exists."""
        entry = state.entry
        for worker in state.results:
            self._send(
                worker,
                MSG_TASK_DELETE,
                TaskDeleteMsg(entry.task),
                self.cost.control_bytes,
            )
        self.counters.leaves_finalized += 1
        self._notify_parent_resolved(state)
        self._complete_task(state, net_children=0)

    def _notify_parent_resolved(self, state: _MasterTaskState) -> None:
        """Tell this task's parent worker its stored side can be freed."""
        parent = state.entry.parent
        if parent is None:
            return
        self._send(
            parent.worker,
            MSG_EXPECT_FETCHES,
            ExpectFetchesMsg(
                task=parent.task, side=parent.side, count=state.fetch_count
            ),
            self.cost.control_bytes,
        )

    # -- split completion ------------------------------------------------
    def _on_split_done(self, msg: SplitDoneMsg) -> None:
        if msg.task[0] in self._revoked:
            return
        state = self.ttask.get(msg.task)
        if state is None or state.split is None or state.delegate is None:
            raise RuntimeError(f"split_done for unresolved task {msg.task}")
        entry = state.entry
        build = self.builds[entry.tree_uid]
        node = build.nodes[entry.path]
        node.split = state.split

        children = 0
        for side, child_stats in ((0, msg.left_stats), (1, msg.right_stats)):
            child_path = 2 * entry.path + side
            expected_n = state.split.n_left if side == 0 else state.split.n_right
            if child_stats.n_rows != expected_n:
                raise RuntimeError(
                    f"task {msg.task}: child {side} has {child_stats.n_rows} "
                    f"rows, split predicted {expected_n}"
                )
            child_node = TreeNode(
                node_id=child_path,
                depth=entry.depth + 1,
                n_rows=child_stats.n_rows,
                prediction=child_stats.prediction(),
            )
            build.attach(child_path, child_node)
            if self._child_is_leaf(child_stats, entry.depth + 1, entry.ctx):
                self.counters.leaves_finalized += 1
                self._send(
                    state.delegate,
                    MSG_EXPECT_FETCHES,
                    ExpectFetchesMsg(task=entry.task, side=side, count=0),
                    self.cost.control_bytes,
                )
                continue
            children += 1
            child_entry = PlanEntry(
                task=(entry.tree_uid, child_path),
                n_rows=child_stats.n_rows,
                depth=entry.depth + 1,
                parent=ParentRef(
                    task=entry.task, side=side, worker=state.delegate
                ),
                ctx=entry.ctx,
                is_subtree=child_stats.n_rows <= self.system.tau_subtree,
            )
            self.bplan.insert(child_entry)
        self.counters.bplan_peak = max(self.counters.bplan_peak, len(self.bplan))
        self._complete_task(state, net_children=children)
        self._pump()

    def _child_is_leaf(
        self, stats: NodeStatsPayload, depth: int, ctx: TreeContext
    ) -> bool:
        config = ctx.config
        if stats.is_pure:
            return True
        if stats.n_rows <= config.tau_leaf:
            return True
        if config.max_depth is not None and depth >= config.max_depth:
            return True
        return False

    # -- subtree results ---------------------------------------------------
    def _on_subtree_result(self, msg: SubtreeResultMsg) -> None:
        if msg.task[0] in self._revoked:
            return
        state = self.ttask.get(msg.task)
        if state is None:
            raise RuntimeError(f"subtree result for unknown task {msg.task}")
        entry = state.entry
        build = self.builds[entry.tree_uid]
        subtree_root = node_from_dict(msg.subtree)
        build.attach(entry.path, subtree_root)
        # Row fetches for a subtree task: the key worker plus each server.
        state.fetch_count = state.n_servers + 1
        self._notify_parent_resolved(state)
        self._complete_task(state, net_children=0)
        self._pump()

    # -- shared completion --------------------------------------------------
    def _complete_task(self, state: _MasterTaskState, net_children: int) -> None:
        entry = state.entry
        self.matrix.revert(state.charge)
        del self.ttask[entry.task]
        done = self.progress.add(entry.tree_uid, net_children - 1)
        if done:
            self._complete_tree(entry.tree_uid)
        self._pump()

    def _complete_tree(self, uid: int) -> None:
        build = self.builds.pop(uid)
        root = build.nodes.get(1)
        if root is None:
            raise RuntimeError(f"tree {uid} completed without a root")
        tree = DecisionTree(
            root=root,
            problem=self.info.problem,
            n_classes=self.info.n_classes,
            tree_id=build.ticket.tree_index,
        )
        self.results[build.job.name][build.ticket.tree_index] = tree
        self.counters.trees_completed += 1
        if self.secondary_id is not None:
            # Appendix E: the master periodically synchronizes job metadata
            # and tree construction progress to the secondary master; we
            # sync at every tree completion (the natural checkpoint).
            self._send(
                self.secondary_id,
                "tree_completed_sync",
                TreeCompletedSync(
                    job_name=build.job.name,
                    tree_index=build.ticket.tree_index,
                    tree=tree.to_dict(),
                ),
                self.cost.subtree_bytes(tree.n_nodes),
            )
        self.pool.tree_completed(build.ticket)
        self._admit_trees()
        self._pump()

    # ------------------------------------------------------------------
    # fault recovery
    # ------------------------------------------------------------------
    def on_worker_crashed(self, worker: int) -> None:
        """Handle a detected worker failure (see module docstring)."""
        if self.halted or worker not in self.live_workers:
            return
        self.live_workers.remove(worker)
        for col, holders in self.holders.items():
            if worker in holders:
                holders.remove(worker)
            if not holders:
                raise RuntimeError(
                    f"column {col} lost all replicas (k too small for the "
                    f"crash pattern)"
                )
        for uid in self._affected_tree_uids(worker):
            self._restart_tree(self.builds[uid])
        self.counters.recovered_workers += 1
        # Drop the dead row only after the revoked tasks' charges were
        # reverted, so the matrix balances back to zero.
        self.matrix.drop_worker(worker)

    def _task_involves(self, state: _MasterTaskState, worker: int) -> bool:
        """Whether an in-flight task touched ``worker`` in any role."""
        if worker in state.expected_workers or worker == state.delegate:
            return True
        if worker == state.key_worker or worker in state.servers:
            return True
        parent = state.entry.parent
        if parent is not None and parent.worker == worker:
            return True
        # Charge sheet: extra-tree retries accumulate charges from earlier
        # fan-outs whose workers may no longer appear in expected_workers;
        # reverting such a sheet after drop_worker would unbalance M_work.
        return any(w == worker for w, _, _ in state.charge.entries)

    def _affected_tree_uids(self, worker: int) -> list[int]:
        """Trees the dead worker was involved in — and only those.

        Involvement means a live ``T_task`` entry references the worker
        (assigned, delegate, key, server, parent-store holder, or charged),
        or a queued ``B_plan`` entry's parent row store (``I_xl``/``I_xr``)
        lives on it.  Every delegate store the dead worker held is reachable
        through one of these references, so trees outside this set lost no
        state and need not be revoked.
        """
        affected = {
            task[0]
            for task, state in self.ttask.items()
            if self._task_involves(state, worker)
        }
        for entry in self.bplan.entries():
            if entry.parent is not None and entry.parent.worker == worker:
                affected.add(entry.tree_uid)
        return sorted(affected)

    def _restart_tree(self, build: _TreeBuild) -> None:
        """Revoke a tree and re-admit it under a fresh uid."""
        uid = build.uid
        self._revoked.add(uid)
        self.counters.revoked_trees += 1
        self.bplan.remove_tree(uid)
        for task in [t for t in self.ttask if t[0] == uid]:
            state = self.ttask.pop(task)
            self.matrix.revert(state.charge)
        self.progress.drop(uid)
        del self.builds[uid]
        for w in self.live_workers:
            self._send(
                w,
                MSG_REVOKE_TREE,
                RevokeTreeMsg(tree_uid=uid),
                self.cost.control_bytes,
            )
        self.pool.tree_restarted()
        self._start_tree(build.ticket)
        self._pump()

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def is_done(self) -> bool:
        """Whether every tree of every job has completed."""
        return self.pool.all_done()

    def trained_trees(self, job_name: str) -> list[DecisionTree]:
        """Trees of a completed job, in submission order."""
        trees = self.results[job_name]
        missing = [i for i, t in enumerate(trees) if t is None]
        if missing:
            raise RuntimeError(
                f"job {job_name!r} incomplete: trees {missing} missing"
            )
        return [t for t in trees if t is not None]
