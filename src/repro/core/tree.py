"""Decision tree model: nodes, prediction and (de)serialization.

Two features of TreeServer's tree representation (paper Appendix D) shape
this module:

* **Every node carries a prediction**, not only leaves.  Since each node has
  access to ``D_x`` during training, the label PMF (classification) or mean
  ``Y`` (regression) is a free byproduct.  This enables (a) truncating
  prediction at any depth ``1..d_max`` without retraining, and (b) graceful
  handling of missing values and attribute values unseen in the node's
  ``D_x`` — the descent simply stops and the current node answers.
* **Trees are assembled from parts**: the master grafts subtrees built by
  subtree-tasks onto nodes it split itself via column-tasks, so nodes must
  serialize to a plain, mergeable form (dicts shipped as messages in the
  simulated cluster).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..data.schema import ColumnKind, ProblemKind
from ..data.table import DataTable
from .splits import CandidateSplit, route_test_value


@dataclass
class TreeNode:
    """One node ``x`` of a decision tree.

    ``prediction`` is a class-PMF vector for classification and a float mean
    for regression.  Internal nodes carry both a split and a prediction.
    """

    node_id: int
    depth: int
    n_rows: int
    prediction: np.ndarray | float
    split: CandidateSplit | None = None
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None

    @property
    def is_leaf(self) -> bool:
        """Whether this node has no split (descent always stops here)."""
        return self.split is None

    def predicted_label(self) -> int:
        """Most likely class at this node (classification only)."""
        return int(np.argmax(self.prediction))

    def walk(self) -> Iterator["TreeNode"]:
        """Pre-order traversal of the subtree rooted here (iterative).

        Iterative because cascade-forest trees are trained with unbounded
        depth and may exceed Python's recursion limit.
        """
        stack: list[TreeNode] = [self]
        while stack:
            node = stack.pop()
            yield node
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)

    def breadth_first(self) -> Iterator["TreeNode"]:
        """Level-order traversal of the subtree rooted here.

        The serving compiler lays nodes out in this order so that during
        level-synchronous batch traversal every active row reads from one
        contiguous band of the flat arrays.
        """
        queue: deque[TreeNode] = deque([self])
        while queue:
            node = queue.popleft()
            yield node
            if node.left is not None:
                queue.append(node.left)
            if node.right is not None:
                queue.append(node.right)

    def count_nodes(self) -> int:
        """Number of nodes in the subtree rooted here."""
        return sum(1 for _ in self.walk())

    def subtree_depth(self) -> int:
        """Depth of the deepest descendant, relative to the tree root."""
        return max(node.depth for node in self.walk())


@dataclass
class DecisionTree:
    """A trained decision tree over a fixed schema.

    Parameters
    ----------
    root:
        The root node.
    problem:
        Classification or regression — decides prediction semantics.
    n_classes:
        Target cardinality (0 for regression).
    tree_id:
        Identifier assigned by the training job (for ensembles).
    """

    root: TreeNode
    problem: ProblemKind
    n_classes: int = 0
    tree_id: int = 0

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict_row(
        self, values: list[float | int], max_depth: int | None = None
    ) -> np.ndarray | float:
        """Predict one row, optionally truncating the descent at a depth.

        Returns the PMF vector (classification) or mean (regression) of the
        node where the descent stops — a leaf, the depth cutoff, or the first
        node whose split attribute is missing/unseen for this row.
        """
        node = self.root
        while not node.is_leaf:
            if max_depth is not None and node.depth >= max_depth:
                break
            assert node.split is not None
            direction = route_test_value(values[node.split.column], node.split)
            if direction is None:
                break
            node = node.left if direction else node.right
            assert node is not None
        return node.prediction

    def predict_proba(
        self, table: DataTable, max_depth: int | None = None
    ) -> np.ndarray:
        """Vectorized per-row class PMFs of shape ``(n_rows, n_classes)``."""
        if self.problem is not ProblemKind.CLASSIFICATION:
            raise ValueError("predict_proba requires a classification tree")
        out = np.zeros((table.n_rows, self.n_classes), dtype=np.float64)
        ids = np.arange(table.n_rows, dtype=np.int64)
        self._fill(self.root, table, ids, out, max_depth)
        return out

    def predict_values(
        self, table: DataTable, max_depth: int | None = None
    ) -> np.ndarray:
        """Vectorized regression predictions of shape ``(n_rows,)``."""
        if self.problem is not ProblemKind.REGRESSION:
            raise ValueError("predict_values requires a regression tree")
        out = np.zeros(table.n_rows, dtype=np.float64)
        ids = np.arange(table.n_rows, dtype=np.int64)
        self._fill(self.root, table, ids, out, max_depth)
        return out

    def predict(
        self, table: DataTable, max_depth: int | None = None
    ) -> np.ndarray:
        """Predicted labels (classification) or values (regression)."""
        if self.problem is ProblemKind.CLASSIFICATION:
            return np.argmax(self.predict_proba(table, max_depth), axis=1)
        return self.predict_values(table, max_depth)

    def _fill(
        self,
        node: TreeNode,
        table: DataTable,
        row_ids: np.ndarray,
        out: np.ndarray,
        max_depth: int | None,
    ) -> None:
        """Route row batches through the tree iteratively, writing outputs."""
        stack: list[tuple[TreeNode, np.ndarray]] = [(node, row_ids)]
        while stack:
            node, row_ids = stack.pop()
            if row_ids.size == 0:
                continue
            stop_all = node.is_leaf or (
                max_depth is not None and node.depth >= max_depth
            )
            if stop_all:
                out[row_ids] = node.prediction
                continue
            split = node.split
            assert split is not None and node.left and node.right
            values = table.column(split.column)[row_ids]
            if split.kind is ColumnKind.NUMERIC:
                missing = np.isnan(values)
                go_left = values <= split.threshold
                stop_here = missing
            else:
                left = split.left_categories or frozenset()
                right = split.right_categories or frozenset()
                go_left = np.isin(
                    values,
                    np.fromiter(left, dtype=values.dtype, count=len(left)),
                )
                seen_right = np.isin(
                    values,
                    np.fromiter(right, dtype=values.dtype, count=len(right)),
                )
                stop_here = ~(go_left | seen_right)  # missing or unseen
            if stop_here.any():
                out[row_ids[stop_here]] = node.prediction
            keep = ~stop_here
            stack.append((node.left, row_ids[keep & go_left]))
            stack.append((node.right, row_ids[keep & ~go_left]))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Total node count."""
        return self.root.count_nodes()

    @property
    def depth(self) -> int:
        """Depth of the deepest node (root is depth 0)."""
        return self.root.subtree_depth()

    def nodes(self) -> Iterator[TreeNode]:
        """Pre-order traversal of all nodes."""
        return self.root.walk()

    # ------------------------------------------------------------------
    # serialization (used for subtree-task results and model output files)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form suitable for JSON or message payloads."""
        return {
            "problem": self.problem.value,
            "n_classes": self.n_classes,
            "tree_id": self.tree_id,
            "root": node_to_dict(self.root),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DecisionTree":
        """Inverse of :meth:`to_dict`."""
        return cls(
            root=node_from_dict(data["root"]),
            problem=ProblemKind(data["problem"]),
            n_classes=int(data["n_classes"]),
            tree_id=int(data.get("tree_id", 0)),
        )


def _split_to_dict(split: CandidateSplit) -> dict:
    return {
        "column": split.column,
        "kind": split.kind.value,
        "score": split.score,
        "n_left": split.n_left,
        "n_right": split.n_right,
        "threshold": split.threshold,
        "left_categories": (
            sorted(split.left_categories)
            if split.left_categories is not None
            else None
        ),
        "right_categories": (
            sorted(split.right_categories)
            if split.right_categories is not None
            else None
        ),
        "n_missing": split.n_missing,
        "missing_to_left": split.missing_to_left,
    }


def _split_from_dict(s: dict) -> CandidateSplit:
    return CandidateSplit(
        column=int(s["column"]),
        kind=ColumnKind(s["kind"]),
        score=float(s["score"]),
        n_left=int(s["n_left"]),
        n_right=int(s["n_right"]),
        threshold=None if s["threshold"] is None else float(s["threshold"]),
        left_categories=(
            None
            if s["left_categories"] is None
            else frozenset(int(c) for c in s["left_categories"])
        ),
        right_categories=(
            None
            if s["right_categories"] is None
            else frozenset(int(c) for c in s["right_categories"])
        ),
        n_missing=int(s["n_missing"]),
        missing_to_left=bool(s["missing_to_left"]),
    )


def node_to_dict(node: TreeNode) -> dict:
    """Serialize a subtree to nested dicts (message payload form).

    Iterative so arbitrarily deep cascade-forest trees serialize safely.
    """
    root_data: dict = {}
    stack: list[tuple[TreeNode, dict]] = [(node, root_data)]
    while stack:
        current, data = stack.pop()
        pred = current.prediction
        data["node_id"] = current.node_id
        data["depth"] = current.depth
        data["n_rows"] = current.n_rows
        data["prediction"] = (
            pred.tolist() if isinstance(pred, np.ndarray) else pred
        )
        if current.split is not None:
            data["split"] = _split_to_dict(current.split)
            assert current.left is not None and current.right is not None
            data["left"] = {}
            data["right"] = {}
            stack.append((current.left, data["left"]))
            stack.append((current.right, data["right"]))
    return root_data


def node_from_dict(data: dict) -> TreeNode:
    """Deserialize a subtree produced by :func:`node_to_dict` (iterative)."""

    def make_node(d: dict) -> TreeNode:
        pred = d["prediction"]
        prediction: np.ndarray | float
        if isinstance(pred, list):
            prediction = np.asarray(pred, dtype=np.float64)
        else:
            prediction = float(pred)
        return TreeNode(
            node_id=int(d["node_id"]),
            depth=int(d["depth"]),
            n_rows=int(d["n_rows"]),
            prediction=prediction,
        )

    root = make_node(data)
    stack: list[tuple[dict, TreeNode]] = [(data, root)]
    while stack:
        d, node = stack.pop()
        if "split" not in d:
            continue
        node.split = _split_from_dict(d["split"])
        node.left = make_node(d["left"])
        node.right = make_node(d["right"])
        stack.append((d["left"], node.left))
        stack.append((d["right"], node.right))
    return root


def trees_equal(a: DecisionTree, b: DecisionTree) -> bool:
    """Structural equality of two trees — the *exactness* invariant check.

    Distributed training must produce exactly the tree the serial builder
    produces; this compares splits, structure and predictions node by node.
    """
    return _nodes_equal(a.root, b.root)


def _nodes_equal(root_a: TreeNode, root_b: TreeNode) -> bool:
    stack: list[tuple[TreeNode | None, TreeNode | None]] = [(root_a, root_b)]
    while stack:
        a, b = stack.pop()
        if (a is None) != (b is None):
            return False
        if a is None or b is None:
            continue
        if a.depth != b.depth or a.n_rows != b.n_rows:
            return False
        pa, pb = a.prediction, b.prediction
        if isinstance(pa, np.ndarray) != isinstance(pb, np.ndarray):
            return False
        if isinstance(pa, np.ndarray):
            if not np.allclose(pa, pb, atol=1e-12):
                return False
        elif abs(float(pa) - float(pb)) > 1e-12:
            return False
        if (a.split is None) != (b.split is None):
            return False
        if a.split is not None and b.split is not None:
            sa, sb = a.split, b.split
            same = (
                sa.column == sb.column
                and sa.kind == sb.kind
                and sa.left_categories == sb.left_categories
                and (
                    (sa.threshold is None and sb.threshold is None)
                    or (
                        sa.threshold is not None
                        and sb.threshold is not None
                        and abs(sa.threshold - sb.threshold) <= 1e-12
                    )
                )
            )
            if not same:
                return False
        stack.append((a.left, b.left))
        stack.append((a.right, b.right))
    return True
