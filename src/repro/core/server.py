"""TreeServer facade: the public entry point for distributed training.

Wires a :class:`SimulatedCluster` (master + workers), partitions the data
table's columns across workers with ``k``-way replication, runs the
submitted jobs through the master/worker protocol, and returns the trained
models together with paper-style run metrics (simulated seconds, CPU
percent, send Mbps, peak memory).

Typical use::

    from repro import TreeServer, SystemConfig, random_forest_job

    server = TreeServer(SystemConfig(n_workers=8).scaled_to(table.n_rows))
    report = server.fit(table, [random_forest_job("rf", n_trees=20)])
    forest = report.forest("rf")
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.cost import CostModel
from ..cluster.faults import CrashPlan, FaultInjector
from ..cluster.metrics import ClusterReport
from ..cluster.topology import SimulatedCluster
from ..data.table import DataTable
from .config import SystemConfig
from .jobs import TrainingJob
from .load_balance import assign_columns_to_workers
from .master import MasterActor, _TableInfo
from .secondary import SecondaryMasterActor
from .tasks import TaskCounters
from .tree import DecisionTree
from .worker import WorkerActor


@dataclass
class RunReport:
    """Everything a training run produced."""

    sim_seconds: float
    cluster: ClusterReport
    counters: TaskCounters
    models: dict[str, list[DecisionTree]] = field(default_factory=dict)
    #: The simulated machines, kept only when the run recorded timelines.
    machines: list | None = None

    def utilization_curve(self, n_bins: int = 20) -> list[float]:
        """Busy cores per time bin (requires ``record_timeline=True``)."""
        if self.machines is None:
            raise ValueError(
                "run without timelines; pass record_timeline=True to fit()"
            )
        from ..cluster.metrics import utilization_curve

        return utilization_curve(self.machines, self.sim_seconds, n_bins)

    def trees(self, job_name: str) -> list[DecisionTree]:
        """Trained trees of one job."""
        return self.models[job_name]

    def tree(self, job_name: str) -> DecisionTree:
        """The single tree of a one-tree job."""
        trees = self.models[job_name]
        if len(trees) != 1:
            raise ValueError(
                f"job {job_name!r} trained {len(trees)} trees, expected 1"
            )
        return trees[0]

    def forest(self, job_name: str):
        """Trees of a job wrapped as a :class:`repro.ensemble.ForestModel`."""
        from ..ensemble.forest import ForestModel

        return ForestModel(self.models[job_name])


class TreeServer:
    """A (simulated) TreeServer deployment ready to train tree models."""

    def __init__(
        self, system: SystemConfig | None = None, cost: CostModel | None = None
    ) -> None:
        self.system = system or SystemConfig()
        self.cost = cost or CostModel(
            ops_per_second=self.system.core_ops_per_second,
            bandwidth_bytes_per_second=self.system.bandwidth_bytes_per_second,
            latency_seconds=self.system.network_latency_seconds,
        )

    def fit(
        self,
        table: DataTable,
        jobs: list[TrainingJob],
        crash_plans: list[CrashPlan] | None = None,
        max_events: int | None = None,
        secondary_master: bool = False,
        record_timeline: bool = False,
    ) -> RunReport:
        """Train all jobs on the table; returns models plus run metrics.

        ``crash_plans`` optionally injects failures (fault-tolerance tests);
        ``secondary_master`` enables the Appendix-E hot standby, making a
        master crash survivable; ``record_timeline`` traces every executed
        work item so :meth:`RunReport.utilization_curve` can be used;
        ``max_events`` is a runaway guard.
        """
        if not jobs:
            raise ValueError("no jobs submitted")
        if table.n_rows < 1:
            raise ValueError("empty training table")
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise ValueError("job names must be unique")

        cluster = SimulatedCluster(
            n_workers=self.system.n_workers,
            compers_per_worker=self.system.compers_per_worker,
            cost=self.cost,
            extra_machines=1 if secondary_master else 0,
        )
        if record_timeline:
            for machine in cluster.machines:
                machine.record_timeline = True
        worker_ids = cluster.worker_ids()
        placement = assign_columns_to_workers(
            table.n_columns, worker_ids, self.system.column_replication
        )
        workers: list[WorkerActor] = []
        for wid in worker_ids:
            held = {c for c, ws in placement.items() if wid in ws}
            worker = WorkerActor(cluster, wid, table, held)
            cluster.register(wid, worker)
            workers.append(worker)

        info = _TableInfo(
            n_rows=table.n_rows,
            n_columns=table.n_columns,
            problem=table.problem,
            n_classes=table.n_classes,
        )
        secondary: SecondaryMasterActor | None = None
        if secondary_master:
            secondary_id = self.system.n_workers + 1
            secondary = SecondaryMasterActor(
                cluster, secondary_id, info, jobs, self.system, placement
            )
            cluster.register(secondary_id, secondary)
        master = MasterActor(
            cluster,
            info,
            jobs,
            self.system,
            placement,
            secondary_id=(secondary.machine_id if secondary else None),
        )
        cluster.register(cluster.MASTER, master)

        if crash_plans:
            injector = FaultInjector(
                cluster.engine, cluster.machines, cluster.network
            )

            def on_failure(machine_id: int) -> None:
                if machine_id == cluster.MASTER:
                    assert secondary is not None
                    secondary.on_master_failure()
                    return
                active = (
                    secondary.promoted
                    if secondary is not None and secondary.promoted
                    else master
                )
                if active.halted:
                    # The master died before this worker-crash was
                    # detected; the upcoming failover rebuilds its state
                    # from live workers only, so nothing to do here.
                    return
                active.on_worker_crashed(machine_id)

            injector.on_failure_detected(on_failure)
            for plan in crash_plans:
                if plan.machine_id == cluster.MASTER and not secondary_master:
                    raise ValueError(
                        "master failure needs secondary_master=True"
                    )
                injector.schedule_crash(plan)

        master.start()
        report = cluster.run(max_events=max_events)

        if secondary is not None and secondary.promoted is not None:
            master = secondary.promoted  # results live in the new master
        if not master.is_done():
            raise RuntimeError(
                "simulation drained but training is incomplete "
                f"({master.pool.completed_trees}/{master.pool.total_trees} trees)"
            )
        self._check_clean_shutdown(workers)
        if not master.matrix.is_zero():
            raise RuntimeError(
                "load matrix did not return to zero: "
                f"{master.matrix.snapshot()}"
            )
        master.counters.head_insertions = master.bplan.head_insertions
        master.counters.tail_insertions = master.bplan.tail_insertions
        master.counters.bplan_peak = max(
            master.counters.bplan_peak, master.bplan.peak_size
        )

        models = {job.name: master.trained_trees(job.name) for job in jobs}
        return RunReport(
            sim_seconds=report.elapsed_seconds,
            cluster=report,
            counters=master.counters,
            models=models,
            machines=cluster.machines if record_timeline else None,
        )

    @staticmethod
    def _check_clean_shutdown(workers: list[WorkerActor]) -> None:
        """Assert no worker leaked task state or task memory."""
        for worker in workers:
            if worker.machine.halted:
                continue  # crashed workers keep whatever they had
            leftovers = {
                k: v for k, v in worker.outstanding_state().items() if v
            }
            if leftovers:
                raise RuntimeError(
                    f"worker {worker.worker_id} leaked task state: {leftovers}"
                )
            if worker.machine.stats.mem_task_bytes != 0:
                raise RuntimeError(
                    f"worker {worker.worker_id} leaked "
                    f"{worker.machine.stats.mem_task_bytes} bytes of task memory"
                )
