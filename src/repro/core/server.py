"""TreeServer facade: the public entry point for distributed training.

Partitions the data table's columns across workers with ``k``-way
replication, runs the submitted jobs through the master/worker protocol on
the selected **runtime backend**, and returns the trained models together
with paper-style run metrics.

Three backends (see ``repro.runtime`` and ``docs/RUNTIME.md``):

* ``"sim"`` (default) — the deterministic discrete-event simulator; time
  is simulated seconds, fault injection and the secondary master are
  available.
* ``"mp"`` — real OS processes exchanging the same typed messages over
  ``multiprocessing`` queues; time is wall-clock.  Bit-identical models
  to ``"sim"`` on the same inputs.
* ``"socket"`` — the same protocol over length-prefixed pickled frames
  on persistent TCP, for true multi-host runs (``repro worker``) with a
  loopback self-launch mode on one machine.  Bit-identical too.

Typical use::

    from repro import TreeServer, SystemConfig, random_forest_job

    server = TreeServer(SystemConfig(n_workers=8).scaled_to(table.n_rows))
    report = server.fit(table, [random_forest_job("rf", n_trees=20)])
    forest = report.forest("rf")

    real = TreeServer(SystemConfig(n_workers=4), backend="mp")
    report = real.fit(table, [random_forest_job("rf", n_trees=20)])
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.cost import CostModel
from ..cluster.faults import CrashPlan
from ..cluster.metrics import ClusterReport
from .config import SystemConfig
from .jobs import TrainingJob
from .tasks import TaskCounters
from .tree import DecisionTree


@dataclass
class RunReport:
    """Everything a training run produced."""

    sim_seconds: float
    cluster: ClusterReport
    counters: TaskCounters
    models: dict[str, list[DecisionTree]] = field(default_factory=dict)
    #: The simulated machines, kept only when the run recorded timelines.
    machines: list | None = None
    #: Which runtime backend produced this report (one of
    #: ``repro.runtime.BACKENDS``).
    backend: str = "sim"
    #: Real elapsed seconds.  On the mp and socket backends this equals
    #: ``sim_seconds`` (there is no simulated clock there); on the sim
    #: backend it is how long the simulation itself took to run.
    wall_seconds: float = 0.0

    def utilization_curve(self, n_bins: int = 20) -> list[float]:
        """Busy cores per time bin (requires ``record_timeline=True``)."""
        if self.machines is None:
            raise ValueError(
                "run without timelines; pass record_timeline=True to fit()"
            )
        from ..cluster.metrics import utilization_curve

        return utilization_curve(self.machines, self.sim_seconds, n_bins)

    def trees(self, job_name: str) -> list[DecisionTree]:
        """Trained trees of one job."""
        return self.models[job_name]

    def tree(self, job_name: str) -> DecisionTree:
        """The single tree of a one-tree job."""
        trees = self.models[job_name]
        if len(trees) != 1:
            raise ValueError(
                f"job {job_name!r} trained {len(trees)} trees, expected 1"
            )
        return trees[0]

    def forest(self, job_name: str):
        """Trees of a job wrapped as a :class:`repro.ensemble.ForestModel`."""
        from ..ensemble.forest import ForestModel

        return ForestModel(self.models[job_name])


class TreeServer:
    """A TreeServer deployment ready to train tree models.

    ``backend`` selects the execution substrate: ``"sim"`` (default, the
    discrete-event simulator), ``"mp"`` (real worker processes) or
    ``"socket"`` (worker processes over TCP, possibly on other hosts).
    ``runtime_options`` tunes the process backends' timeouts, start
    method and socket rendezvous, and the fault policy on any backend
    (the simulator ignores the process-only knobs).
    """

    def __init__(
        self,
        system: SystemConfig | None = None,
        cost: CostModel | None = None,
        backend: str = "sim",
        runtime_options=None,
    ) -> None:
        from ..runtime import BACKENDS

        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.system = system or SystemConfig()
        self.cost = cost or CostModel(
            ops_per_second=self.system.core_ops_per_second,
            bandwidth_bytes_per_second=self.system.bandwidth_bytes_per_second,
            latency_seconds=self.system.network_latency_seconds,
        )
        self.backend = backend
        self.runtime_options = runtime_options

    def fit(
        self,
        table,
        jobs: list[TrainingJob],
        crash_plans: list[CrashPlan] | None = None,
        max_events: int | None = None,
        secondary_master: bool = False,
        record_timeline: bool = False,
    ) -> RunReport:
        """Train all jobs on the table; returns models plus run metrics.

        ``crash_plans`` optionally injects failures (fault-tolerance tests);
        ``secondary_master`` enables the Appendix-E hot standby, making a
        master crash survivable; ``record_timeline`` traces every executed
        work item so :meth:`RunReport.utilization_curve` can be used;
        ``max_events`` is a runaway guard.  All four are simulator-only
        features — the process backends reject them.
        """
        from ..runtime import create_runtime

        kernel = getattr(self.runtime_options, "kernel", None)
        if kernel is not None:
            jobs = [job.with_kernel(kernel) for job in jobs]
        split_mode = getattr(self.runtime_options, "split_mode", None)
        max_bins = getattr(self.runtime_options, "max_bins", None)
        if split_mode is not None or max_bins is not None:
            jobs = [job.with_split_mode(split_mode, max_bins) for job in jobs]
        runtime = create_runtime(
            self.backend, self.system, self.cost, self.runtime_options
        )
        return runtime.fit(
            table,
            jobs,
            crash_plans=crash_plans,
            max_events=max_events,
            secondary_master=secondary_master,
            record_timeline=record_timeline,
        )
