"""Exact best-split search per attribute — the paper's Appendix B.

TreeServer computes *exact* split conditions, unlike PLANET/MLlib (equi-depth
histograms) and XGBoost (weighted quantile sketches).  At each tree node the
best split of each candidate attribute is found independently — this module
implements the three cases the paper describes:

* **Case 1 — ordinal attribute** (classification or regression): sort the
  rows of ``D_x`` by the attribute and score every distinct-value boundary in
  one incremental pass.
* **Case 2 — categorical attribute, numeric target** (regression): Breiman's
  result — group rows by category, sort groups by mean ``Y``, and the optimal
  subset split is a prefix of that order, so one pass over groups suffices.
* **Case 3 — categorical attribute, categorical target** (classification):
  subsets must be enumerated; following the paper, when ``|S_i|`` is large we
  restrict ``|S_l| = 1`` so only ``O(|S_i|)`` splits are checked, and we
  enumerate all subsets exhaustively when ``|S_i|`` is small.

Missing values are excluded from split scoring; during training they are
routed to the larger child, and at prediction time a missing or unseen value
stops the descent at the current node (paper Appendix D).

All searches are deterministic: ties are broken toward the smaller threshold
or the earlier-enumerated category subset, and across columns the engine
breaks ties toward the lower column index.  Determinism is what makes the
distributed engine's output bit-identical to the serial builder's — a tested
invariant of this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.schema import ColumnKind
from ..data.table import MISSING_CODE
from .impurity import (
    Impurity,
    classification_impurity_rows,
    variance_rows,
    weighted_children_impurity,
)

#: Enumerate all category subsets exhaustively when the number of non-empty
#: categories at the node is at most this; otherwise restrict ``|S_l| = 1``.
EXHAUSTIVE_SUBSET_LIMIT = 8


@dataclass(frozen=True)
class CandidateSplit:
    """The best split condition found for one attribute at one node.

    ``score`` is the size-weighted impurity of the two children (lower is
    better).  For categorical splits, ``left_categories`` is the chosen
    ``S_l`` and ``right_categories`` the remaining categories *seen in D_x* —
    keeping both lets prediction detect values unseen during training.
    """

    column: int
    kind: ColumnKind
    score: float
    n_left: int
    n_right: int
    threshold: float | None = None
    left_categories: frozenset[int] | None = None
    right_categories: frozenset[int] | None = None
    n_missing: int = 0
    missing_to_left: bool = True

    def sort_key(self) -> tuple[float, int]:
        """Deterministic cross-column comparison key (score, column)."""
        return (self.score, self.column)

    def describe(self, column_name: str = "") -> str:
        """Human-readable split condition, e.g. ``A1 <= 40``."""
        name = column_name or f"A{self.column}"
        if self.kind is ColumnKind.NUMERIC:
            return f"{name} <= {self.threshold:g}"
        cats = sorted(self.left_categories or ())
        return f"{name} in {cats}"


def best_numeric_split(
    column: int,
    values: np.ndarray,
    y: np.ndarray,
    criterion: Impurity,
    n_classes: int,
) -> CandidateSplit | None:
    """Case 1: exact best threshold for an ordinal attribute.

    Sorts the node's rows by the attribute value and scores every boundary
    between distinct values.  The threshold is the left boundary value itself
    (the paper's ``A_i <= v`` uses data values for ``v``).
    """
    present = ~np.isnan(values)
    n_missing = int(values.size - present.sum())
    vals = values[present]
    ys = y[present]
    n = vals.size
    if n < 2:
        return None

    order = np.argsort(vals, kind="stable")
    sv = vals[order]
    sy = ys[order]

    # Candidate boundaries: positions i where sv[i] < sv[i + 1].
    boundary = np.nonzero(sv[:-1] < sv[1:])[0]
    if boundary.size == 0:
        return None
    n_left = boundary + 1
    n_right = n - n_left

    if criterion.is_classification:
        # Per-class cumulative counts along the sorted order.
        left_counts = np.empty((boundary.size, n_classes), dtype=np.float64)
        for cls in range(n_classes):
            cum = np.cumsum(sy == cls)
            left_counts[:, cls] = cum[boundary]
        total_counts = np.bincount(sy.astype(np.int64), minlength=n_classes)
        right_counts = total_counts[None, :] - left_counts
        left_imp = classification_impurity_rows(left_counts, criterion)
        right_imp = classification_impurity_rows(right_counts, criterion)
    else:
        cum_y = np.cumsum(sy)
        cum_y2 = np.cumsum(sy * sy)
        l_sum, l_sq = cum_y[boundary], cum_y2[boundary]
        r_sum, r_sq = cum_y[-1] - l_sum, cum_y2[-1] - l_sq
        left_imp = variance_rows(n_left.astype(float), l_sum, l_sq)
        right_imp = variance_rows(n_right.astype(float), r_sum, r_sq)

    scores = weighted_children_impurity(left_imp, n_left, right_imp, n_right)
    best = int(np.argmin(scores))  # first minimum == smallest threshold
    nl, nr = int(n_left[best]), int(n_right[best])
    return CandidateSplit(
        column=column,
        kind=ColumnKind.NUMERIC,
        score=float(scores[best]),
        n_left=nl + (n_missing if nl >= nr else 0),
        n_right=nr + (0 if nl >= nr else n_missing),
        threshold=float(sv[boundary[best]]),
        n_missing=n_missing,
        missing_to_left=nl >= nr,
    )


def _category_stats_classification(
    codes: np.ndarray, y: np.ndarray, n_categories: int, n_classes: int
) -> np.ndarray:
    """Class-count matrix of shape ``(n_categories, n_classes)``."""
    flat = codes.astype(np.int64) * n_classes + y.astype(np.int64)
    counts = np.bincount(flat, minlength=n_categories * n_classes)
    return counts.reshape(n_categories, n_classes).astype(np.float64)


def best_categorical_regression_split(
    column: int,
    codes: np.ndarray,
    y: np.ndarray,
    n_categories: int,
) -> CandidateSplit | None:
    """Case 2: Breiman's mean-ordering algorithm for regression.

    After sorting the category groups by mean ``Y``, the optimal subset split
    is a prefix cut of the sorted group list, so only ``|S_i| - 1`` cuts need
    scoring — no exponential enumeration.
    """
    present = codes != MISSING_CODE
    n_missing = int(codes.size - present.sum())
    cd = codes[present]
    ys = y[present]
    if cd.size < 2:
        return None

    counts = np.bincount(cd, minlength=n_categories).astype(np.float64)
    sums = np.bincount(cd, weights=ys, minlength=n_categories)
    sq_sums = np.bincount(cd, weights=ys * ys, minlength=n_categories)
    nonempty = np.nonzero(counts > 0)[0]
    if nonempty.size < 2:
        return None

    means = sums[nonempty] / counts[nonempty]
    # Stable order by (mean, code) keeps ties deterministic.
    order = nonempty[np.lexsort((nonempty, means))]
    c = counts[order]
    s = sums[order]
    q = sq_sums[order]

    cum_c = np.cumsum(c)[:-1]
    cum_s = np.cumsum(s)[:-1]
    cum_q = np.cumsum(q)[:-1]
    tot_c, tot_s, tot_q = c.sum(), s.sum(), q.sum()
    left_imp = variance_rows(cum_c, cum_s, cum_q)
    right_imp = variance_rows(tot_c - cum_c, tot_s - cum_s, tot_q - cum_q)
    scores = weighted_children_impurity(left_imp, cum_c, right_imp, tot_c - cum_c)
    best = int(np.argmin(scores))

    left = frozenset(int(code) for code in order[: best + 1])
    right = frozenset(int(code) for code in order[best + 1 :])
    nl, nr = int(cum_c[best]), int(tot_c - cum_c[best])
    return CandidateSplit(
        column=column,
        kind=ColumnKind.CATEGORICAL,
        score=float(scores[best]),
        n_left=nl + (n_missing if nl >= nr else 0),
        n_right=nr + (0 if nl >= nr else n_missing),
        left_categories=left,
        right_categories=right,
        n_missing=n_missing,
        missing_to_left=nl >= nr,
    )


def _enumerate_subsets(n: int) -> list[tuple[int, ...]]:
    """Proper non-empty subsets of ``range(n)`` that contain element 0.

    Fixing element 0 on the left removes mirror-image duplicates, leaving
    ``2^(n-1) - 1`` distinct binary partitions.
    """
    subsets: list[tuple[int, ...]] = []
    for mask in range(1, 1 << (n - 1)):
        subset = tuple(
            i for i in range(n) if (i == 0) or (mask >> (i - 1)) & 1
        )
        if len(subset) < n:
            subsets.append(subset)
    # mask == 0 case: {0} alone.
    subsets.insert(0, (0,))
    return subsets


def best_categorical_classification_split(
    column: int,
    codes: np.ndarray,
    y: np.ndarray,
    n_categories: int,
    criterion: Impurity,
    n_classes: int,
) -> CandidateSplit | None:
    """Case 3: categorical attribute, categorical target.

    Exhaustive subset enumeration when the node sees at most
    :data:`EXHAUSTIVE_SUBSET_LIMIT` categories; otherwise the paper's
    ``|S_l| = 1`` restriction (one-vs-rest per category).
    """
    present = codes != MISSING_CODE
    n_missing = int(codes.size - present.sum())
    cd = codes[present]
    ys = y[present]
    if cd.size < 2:
        return None

    stats = _category_stats_classification(cd, ys, n_categories, n_classes)
    cat_totals = stats.sum(axis=1)
    nonempty = np.nonzero(cat_totals > 0)[0]
    if nonempty.size < 2:
        return None
    live = stats[nonempty]  # (g, k) stats of non-empty categories
    total = live.sum(axis=0)
    n_total = float(total.sum())

    if nonempty.size <= EXHAUSTIVE_SUBSET_LIMIT:
        candidates = _enumerate_subsets(nonempty.size)
        left_counts = np.stack(
            [live[list(subset)].sum(axis=0) for subset in candidates]
        )
    else:
        candidates = [(i,) for i in range(nonempty.size)]
        left_counts = live

    right_counts = total[None, :] - left_counts
    n_left = left_counts.sum(axis=1)
    n_right = n_total - n_left
    valid = (n_left > 0) & (n_right > 0)
    if not valid.any():
        return None
    left_imp = classification_impurity_rows(left_counts, criterion)
    right_imp = classification_impurity_rows(right_counts, criterion)
    scores = weighted_children_impurity(left_imp, n_left, right_imp, n_right)
    scores = np.where(valid, scores, np.inf)
    best = int(np.argmin(scores))

    left_local = set(candidates[best])
    left = frozenset(int(nonempty[i]) for i in left_local)
    right = frozenset(
        int(nonempty[i]) for i in range(nonempty.size) if i not in left_local
    )
    nl, nr = int(n_left[best]), int(n_right[best])
    return CandidateSplit(
        column=column,
        kind=ColumnKind.CATEGORICAL,
        score=float(scores[best]),
        n_left=nl + (n_missing if nl >= nr else 0),
        n_right=nr + (0 if nl >= nr else n_missing),
        left_categories=left,
        right_categories=right,
        n_missing=n_missing,
        missing_to_left=nl >= nr,
    )


def best_split_for_column(
    column: int,
    kind: ColumnKind,
    values: np.ndarray,
    y: np.ndarray,
    criterion: Impurity,
    n_classes: int,
    n_categories: int = 0,
) -> CandidateSplit | None:
    """Dispatch to the right Appendix-B case for one attribute.

    This single entry point is shared by the serial builder, the column-task
    worker code in the distributed engine, and the subtree builder, which is
    what guarantees all of them pick identical splits.
    """
    if kind is ColumnKind.NUMERIC:
        return best_numeric_split(column, values, y, criterion, n_classes)
    if criterion.is_classification:
        return best_categorical_classification_split(
            column, values, y, n_categories, criterion, n_classes
        )
    return best_categorical_regression_split(column, values, y, n_categories)


def random_split_for_column(
    column: int,
    kind: ColumnKind,
    values: np.ndarray,
    y: np.ndarray,
    criterion: Impurity,
    n_classes: int,
    rng: np.random.Generator,
    n_categories: int = 0,
) -> CandidateSplit | None:
    """Completely-random split for extra-trees (paper Appendix F).

    Numeric: a threshold drawn uniformly from ``[min, max)`` of the node's
    values.  Categorical: a uniformly random seen category as ``S_l``.
    The returned score is the realized weighted child impurity so leaves and
    degenerate draws are still handled uniformly by the builder.
    """
    if kind is ColumnKind.NUMERIC:
        present = ~np.isnan(values)
        vals = values[present]
        if vals.size < 2:
            return None
        lo, hi = float(vals.min()), float(vals.max())
        if lo == hi:
            return None
        threshold = float(rng.uniform(lo, hi))
        go_left = vals <= threshold
        nl = int(go_left.sum())
        nr = int(vals.size - nl)
        if nl == 0 or nr == 0:
            return None
        score = _realized_score(go_left, y[present], criterion, n_classes)
        n_missing = int(values.size - vals.size)
        return CandidateSplit(
            column=column,
            kind=ColumnKind.NUMERIC,
            score=score,
            n_left=nl + (n_missing if nl >= nr else 0),
            n_right=nr + (0 if nl >= nr else n_missing),
            threshold=threshold,
            n_missing=n_missing,
            missing_to_left=nl >= nr,
        )

    present = values != MISSING_CODE
    cd = values[present]
    if cd.size < 2:
        return None
    seen = np.unique(cd)
    if seen.size < 2:
        return None
    pick = int(seen[rng.integers(seen.size)])
    go_left = cd == pick
    nl = int(go_left.sum())
    nr = int(cd.size - nl)
    score = _realized_score(go_left, y[present], criterion, n_classes)
    n_missing = int(values.size - cd.size)
    return CandidateSplit(
        column=column,
        kind=ColumnKind.CATEGORICAL,
        score=score,
        n_left=nl + (n_missing if nl >= nr else 0),
        n_right=nr + (0 if nl >= nr else n_missing),
        left_categories=frozenset({pick}),
        right_categories=frozenset(int(c) for c in seen if c != pick),
        n_missing=n_missing,
        missing_to_left=nl >= nr,
    )


def _realized_score(
    go_left: np.ndarray, y: np.ndarray, criterion: Impurity, n_classes: int
) -> float:
    """Weighted child impurity of an already-decided partition."""
    yl, yr = y[go_left], y[~go_left]
    if criterion.is_classification:
        lc = np.bincount(yl.astype(np.int64), minlength=n_classes).astype(float)
        rc = np.bincount(yr.astype(np.int64), minlength=n_classes).astype(float)
        li = classification_impurity_rows(lc[None, :], criterion)[0]
        ri = classification_impurity_rows(rc[None, :], criterion)[0]
    else:
        li = variance_rows(
            np.array([float(yl.size)]),
            np.array([yl.sum()]),
            np.array([(yl * yl).sum()]),
        )[0]
        ri = variance_rows(
            np.array([float(yr.size)]),
            np.array([yr.sum()]),
            np.array([(yr * yr).sum()]),
        )[0]
    return float(
        weighted_children_impurity(li, yl.size, ri, yr.size)
    )


def route_training_rows(values: np.ndarray, split: CandidateSplit) -> np.ndarray:
    """Boolean mask: which of the node's rows go to the *left* child.

    Missing values follow ``split.missing_to_left`` (the larger child), so
    every training row is routed and ``|I_xl| + |I_xr| = |I_x|`` always holds
    — the invariant the delegate-worker protocol relies on.
    """
    if split.kind is ColumnKind.NUMERIC:
        missing = np.isnan(values)
        go_left = values <= split.threshold
    else:
        missing = values == MISSING_CODE
        left = split.left_categories or frozenset()
        go_left = np.isin(values, np.fromiter(left, dtype=values.dtype, count=len(left)))
    go_left = np.where(missing, split.missing_to_left, go_left)
    return go_left.astype(bool)


def route_test_value(value: float | int, split: CandidateSplit) -> bool | None:
    """Route a single prediction-time value; ``None`` means stop here.

    ``None`` is returned for missing values and for categorical values never
    seen in the node's ``D_x`` during training — in both cases the paper's
    Appendix D stops the descent and reports the current node's prediction.
    """
    if split.kind is ColumnKind.NUMERIC:
        if np.isnan(value):
            return None
        return bool(value <= split.threshold)
    code = int(value)
    if code == MISSING_CODE:
        return None
    if split.left_categories and code in split.left_categories:
        return True
    if split.right_categories and code in split.right_categories:
        return False
    return None
