"""Serial exact tree builder.

This is the single-machine training kernel.  It serves three roles:

1. **Subtree-task execution** — when a distributed task ``t_x`` has
   ``|D_x| <= tau_D``, the key worker pulls ``D_x`` and calls
   :func:`build_subtree` to construct the whole ``Delta_x`` locally
   (paper Fig. 3(b)).
2. **Ground truth** — the exactness invariant asserts that distributed
   training returns exactly the tree this builder produces.
3. **A conventional serial trainer** — used by the paper's "fairness of
   implementation" experiment and by the deep forest's fast local backend.

Node ids are *heap paths*: the root is 1, node ``p``'s children are ``2p``
and ``2p + 1``.  The path determines the depth (``path.bit_length() - 1``)
and, for extra-trees, seeds the per-node RNG — which is how distributed and
serial training draw identical random splits regardless of task order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.schema import ColumnKind, ProblemKind
from ..data.table import DataTable
from .config import TreeConfig, TreeKind
from .histogram import best_binned_numeric_split, bin_indices
from .impurity import classification_impurity, variance
from .splits import (
    CandidateSplit,
    best_split_for_column,
    random_split_for_column,
    route_training_rows,
)
from .tree import DecisionTree, TreeNode

#: Empty threshold set: a degenerate hist-mode column offers no candidates.
_NO_THRESHOLDS = np.empty(0)


def path_depth(path: int) -> int:
    """Depth of a heap-path node id (root path 1 has depth 0)."""
    return path.bit_length() - 1


def node_rng(seed: int, path: int) -> np.random.Generator:
    """Per-node RNG derived from the tree seed and the node's heap path.

    Deterministic in ``(seed, path)`` only — independent of the order nodes
    are processed in, which is what lets the distributed engine reproduce
    extra-tree splits bit-for-bit.
    """
    return np.random.default_rng([seed, path])


def extra_tree_column_order(
    seed: int, path: int, candidate_columns: tuple[int, ...]
) -> list[int]:
    """Column try-order for one extra-tree node.

    The node samples one random column; if its values are degenerate
    (constant / all missing) the next column in this order is tried.  The
    order depends only on ``(seed, path)`` so the master and any worker
    compute the same sequence independently.
    """
    order = node_rng(seed, path).permutation(len(candidate_columns))
    return [candidate_columns[int(i)] for i in order]


def extra_tree_split_rng(seed: int, path: int, column: int) -> np.random.Generator:
    """RNG for one extra-tree random split draw.

    Keyed by ``(seed, path, column)`` — not a shared stream — so a remote
    column-holding worker reproduces the exact draw without coordination.
    """
    return np.random.default_rng([seed, path, column, 0xE7])


def sample_candidate_columns(
    config: TreeConfig, n_columns: int
) -> tuple[int, ...]:
    """Draw the per-tree candidate attribute set ``C``.

    A sorted tuple for determinism.  For ``ColumnSampling.ALL`` this is all
    columns; random forests use ``sqrt(|A|)`` columns per tree (paper
    Section VIII); Table VIII(c,d) sweeps an explicit ratio.
    """
    size = config.n_candidate_columns(n_columns)
    if size >= n_columns:
        return tuple(range(n_columns))
    rng = np.random.default_rng([config.seed, 0xC0])
    cols = rng.choice(n_columns, size=size, replace=False)
    return tuple(sorted(int(c) for c in cols))


def bootstrap_row_ids(seed: int, n_rows: int) -> np.ndarray:
    """Deterministic bootstrap sample for optional row bagging.

    Both the master and workers can regenerate this from the tree seed, so
    bootstrap row ids never travel in task-plan messages.
    """
    rng = np.random.default_rng([seed, 0xB0])
    return np.sort(rng.integers(0, n_rows, size=n_rows, dtype=np.int64))


@dataclass(frozen=True)
class NodeStats:
    """Sufficient statistics of ``Y`` over a node's rows ``D_x``.

    ``counts`` is the integer class-count vector (classification only;
    ``None`` for regression).  It is kept so the parent-impurity
    computation can reuse it instead of re-counting the same rows.
    """

    n_rows: int
    prediction: np.ndarray | float
    is_pure: bool
    counts: np.ndarray | None = None


def node_statistics(
    y: np.ndarray, problem: ProblemKind, n_classes: int
) -> NodeStats:
    """Prediction (PMF or mean) and purity flag for one node's labels."""
    n = int(y.size)
    if problem is ProblemKind.CLASSIFICATION:
        counts = np.bincount(y.astype(np.int64), minlength=n_classes)
        pmf = counts / max(n, 1)
        pure = bool(n > 0 and counts.max() == n)
        return NodeStats(n, pmf.astype(np.float64), pure, counts=counts)
    mean = float(y.mean()) if n else 0.0
    pure = bool(n > 0 and np.all(y == y[0]))
    return NodeStats(n, mean, pure)


def find_best_split(
    table: DataTable,
    row_ids: np.ndarray,
    candidate_columns: tuple[int, ...],
    config: TreeConfig,
    path: int,
    thresholds: dict[int, np.ndarray] | None = None,
) -> CandidateSplit | None:
    """Best split across the candidate attributes for one node.

    Decision trees compare the exact per-column bests and break ties toward
    the lower column index.  Extra-trees draw one random column and one
    random condition per node (paper Appendix F), retrying over the
    remaining columns when the draw is degenerate.

    ``thresholds`` switches numeric columns to histogram prefix-cut search
    (``split_mode="hist"``): per-column equi-depth thresholds, computed
    once over the full table, restrict the candidate cuts; statistics stay
    node-local.  Categorical columns are searched exactly either way.
    """
    y = table.target[row_ids]
    criterion = config.resolved_criterion(
        table.problem is ProblemKind.CLASSIFICATION
    )
    n_classes = table.n_classes

    if config.tree_kind is TreeKind.EXTRA:
        for col in extra_tree_column_order(config.seed, path, candidate_columns):
            spec = table.column_spec(col)
            split = random_split_for_column(
                col,
                spec.kind,
                table.column(col)[row_ids],
                y,
                criterion,
                n_classes,
                extra_tree_split_rng(config.seed, path, col),
                spec.n_categories,
            )
            if split is not None:
                return split
        return None

    best: CandidateSplit | None = None
    for col in candidate_columns:
        spec = table.column_spec(col)
        if thresholds is not None and spec.kind is ColumnKind.NUMERIC:
            t = thresholds.get(col, _NO_THRESHOLDS)
            split = best_binned_numeric_split(
                col,
                bin_indices(table.column(col)[row_ids], t),
                t,
                y,
                criterion,
                n_classes,
            )
        else:
            split = best_split_for_column(
                col,
                spec.kind,
                table.column(col)[row_ids],
                y,
                criterion,
                n_classes,
                spec.n_categories,
            )
        if split is None:
            continue
        if best is None or split.sort_key() < best.sort_key():
            best = split
    return best


def should_stop(
    stats: NodeStats, depth: int, config: TreeConfig
) -> bool:
    """Leaf conditions (1)-(3) from the paper's Section II."""
    if stats.is_pure:
        return True
    if stats.n_rows <= config.tau_leaf:
        return True
    if config.max_depth is not None and depth >= config.max_depth:
        return True
    return False


def split_is_useful(
    split: CandidateSplit | None,
    parent_impurity: float,
    config: TreeConfig,
) -> bool:
    """Whether a candidate split justifies creating children.

    Exact trees demand a strict impurity decrease; extra-trees split whenever
    a valid random condition exists (both children non-empty).
    """
    if split is None:
        return False
    if split.n_left == 0 or split.n_right == 0:
        return False
    if config.tree_kind is TreeKind.EXTRA:
        return True
    return split.score < parent_impurity - config.min_impurity_decrease


def parent_impurity_of(
    y: np.ndarray, criterion, n_classes: int, counts: np.ndarray | None = None
) -> float:
    """Impurity of a node's own label distribution.

    ``counts`` optionally supplies the class-count vector that
    :func:`node_statistics` already computed for the same rows, skipping
    a second O(rows + classes) counting pass per node.
    """
    if criterion.is_classification:
        if counts is None:
            counts = np.bincount(y.astype(np.int64), minlength=n_classes)
        return classification_impurity(counts.astype(np.float64), criterion)
    return variance(float(y.size), float(y.sum()), float((y * y).sum()))


def build_subtree(
    table: DataTable,
    config: TreeConfig,
    row_ids: np.ndarray,
    candidate_columns: tuple[int, ...] | None = None,
    root_path: int = 1,
    thresholds: dict[int, np.ndarray] | None = None,
) -> TreeNode:
    """Build the subtree ``Delta_x`` rooted at heap path ``root_path``.

    Iterative (explicit stack) so unbounded-depth trees are safe.  This is
    exactly the computation a subtree-task performs on its key worker.
    ``thresholds`` (hist mode) restricts numeric split search to the
    global equi-depth candidate cuts — see :func:`find_best_split`.
    """
    if candidate_columns is None:
        candidate_columns = sample_candidate_columns(config, table.n_columns)
    criterion = config.resolved_criterion(
        table.problem is ProblemKind.CLASSIFICATION
    )

    root_holder: list[TreeNode] = []
    # Stack entries: (row_ids, path, attach) where attach places the built
    # node into its parent (or the root holder).
    stack: list[tuple[np.ndarray, int, tuple[TreeNode, str] | None]] = [
        (np.asarray(row_ids, dtype=np.int64), root_path, None)
    ]
    while stack:
        ids, path, attach = stack.pop()
        y = table.target[ids]
        stats = node_statistics(y, table.problem, table.n_classes)
        node = TreeNode(
            node_id=path,
            depth=path_depth(path),
            n_rows=stats.n_rows,
            prediction=stats.prediction,
        )
        if attach is None:
            root_holder.append(node)
        else:
            parent, side = attach
            setattr(parent, side, node)

        if should_stop(stats, node.depth, config):
            continue
        split = find_best_split(
            table, ids, candidate_columns, config, path, thresholds
        )
        parent_imp = parent_impurity_of(
            y, criterion, table.n_classes, counts=stats.counts
        )
        if not split_is_useful(split, parent_imp, config):
            continue
        assert split is not None
        node.split = split
        go_left = route_training_rows(table.column(split.column)[ids], split)
        stack.append((ids[go_left], 2 * path, (node, "left")))
        stack.append((ids[~go_left], 2 * path + 1, (node, "right")))
    return root_holder[0]


def train_tree(
    table: DataTable,
    config: TreeConfig,
    tree_id: int = 0,
    row_ids: np.ndarray | None = None,
) -> DecisionTree:
    """Train one complete tree serially — the conventional exact algorithm.

    ``row_ids`` restricts training to a row subset (bootstrap bagging or a
    pre-split training fold); by default all rows are used, as in the paper.

    Dispatches on ``config.kernel`` (``"vectorized"`` by default), so the
    serial path, the deep-forest local backend and the fairness benchmarks
    all run the level-synchronous kernel; the result is bit-identical
    either way.

    In hist mode (``config.split_mode="hist"``) the equi-depth thresholds
    are computed here from the **full** table — even when ``row_ids``
    restricts training to a subset — matching the distributed engine,
    whose threshold book is built once per run before any task runs.
    """
    # Imported here, not at module level: kernel.py builds on this module.
    from .histogram import column_thresholds, hist_active
    from .kernel import build_subtree_auto

    if row_ids is None:
        row_ids = np.arange(table.n_rows, dtype=np.int64)
    thresholds = (
        column_thresholds(table, config.max_bins)
        if hist_active(config)
        else None
    )
    root = build_subtree_auto(table, config, row_ids, thresholds=thresholds)
    return DecisionTree(
        root=root,
        problem=table.problem,
        n_classes=table.n_classes,
        tree_id=tree_id,
    )
