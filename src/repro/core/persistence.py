"""Model persistence: flush trained models to the (simulated) DFS.

The paper's master writes each tree to disk as soon as its construction
completes ("Model Output Files" in Fig. 2), so finished trees release
memory while other trees are still training.  This module provides that
output format — one JSON document per tree under a model directory, plus a
manifest — over both the simulated DFS and the local filesystem, and the
matching loader.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable

from ..ensemble.forest import ForestModel
from ..hdfs.filesystem import SimHdfs
from .tree import DecisionTree

#: Manifest file name inside a model directory.
MANIFEST = "_model.json"


def _manifest_of(trees: list[DecisionTree], name: str) -> dict:
    return {
        "name": name,
        "n_trees": len(trees),
        "problem": trees[0].problem.value,
        "n_classes": trees[0].n_classes,
        "trees": [f"tree_{i}.json" for i in range(len(trees))],
    }


def save_model_hdfs(
    fs: SimHdfs, base_path: str, name: str, trees: list[DecisionTree]
) -> None:
    """Write a model (one or many trees) to the simulated DFS."""
    if not trees:
        raise ValueError("cannot save an empty model")
    base = base_path.rstrip("/")
    with fs.create(f"{base}/{MANIFEST}", overwrite=True) as writer:
        writer.write(json.dumps(_manifest_of(trees, name)).encode())
    for i, tree in enumerate(trees):
        with fs.create(f"{base}/tree_{i}.json", overwrite=True) as writer:
            writer.write(json.dumps(tree.to_dict()).encode())


def load_model_hdfs(fs: SimHdfs, base_path: str) -> ForestModel:
    """Load a model saved by :func:`save_model_hdfs`."""
    base = base_path.rstrip("/")
    with fs.open(f"{base}/{MANIFEST}") as reader:
        manifest = json.loads(reader.read().decode())
    trees = []
    for filename in manifest["trees"]:
        with fs.open(f"{base}/{filename}") as reader:
            trees.append(DecisionTree.from_dict(json.loads(reader.read().decode())))
    return ForestModel(trees)


def save_model_local(
    directory: str | Path, name: str, trees: list[DecisionTree]
) -> None:
    """Write a model to a local directory (same layout as the DFS form)."""
    if not trees:
        raise ValueError("cannot save an empty model")
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    (path / MANIFEST).write_text(json.dumps(_manifest_of(trees, name)))
    for i, tree in enumerate(trees):
        (path / f"tree_{i}.json").write_text(json.dumps(tree.to_dict()))


def load_model_local(directory: str | Path) -> ForestModel:
    """Load a model saved by :func:`save_model_local`."""
    path = Path(directory)
    manifest = json.loads((path / MANIFEST).read_text())
    trees = [
        DecisionTree.from_dict(json.loads((path / filename).read_text()))
        for filename in manifest["trees"]
    ]
    return ForestModel(trees)


# ----------------------------------------------------------------------
# content fingerprints (serving registry keys)
# ----------------------------------------------------------------------
# The serving registry caches compiled models under a content hash of the
# *persisted* form.  The manifest is excluded — it carries the job-chosen
# model name, which must not defeat caching when two jobs publish the same
# trees — so the key covers exactly the per-tree JSON payloads, in manifest
# order.  Saving and reloading a model round-trips its JSON byte-for-byte
# (plain dicts of ints/floats in fixed insertion order), so the fingerprint
# of an in-memory model equals the fingerprint of its files.

def fingerprint_payloads(payloads: Iterable[bytes]) -> str:
    """SHA-256 over length-prefixed payloads (order-sensitive)."""
    digest = hashlib.sha256()
    for payload in payloads:
        digest.update(len(payload).to_bytes(8, "big"))
        digest.update(payload)
    return digest.hexdigest()


def tree_payload(tree: DecisionTree) -> bytes:
    """The exact bytes :func:`save_model_local` / ``_hdfs`` write for a tree."""
    return json.dumps(tree.to_dict()).encode()


def fingerprint_trees(trees: list[DecisionTree]) -> str:
    """Content fingerprint of an in-memory model (persisted-form hash)."""
    return fingerprint_payloads(tree_payload(t) for t in trees)


def model_fingerprint_local(directory: str | Path) -> str:
    """Fingerprint a locally saved model without parsing its trees."""
    path = Path(directory)
    manifest = json.loads((path / MANIFEST).read_text())
    return fingerprint_payloads(
        (path / filename).read_bytes() for filename in manifest["trees"]
    )


def model_fingerprint_hdfs(fs: SimHdfs, base_path: str) -> str:
    """Fingerprint a DFS-saved model without parsing its trees."""
    base = base_path.rstrip("/")
    with fs.open(f"{base}/{MANIFEST}") as reader:
        manifest = json.loads(reader.read().decode())

    def payloads() -> Iterable[bytes]:
        for filename in manifest["trees"]:
            with fs.open(f"{base}/{filename}") as reader:
                yield reader.read()

    return fingerprint_payloads(payloads())
