"""Master-side scheduling structures: ``B_plan``, ``T_prog``, tree pool.

Three cooperating pieces of the paper's Section III:

* :class:`PlanDeque` — the hybrid BFS/DFS plan buffer.  New tasks with
  ``|D_x| <= tau_dfs`` are pushed at the *head* (depth-first: schedules
  CPU-bound subtree work early); larger tasks are appended at the *tail*
  (breadth-first: expands upper levels to generate parallelism).
* :class:`ProgressTable` — the paper's ``T_prog``: a per-tree pending-task
  counter.  A column-task that splits nets +1 (consumes one task, creates
  two); a subtree-task or leaf nets -1; zero means the tree is complete and
  can be flushed.
* :class:`TreePool` — admission control: at most ``n_pool`` trees under
  construction, with stage dependencies (boosting layers) gating
  eligibility.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from .jobs import TrainingJob, TreeRequest
from .tasks import PlanEntry


class PlanDeque:
    """The plan buffer ``B_plan`` with the paper's head/tail insertion rule.

    ``policy`` selects the insertion rule: ``"hybrid"`` (the paper's —
    small nodes to the head, large to the tail), ``"fifo"`` (pure BFS) or
    ``"lifo"`` (pure DFS); the alternatives exist for the ablation bench.
    """

    def __init__(self, tau_dfs: int, policy: str = "hybrid") -> None:
        if policy not in ("hybrid", "fifo", "lifo"):
            raise ValueError(f"unknown policy {policy!r}")
        self._deque: deque[PlanEntry] = deque()
        self.tau_dfs = tau_dfs
        self.policy = policy
        self.head_insertions = 0
        self.tail_insertions = 0
        self.peak_size = 0

    def insert(self, entry: PlanEntry) -> None:
        """Insert by the configured rule (hybrid: small nodes to the head
        for DFS, large to the tail for BFS)."""
        if self.policy == "lifo" or (
            self.policy == "hybrid" and entry.n_rows <= self.tau_dfs
        ):
            self._deque.appendleft(entry)
            self.head_insertions += 1
        else:
            self._deque.append(entry)
            self.tail_insertions += 1
        self.peak_size = max(self.peak_size, len(self._deque))

    def push_head(self, entry: PlanEntry) -> None:
        """Force head insertion (fault recovery re-queues tasks ASAP)."""
        self._deque.appendleft(entry)
        self.peak_size = max(self.peak_size, len(self._deque))

    def pop(self) -> PlanEntry | None:
        """Fetch the next plan for assignment (from the head)."""
        if not self._deque:
            return None
        return self._deque.popleft()

    def entries(self) -> tuple[PlanEntry, ...]:
        """Snapshot of the queued plans, head first (fault-recovery scan)."""
        return tuple(self._deque)

    def remove_tree(self, tree_uid: int) -> int:
        """Drop every queued plan of a tree (fault recovery); returns count."""
        kept = [e for e in self._deque if e.tree_uid != tree_uid]
        removed = len(self._deque) - len(kept)
        self._deque = deque(kept)
        return removed

    def __len__(self) -> int:
        return len(self._deque)

    def __bool__(self) -> bool:
        return bool(self._deque)


class ProgressTable:
    """``T_prog``: pending-task counters per tree under construction."""

    def __init__(self) -> None:
        self._counts: dict[int, int] = {}

    def start_tree(self, tree_uid: int, initial_tasks: int = 1) -> None:
        """Register a newly admitted tree."""
        if tree_uid in self._counts:
            raise ValueError(f"tree {tree_uid} already tracked")
        self._counts[tree_uid] = initial_tasks

    def add(self, tree_uid: int, delta: int) -> bool:
        """Apply a net task-count change; returns True when the tree is done."""
        if tree_uid not in self._counts:
            raise KeyError(f"tree {tree_uid} not tracked")
        self._counts[tree_uid] += delta
        remaining = self._counts[tree_uid]
        if remaining < 0:
            raise RuntimeError(f"tree {tree_uid} progress went negative")
        if remaining == 0:
            del self._counts[tree_uid]
            return True
        return False

    def drop(self, tree_uid: int) -> None:
        """Forget a tree (fault recovery revocation)."""
        self._counts.pop(tree_uid, None)

    def pending(self, tree_uid: int) -> int:
        """Outstanding task count of a tree (0 if untracked)."""
        return self._counts.get(tree_uid, 0)

    def active_trees(self) -> int:
        """Number of trees currently under construction."""
        return len(self._counts)


@dataclass
class TreeTicket:
    """One tree awaiting or undergoing training."""

    job_index: int
    stage_index: int
    tree_index: int  # index within the whole job (across stages)
    request: TreeRequest


@dataclass
class _StageState:
    remaining: int


@dataclass
class TreePool:
    """Admission control with inter-stage dependencies.

    ``eligible()`` yields tickets whose stage prerequisites are satisfied, in
    submission order; the master admits from it while fewer than ``n_pool``
    trees are active.
    """

    jobs: list[TrainingJob]
    n_pool: int
    #: Trees already trained in a previous master generation (secondary-
    #: master failover): ``(job_index, tree_index)`` pairs to skip.
    already_completed: frozenset[tuple[int, int]] = frozenset()
    _eligible: deque[TreeTicket] = field(default_factory=deque)
    _stage_state: dict[tuple[int, int], _StageState] = field(default_factory=dict)
    _active: int = 0
    _completed: int = 0
    _total: int = 0

    def __post_init__(self) -> None:
        for j, job in enumerate(self.jobs):
            self._total += job.n_trees
            for s, stage in enumerate(job.stages):
                self._stage_state[(j, s)] = _StageState(len(stage.trees))
        for j, job in enumerate(self.jobs):
            self._enqueue_stage(j, 0)

    @property
    def total_trees(self) -> int:
        """Total trees across all jobs."""
        return self._total

    @property
    def completed_trees(self) -> int:
        """Trees fully constructed so far."""
        return self._completed

    @property
    def active_trees(self) -> int:
        """Trees currently admitted and incomplete."""
        return self._active

    def all_done(self) -> bool:
        """Whether every tree of every job has been trained."""
        return self._completed == self._total

    def admit(self) -> TreeTicket | None:
        """Next eligible tree if the pool has capacity, else ``None``."""
        if self._active >= self.n_pool or not self._eligible:
            return None
        self._active += 1
        return self._eligible.popleft()

    def tree_completed(self, ticket: TreeTicket) -> None:
        """Mark a tree done; unlock the next stage when its last tree lands."""
        self._active -= 1
        self._completed += 1
        state = self._stage_state[(ticket.job_index, ticket.stage_index)]
        state.remaining -= 1
        if state.remaining < 0:
            raise RuntimeError("stage completed more trees than it has")
        if state.remaining == 0:
            self._unlock_next_stage(ticket.job_index, ticket.stage_index + 1)

    def tree_restarted(self) -> None:
        """A tree was revoked and re-queued; it stays active (no pool slot
        change) — called for bookkeeping symmetry in fault recovery."""

    def _unlock_next_stage(self, job_index: int, stage_index: int) -> None:
        if stage_index >= len(self.jobs[job_index].stages):
            return
        self._enqueue_stage(job_index, stage_index)

    def _enqueue_stage(self, job_index: int, stage_index: int) -> None:
        """Queue a stage's trees, skipping any already completed
        (secondary-master failover); cascades when a stage was fully done."""
        job = self.jobs[job_index]
        stage = job.stages[stage_index]
        tree_index = sum(len(job.stages[s].trees) for s in range(stage_index))
        state = self._stage_state[(job_index, stage_index)]
        for request in stage.trees:
            if (job_index, tree_index) in self.already_completed:
                self._completed += 1
                state.remaining -= 1
            else:
                self._eligible.append(
                    TreeTicket(job_index, stage_index, tree_index, request)
                )
            tree_index += 1
        if state.remaining == 0:
            self._unlock_next_stage(job_index, stage_index + 1)
