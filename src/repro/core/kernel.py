"""Level-synchronous (breadth-first / depth-next) subtree training kernel.

The scalar builder in :mod:`repro.core.builder` grows one node per Python
iteration, fancy-indexing ``y`` and every candidate column per *node*.
For a subtree-task that is the CPU-bound tail of every backend: thousands
of small NumPy calls whose fixed per-call overhead dominates the actual
arithmetic.  This module processes the whole frontier of a subtree at
once instead (the breadth-first / depth-next hybrid of the RF-training
literature, see PAPERS.md):

* one gather of ``y`` and of each candidate column per *level*, with rows
  bucketed to frontier nodes through a node-contiguous partition array
  (segment ids derived from the heap-path frontier order);
* per-node label statistics for classification in a single ``bincount``
  over ``segment * n_classes + y``;
* the numeric best-split scan for classification batched across all
  frontier nodes: one stable ``lexsort`` by ``(segment, value)``, global
  integer cumulative class counts minus segment offsets, and one
  vectorized impurity pass over every candidate boundary of every node;
* when a frontier node's row count drops to the small-node cutoff, that
  node switches depth-next — the scalar :func:`~repro.core.builder.
  build_subtree` finishes its subtree, where batching overhead would
  exceed the work.

**Exactness.**  The kernel is bit-identical to the scalar builder — the
repo's ground-truth invariant — by construction:

* node ids are the same heap paths and all per-node RNG draws key off
  ``(seed, path)`` / ``(seed, path, column)``, so extra-trees reproduce
  the scalar draws regardless of traversal order;
* integer statistics (class counts) are exact under "global cumsum minus
  segment offset", so the batched classification scan reproduces the
  per-node cumulative counts digit for digit, and all downstream impurity
  math runs through the very same row-vectorized functions
  (:func:`~repro.core.impurity.classification_impurity_rows`,
  :func:`~repro.core.impurity.weighted_children_impurity`) the scalar
  scan uses, elementwise;
* ``np.lexsort((values, segment))`` is stable, so within a segment it is
  the same permutation as the scalar per-node stable argsort;
* floating-point accumulations whose result depends on summation order —
  regression cumulative sums, node means, categorical subset scans — are
  *not* re-associated: those cases call the existing per-column split
  functions in :mod:`repro.core.splits` on the node-contiguous slices of
  the level gather, which see exactly the arrays the scalar path sees;
* cross-column tie-breaking keeps the scalar rule (strictly smaller
  ``(score, column)`` wins, i.e. ties go to the lower column index), and
  within a column the first boundary achieving the minimum score wins,
  matching ``np.argmin``.

The parity sweep in ``tests/test_builder.py`` pins all of this.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from ..data.schema import ColumnKind, ProblemKind
from ..data.table import DataTable
from .builder import (
    NodeStats,
    build_subtree,
    extra_tree_column_order,
    extra_tree_split_rng,
    parent_impurity_of,
    path_depth,
    sample_candidate_columns,
    should_stop,
    split_is_useful,
)
from .config import TREE_KERNELS, TreeConfig, TreeKind
from .histogram import bin_indices
from .impurity import (
    Impurity,
    classification_impurity_rows,
    variance_rows,
    weighted_children_impurity,
)
from .splits import (
    CandidateSplit,
    best_split_for_column,
    random_split_for_column,
    route_training_rows,
)
from .tree import TreeNode

#: Environment override for the kernel choice — mirrors the runtime's
#: other env hooks (``REPRO_MP_KILL`` etc.) so CI legs can force a kernel
#: without touching configs.  Checked at dispatch time.
ENV_KERNEL = "REPRO_KERNEL"

#: Frontier nodes with at most this many rows are finished depth-next by
#: the scalar builder.  Any value is exact — the cutoff only moves work
#: between two bit-identical code paths (the parity sweep pins several
#: values) — so this is purely a performance knob.  On this NumPy stack
#: the measured crossover is below a single row: fixed per-call overhead
#: dominates scalar node construction at every node size, so the default
#: is 0 (pure breadth-first) and the depth-next switch is an escape
#: hatch for stacks where small-slice batching is comparatively slower.
DEPTH_NEXT_CUTOFF = 0

#: Empty threshold set: a degenerate hist-mode column offers no candidates.
_NO_THRESHOLDS = np.empty(0)


@dataclass
class KernelCounters:
    """Per-worker training-kernel observability counters.

    ``build_s`` is total wall-clock inside subtree builds, ``gather_s``
    the slice of it spent fancy-indexing ``y``/column values out of the
    table (vectorized kernel only; the scalar builder's gathers are
    interleaved per node and not separable), ``nodes_built`` the tree
    nodes constructed, and ``kernel`` which implementation ran last.
    """

    kernel: str = ""
    build_s: float = 0.0
    gather_s: float = 0.0
    nodes_built: int = 0


def resolve_kernel(config: TreeConfig) -> str:
    """Effective kernel for a tree config (env override wins)."""
    env = os.environ.get(ENV_KERNEL, "").strip()
    if env:
        if env not in TREE_KERNELS:
            raise ValueError(
                f"{ENV_KERNEL}={env!r}: expected one of {TREE_KERNELS}"
            )
        return env
    return config.kernel


def build_subtree_auto(
    table: DataTable,
    config: TreeConfig,
    row_ids: np.ndarray,
    candidate_columns: tuple[int, ...] | None = None,
    root_path: int = 1,
    counters: KernelCounters | None = None,
    thresholds: dict[int, np.ndarray] | None = None,
) -> TreeNode:
    """Build a subtree with the kernel ``config.kernel`` selects.

    The single dispatch point for every subtree construction: the worker
    actors of all runtime backends, the serial :func:`~repro.core.
    builder.train_tree` path, and through it the deep-forest local
    backend.  ``counters``, when given, accumulates build/gather seconds.
    ``thresholds`` (hist mode) restricts numeric split search to the
    global equi-depth candidate cuts on both kernels.
    """
    kernel = resolve_kernel(config)
    start = time.perf_counter()
    if kernel == "vectorized":
        root = build_subtree_vectorized(
            table,
            config,
            row_ids,
            candidate_columns=candidate_columns,
            root_path=root_path,
            counters=counters,
            thresholds=thresholds,
        )
    else:
        root = build_subtree(
            table,
            config,
            row_ids,
            candidate_columns=candidate_columns,
            root_path=root_path,
            thresholds=thresholds,
        )
    if counters is not None:
        counters.kernel = kernel
        counters.build_s += time.perf_counter() - start
    return root


class _BatchedNumericEntry:
    """Batched best-split results of one numeric column over a level.

    Holds, for every active frontier segment, the winning boundary of
    the batched scan (or -1) plus the per-boundary arrays needed to
    materialize a :class:`CandidateSplit` for the segments that win the
    cross-column comparison — so only one split object is built per node
    instead of one per (node, column).
    """

    __slots__ = (
        "column",
        "seg_scores",
        "best_pos",
        "n_left",
        "n_right",
        "n_missing",
        "sv",
        "bidx",
        "scores",
    )

    def __init__(self, column: int, n_segments: int) -> None:
        self.column = column
        self.seg_scores = np.full(n_segments, np.inf)
        self.best_pos = np.full(n_segments, -1, dtype=np.int64)
        self.n_left: np.ndarray | None = None
        self.n_right: np.ndarray | None = None
        self.n_missing: np.ndarray | None = None
        self.sv: np.ndarray | None = None
        self.bidx: np.ndarray | None = None
        self.scores: np.ndarray | None = None

    def key_for(self, segment: int) -> tuple[float, int] | None:
        if self.best_pos[segment] < 0:
            return None
        return (float(self.seg_scores[segment]), self.column)

    def split_for(self, segment: int) -> CandidateSplit | None:
        b = int(self.best_pos[segment])
        if b < 0:
            return None
        nl = int(self.n_left[b])
        nr = int(self.n_right[b])
        nm = int(self.n_missing[segment])
        # Identical construction to best_numeric_split: missing rows join
        # the larger child, threshold is the left boundary value.
        return CandidateSplit(
            column=self.column,
            kind=ColumnKind.NUMERIC,
            score=float(self.scores[b]),
            n_left=nl + (nm if nl >= nr else 0),
            n_right=nr + (0 if nl >= nr else nm),
            threshold=float(self.sv[self.bidx[b]]),
            n_missing=nm,
            missing_to_left=nl >= nr,
        )


class _ObjectEntry:
    """Per-segment split objects of one column (non-batched cases)."""

    __slots__ = ("column", "splits")

    def __init__(self, column: int, splits: list[CandidateSplit | None]):
        self.column = column
        self.splits = splits

    def key_for(self, segment: int) -> tuple[float, int] | None:
        split = self.splits[segment]
        return None if split is None else split.sort_key()

    def split_for(self, segment: int) -> CandidateSplit | None:
        return self.splits[segment]


def _first_per_group(groups: np.ndarray) -> np.ndarray:
    """Indices of the first element of each run in a sorted group array."""
    if groups.size == 0:
        return np.empty(0, dtype=np.int64)
    return np.nonzero(np.concatenate(([True], groups[1:] != groups[:-1])))[0]


def _batched_numeric_classification(
    column: int,
    values: np.ndarray,
    y_codes: np.ndarray,
    seg: np.ndarray,
    n_segments: int,
    sizes: np.ndarray,
    seg_counts: np.ndarray | None,
    criterion: Impurity,
    n_classes: int,
) -> _BatchedNumericEntry:
    """Case 1 (ordinal attribute, classification) over a whole frontier.

    The batched twin of :func:`~repro.core.splits.best_numeric_split`:
    every intermediate quantity below reproduces the scalar scan's value
    for each segment exactly (see the module docstring for the argument),
    with one sort and one impurity pass for the entire level.

    ``sizes`` is the per-segment row count and ``seg_counts`` the
    per-segment integer class counts the level statistics pass already
    produced (``None`` when the caller has no class counts, e.g. a
    classification criterion forced onto a regression target) — reusing
    them skips a full-level bincount per column.
    """
    entry = _BatchedNumericEntry(column, n_segments)
    present = ~np.isnan(values)
    miss_counts: np.ndarray | None = None
    if present.all():
        # Fast path for NaN-free columns: no row compaction needed.
        entry.n_missing = np.zeros(n_segments, dtype=np.int64)
        vp = values
        sp = seg
        yc = y_codes
        n_present = sizes
    else:
        absent = ~present
        seg_absent = seg[absent]
        entry.n_missing = np.bincount(seg_absent, minlength=n_segments)
        vp = values[present]
        sp = seg[present]
        yc = y_codes[present]
        n_present = sizes - entry.n_missing
        miss_counts = np.bincount(
            seg_absent * n_classes + y_codes[absent],
            minlength=n_segments * n_classes,
        ).reshape(n_segments, n_classes)
    if vp.size == 0:
        return entry
    pres_starts = np.zeros(n_segments + 1, dtype=np.int64)
    np.cumsum(n_present, out=pres_starts[1:])

    # Stable sort by (segment, value).  ``vp`` is already grouped by
    # segment (the level gather is node-contiguous), so sorting each
    # segment's slice with the scalar's own stable argsort gives the
    # identical permutation; ``lexsort`` computes the same order in one
    # call, which wins when a level has many tiny segments (per-slice
    # call overhead) and loses when it has a few huge ones (it re-sorts
    # the already-grouped segment key).
    if n_segments * 2048 <= vp.size:
        order = np.empty(vp.size, dtype=np.int64)
        for s in range(n_segments):
            lo, hi = int(pres_starts[s]), int(pres_starts[s + 1])
            order[lo:hi] = lo + np.argsort(vp[lo:hi], kind="stable")
    else:
        order = np.lexsort((vp, sp))
    sv = vp[order]
    ss = sp  # per-segment sorting never moves rows across segments
    syc = yc[order]

    # A boundary needs two present rows of the same segment, so segments
    # the scalar scan rejects (n < 2, or no distinct values) simply
    # contribute no boundaries here.
    bmask = (sv[:-1] < sv[1:]) & (ss[:-1] == ss[1:])
    bidx = np.nonzero(bmask)[0]
    if bidx.size == 0:
        return entry
    bseg = ss[bidx]
    seg_start = pres_starts[:-1]
    bstart = seg_start[bseg]
    n_left = bidx + 1 - bstart
    n_right = n_present[bseg] - n_left

    # Per-class cumulative counts: integer global cumsum minus the count
    # at the segment start — exact, hence identical to per-node cumsums.
    # The last class is the exact integer complement of the others (the
    # scalar scan's own cumsums are integers too, so equality is literal),
    # which saves one full cumsum pass — half the passes for binary jobs.
    left_counts = np.empty((bidx.size, n_classes), dtype=np.float64)
    cumz = np.empty(vp.size + 1, dtype=np.int64)
    cumz[0] = 0
    if n_classes == 2:
        np.cumsum(syc, out=cumz[1:])
        ones = cumz[bidx + 1] - cumz[bstart]
        left_counts[:, 1] = ones
        left_counts[:, 0] = n_left - ones
    else:
        acc = np.zeros(bidx.size, dtype=np.int64)
        for cls in range(n_classes - 1):
            np.cumsum(syc == cls, out=cumz[1:])
            c = cumz[bidx + 1] - cumz[bstart]
            left_counts[:, cls] = c
            acc += c
        left_counts[:, n_classes - 1] = n_left - acc
    if seg_counts is None:
        total_counts = np.bincount(
            sp * n_classes + yc,
            minlength=n_segments * n_classes,
        ).reshape(n_segments, n_classes)
    elif miss_counts is None:
        total_counts = seg_counts
    else:
        total_counts = seg_counts - miss_counts
    right_counts = total_counts[bseg] - left_counts

    left_imp = classification_impurity_rows(left_counts, criterion)
    right_imp = classification_impurity_rows(right_counts, criterion)
    scores = weighted_children_impurity(left_imp, n_left, right_imp, n_right)

    # First minimum per segment == the scalar np.argmin (first-min) rule.
    first_b = _first_per_group(bseg)
    counts_b = np.diff(np.append(first_b, bseg.size))
    seg_min = np.minimum.reduceat(scores, first_b)
    hit = np.nonzero(scores == np.repeat(seg_min, counts_b))[0]
    hseg = bseg[hit]
    hfirst = _first_per_group(hseg)
    winners = hit[hfirst]
    entry.best_pos[hseg[hfirst]] = winners
    entry.seg_scores[hseg[hfirst]] = scores[winners]
    entry.n_left = n_left
    entry.n_right = n_right
    entry.sv = sv
    entry.bidx = bidx
    entry.scores = scores
    return entry


def _batched_numeric_regression(
    column: int,
    values: np.ndarray,
    y: np.ndarray,
    seg: np.ndarray,
    n_segments: int,
    sizes: np.ndarray,
) -> _BatchedNumericEntry:
    """Case 1 (ordinal attribute, regression) over a whole frontier.

    Floating-point cumulative sums are order-sensitive, so they are *not*
    globally accumulated: each segment's slice of the sorted level array
    gets its own ``np.cumsum``, which performs the exact same additions in
    the exact same order as the scalar per-node scan — the per-call
    overhead that remains (two cumsums per segment) is a fraction of the
    full scalar :func:`~repro.core.splits.best_numeric_split` chain, and
    the sort, boundary detection, variance scoring and argmin still run
    once for the entire level.
    """
    entry = _BatchedNumericEntry(column, n_segments)
    present = ~np.isnan(values)
    if present.all():
        entry.n_missing = np.zeros(n_segments, dtype=np.int64)
        vp = values
        sp = seg
        yp = y
        n_present = sizes
    else:
        entry.n_missing = np.bincount(seg[~present], minlength=n_segments)
        vp = values[present]
        sp = seg[present]
        yp = y[present]
        n_present = sizes - entry.n_missing
    if vp.size == 0:
        return entry
    pres_starts = np.zeros(n_segments + 1, dtype=np.int64)
    np.cumsum(n_present, out=pres_starts[1:])

    if n_segments * 2048 <= vp.size:
        order = np.empty(vp.size, dtype=np.int64)
        for s in range(n_segments):
            lo, hi = int(pres_starts[s]), int(pres_starts[s + 1])
            order[lo:hi] = lo + np.argsort(vp[lo:hi], kind="stable")
    else:
        order = np.lexsort((vp, sp))
    sv = vp[order]
    ss = sp  # per-segment sorting never moves rows across segments
    sy = yp[order]

    bmask = (sv[:-1] < sv[1:]) & (ss[:-1] == ss[1:])
    bidx = np.nonzero(bmask)[0]
    if bidx.size == 0:
        return entry
    bseg = ss[bidx]
    seg_start = pres_starts[:-1]
    bstart = seg_start[bseg]
    n_left = bidx + 1 - bstart
    n_right = n_present[bseg] - n_left

    # Per-segment cumulative sums — each slice cumsum adds the same
    # numbers in the same order as the scalar scan, hence identical
    # floats; only the boundary scoring below is batched.
    sy2 = sy * sy
    cum_y = np.empty_like(sy)
    cum_y2 = np.empty_like(sy)
    tot_y = np.zeros(n_segments)
    tot_y2 = np.zeros(n_segments)
    for s in range(n_segments):
        lo, hi = int(pres_starts[s]), int(pres_starts[s + 1])
        if hi > lo:
            np.cumsum(sy[lo:hi], out=cum_y[lo:hi])
            np.cumsum(sy2[lo:hi], out=cum_y2[lo:hi])
            tot_y[s] = cum_y[hi - 1]
            tot_y2[s] = cum_y2[hi - 1]
    l_sum, l_sq = cum_y[bidx], cum_y2[bidx]
    r_sum, r_sq = tot_y[bseg] - l_sum, tot_y2[bseg] - l_sq
    left_imp = variance_rows(n_left.astype(float), l_sum, l_sq)
    right_imp = variance_rows(n_right.astype(float), r_sum, r_sq)
    scores = weighted_children_impurity(left_imp, n_left, right_imp, n_right)

    first_b = _first_per_group(bseg)
    counts_b = np.diff(np.append(first_b, bseg.size))
    seg_min = np.minimum.reduceat(scores, first_b)
    hit = np.nonzero(scores == np.repeat(seg_min, counts_b))[0]
    hseg = bseg[hit]
    hfirst = _first_per_group(hseg)
    winners = hit[hfirst]
    entry.best_pos[hseg[hfirst]] = winners
    entry.seg_scores[hseg[hfirst]] = scores[winners]
    entry.n_left = n_left
    entry.n_right = n_right
    entry.sv = sv
    entry.bidx = bidx
    entry.scores = scores
    return entry


class _BinnedNumericEntry:
    """Batched histogram-mode results of one numeric column over a level.

    The hist-mode sibling of :class:`_BatchedNumericEntry`: instead of a
    winning sort boundary it records the winning prefix-cut index into the
    column's global equi-depth thresholds, plus the per-(segment, cut)
    child-count matrices needed to materialize a :class:`CandidateSplit`
    identical to the scalar :func:`~repro.core.histogram.score_histogram`.
    """

    __slots__ = (
        "column",
        "thresholds",
        "seg_scores",
        "best_cut",
        "n_left",
        "n_right",
        "n_missing",
    )

    def __init__(
        self, column: int, thresholds: np.ndarray, n_segments: int
    ) -> None:
        self.column = column
        self.thresholds = thresholds
        self.seg_scores = np.full(n_segments, np.inf)
        self.best_cut = np.full(n_segments, -1, dtype=np.int64)
        self.n_left: np.ndarray | None = None
        self.n_right: np.ndarray | None = None
        self.n_missing = np.zeros(n_segments, dtype=np.int64)

    def key_for(self, segment: int) -> tuple[float, int] | None:
        if self.best_cut[segment] < 0:
            return None
        return (float(self.seg_scores[segment]), self.column)

    def split_for(self, segment: int) -> CandidateSplit | None:
        b = int(self.best_cut[segment])
        if b < 0:
            return None
        nl = int(self.n_left[segment, b])
        nr = int(self.n_right[segment, b])
        nm = int(self.n_missing[segment])
        # Identical construction to score_histogram: missing rows join the
        # larger child, threshold is the winning bin's upper edge.
        return CandidateSplit(
            column=self.column,
            kind=ColumnKind.NUMERIC,
            score=float(self.seg_scores[segment]),
            n_left=nl + (nm if nl >= nr else 0),
            n_right=nr + (0 if nl >= nr else nm),
            threshold=float(self.thresholds[b]),
            n_missing=nm,
            missing_to_left=nl >= nr,
        )


def _batched_binned_numeric(
    column: int,
    values: np.ndarray,
    y_or_codes: np.ndarray,
    seg: np.ndarray,
    n_segments: int,
    thresholds: np.ndarray,
    criterion: Impurity,
    n_classes: int,
) -> _BinnedNumericEntry:
    """Histogram split search (ordinal attribute) over a whole frontier.

    The batched twin of :func:`~repro.core.histogram.score_histogram`:
    one composite ``bincount`` builds every segment's per-bin statistics
    (statistics stay node-local — each segment's bins count only its own
    rows, including its own missing-row total), then the axis-wise
    cumulative sums and impurity evaluations perform the same additions
    in the same order per segment lane as the scalar per-node scan, so
    every score and winning cut is bit-identical.  Segments with no valid
    cut (fewer than two present rows, constant within a bin span, or an
    empty threshold set) end with ``best_cut == -1``, exactly where the
    scalar path returns ``None``.
    """
    entry = _BinnedNumericEntry(column, thresholds, n_segments)
    if thresholds.size == 0:
        return entry
    codes = bin_indices(values, thresholds)
    present = codes >= 0
    if present.all():
        sp = seg
        yp = y_or_codes
    else:
        entry.n_missing = np.bincount(seg[~present], minlength=n_segments)
        codes = codes[present]
        sp = seg[present]
        yp = y_or_codes[present]
    n_bins = thresholds.size + 1
    cuts = n_bins - 1
    if criterion.is_classification:
        stats = np.bincount(
            (sp * n_bins + codes) * n_classes + yp,
            minlength=n_segments * n_bins * n_classes,
        ).reshape(n_segments, n_bins, n_classes).astype(np.float64)
        cum = np.cumsum(stats, axis=1)[:, :-1, :]
        total = stats.sum(axis=1)
        n_left = cum.sum(axis=2)
        n_right = total.sum(axis=1)[:, None] - n_left
        left_imp = classification_impurity_rows(
            cum.reshape(-1, n_classes), criterion
        ).reshape(n_segments, cuts)
        right_imp = classification_impurity_rows(
            (total[:, None, :] - cum).reshape(-1, n_classes), criterion
        ).reshape(n_segments, cuts)
    else:
        flat = sp * n_bins + codes
        size = n_segments * n_bins
        bin_counts = (
            np.bincount(flat, minlength=size)
            .reshape(n_segments, n_bins)
            .astype(np.float64)
        )
        y_sum = np.bincount(flat, weights=yp, minlength=size).reshape(
            n_segments, n_bins
        )
        y_sq = np.bincount(flat, weights=yp * yp, minlength=size).reshape(
            n_segments, n_bins
        )
        c_cum = np.cumsum(bin_counts, axis=1)[:, :-1]
        s_cum = np.cumsum(y_sum, axis=1)[:, :-1]
        q_cum = np.cumsum(y_sq, axis=1)[:, :-1]
        n_left = c_cum
        n_right = bin_counts.sum(axis=1)[:, None] - c_cum
        left_imp = variance_rows(c_cum, s_cum, q_cum)
        right_imp = variance_rows(
            n_right,
            y_sum.sum(axis=1)[:, None] - s_cum,
            y_sq.sum(axis=1)[:, None] - q_cum,
        )
    valid = (n_left > 0) & (n_right > 0)
    scores = np.where(
        valid,
        weighted_children_impurity(left_imp, n_left, right_imp, n_right),
        np.inf,
    )
    best = np.argmin(scores, axis=1)  # first minimum == smallest threshold
    has = valid.any(axis=1)
    entry.best_cut[has] = best[has]
    entry.seg_scores[has] = scores[np.arange(n_segments), best][has]
    entry.n_left = n_left
    entry.n_right = n_right
    return entry


def build_subtree_vectorized(
    table: DataTable,
    config: TreeConfig,
    row_ids: np.ndarray,
    candidate_columns: tuple[int, ...] | None = None,
    root_path: int = 1,
    counters: KernelCounters | None = None,
    small_node_cutoff: int = DEPTH_NEXT_CUTOFF,
    thresholds: dict[int, np.ndarray] | None = None,
) -> TreeNode:
    """Build ``Delta_x`` level-synchronously; bit-identical to the scalar
    :func:`~repro.core.builder.build_subtree`.

    Processes the whole frontier per iteration; frontier nodes at or
    below ``small_node_cutoff`` rows switch depth-next and are finished
    by the scalar builder rooted at their heap path.
    """
    if candidate_columns is None:
        candidate_columns = sample_candidate_columns(config, table.n_columns)
    is_clf = table.problem is ProblemKind.CLASSIFICATION
    criterion = config.resolved_criterion(is_clf)
    n_classes = table.n_classes
    is_extra = config.tree_kind is TreeKind.EXTRA
    target = table.target
    gather_s = 0.0

    root_holder: list[TreeNode] = []

    def attach_node(node: TreeNode, attach) -> None:
        if attach is None:
            root_holder.append(node)
        else:
            parent, side = attach
            setattr(parent, side, node)

    # Frontier entries: (row ids, heap path, attach) — one whole level.
    frontier: list = [(np.asarray(row_ids, dtype=np.int64), root_path, None)]
    while frontier:
        big = []
        for ids, path, attach in frontier:
            if ids.size <= small_node_cutoff:
                # Depth-next: the scalar builder finishes small subtrees.
                attach_node(
                    build_subtree(
                        table,
                        config,
                        ids,
                        candidate_columns,
                        root_path=path,
                        thresholds=thresholds,
                    ),
                    attach,
                )
            else:
                big.append((ids, path, attach))
        if not big:
            break

        m = len(big)
        sizes = np.fromiter(
            (entry[0].size for entry in big), dtype=np.int64, count=m
        )
        starts = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(sizes, out=starts[1:])
        level_rows = np.concatenate([entry[0] for entry in big])
        seg_all = np.repeat(np.arange(m, dtype=np.int64), sizes)

        tick = time.perf_counter()
        y_lvl = target[level_rows]
        gather_s += time.perf_counter() - tick

        # -- per-node label statistics, one pass for the level ----------
        stats_list: list[NodeStats] = []
        if is_clf:
            y_codes_lvl = y_lvl.astype(np.int64)
            counts = np.bincount(
                seg_all * n_classes + y_codes_lvl,
                minlength=m * n_classes,
            ).reshape(m, n_classes)
            maxes = counts.max(axis=1)
            for i in range(m):
                n = int(sizes[i])
                row = counts[i]
                stats_list.append(
                    NodeStats(
                        n,
                        (row / max(n, 1)).astype(np.float64),
                        bool(n > 0 and maxes[i] == n),
                        counts=row,
                    )
                )
        else:
            for i in range(m):
                n = int(sizes[i])
                y_seg = y_lvl[starts[i] : starts[i + 1]]
                mean = float(y_seg.mean()) if n else 0.0
                pure = bool(n > 0 and np.all(y_seg == y_seg[0]))
                stats_list.append(NodeStats(n, mean, pure))

        nodes: list[TreeNode] = []
        stopped = np.zeros(m, dtype=bool)
        for i, (ids, path, attach) in enumerate(big):
            stats = stats_list[i]
            node = TreeNode(
                node_id=path,
                depth=path_depth(path),
                n_rows=stats.n_rows,
                prediction=stats.prediction,
            )
            attach_node(node, attach)
            nodes.append(node)
            stopped[i] = should_stop(stats, node.depth, config)

        act_idx = np.nonzero(~stopped)[0]
        if act_idx.size == 0:
            frontier = []
            continue
        a = int(act_idx.size)
        act_sizes = sizes[act_idx]
        act_starts = np.zeros(a + 1, dtype=np.int64)
        np.cumsum(act_sizes, out=act_starts[1:])
        keep = ~stopped[seg_all]
        act_rows = level_rows[keep]
        y_act = y_lvl[keep]
        seg_act = np.repeat(np.arange(a, dtype=np.int64), act_sizes)

        # -- best split per active node ---------------------------------
        next_frontier: list = []
        if is_extra:
            # Extra-trees draw one random column per node; the draws are
            # keyed by (seed, path, column) so the scalar helpers run
            # per node on the level-gathered slices unchanged.
            for j in range(a):
                i = int(act_idx[j])
                _, path, _ = big[i]
                s0, s1 = int(act_starts[j]), int(act_starts[j + 1])
                ids_seg = act_rows[s0:s1]
                y_seg = y_act[s0:s1]
                split = None
                split_values = None
                for col in extra_tree_column_order(
                    config.seed, path, candidate_columns
                ):
                    spec = table.column_spec(col)
                    tick = time.perf_counter()
                    vals = table.column(col)[ids_seg]
                    gather_s += time.perf_counter() - tick
                    cand = random_split_for_column(
                        col,
                        spec.kind,
                        vals,
                        y_seg,
                        criterion,
                        n_classes,
                        extra_tree_split_rng(config.seed, path, col),
                        spec.n_categories,
                    )
                    if cand is not None:
                        split, split_values = cand, vals
                        break
                if not split_is_useful(split, 0.0, config):
                    continue
                node = nodes[i]
                node.split = split
                go_left = route_training_rows(split_values, split)
                next_frontier.append(
                    (ids_seg[go_left], 2 * path, (node, "left"))
                )
                next_frontier.append(
                    (ids_seg[~go_left], 2 * path + 1, (node, "right"))
                )
            frontier = next_frontier
            continue

        column_cache: dict[int, np.ndarray] = {}
        entries: list = []
        y_codes_act = None
        act_counts = None
        if criterion.is_classification:
            y_codes_act = (
                y_codes_lvl[keep] if is_clf else y_act.astype(np.int64)
            )
            if is_clf:
                act_counts = counts[act_idx]
        for col in candidate_columns:
            spec = table.column_spec(col)
            tick = time.perf_counter()
            v = table.column(col)[act_rows]
            gather_s += time.perf_counter() - tick
            column_cache[col] = v
            if spec.kind is ColumnKind.NUMERIC and thresholds is not None:
                entries.append(
                    _batched_binned_numeric(
                        col,
                        v,
                        y_codes_act if criterion.is_classification else y_act,
                        seg_act,
                        a,
                        thresholds.get(col, _NO_THRESHOLDS),
                        criterion,
                        n_classes,
                    )
                )
            elif spec.kind is ColumnKind.NUMERIC and criterion.is_classification:
                entries.append(
                    _batched_numeric_classification(
                        col, v, y_codes_act, seg_act, a, act_sizes,
                        act_counts, criterion, n_classes,
                    )
                )
            elif spec.kind is ColumnKind.NUMERIC:
                entries.append(
                    _batched_numeric_regression(
                        col, v, y_act, seg_act, a, act_sizes
                    )
                )
            else:
                # Order-sensitive float accumulations that cannot be
                # restarted per segment (category subset scans): run the
                # scalar per-column search on the node-contiguous slices.
                splits = [
                    best_split_for_column(
                        col,
                        spec.kind,
                        v[act_starts[j] : act_starts[j + 1]],
                        y_act[act_starts[j] : act_starts[j + 1]],
                        criterion,
                        n_classes,
                        spec.n_categories,
                    )
                    for j in range(a)
                ]
                entries.append(_ObjectEntry(col, splits))

        for j in range(a):
            i = int(act_idx[j])
            _, path, _ = big[i]
            best_entry = None
            best_key = None
            for entry in entries:  # candidate_columns order
                key = entry.key_for(j)
                if key is None:
                    continue
                if best_key is None or key < best_key:
                    best_key, best_entry = key, entry
            split = None if best_entry is None else best_entry.split_for(j)
            s0, s1 = int(act_starts[j]), int(act_starts[j + 1])
            stats = stats_list[i]
            parent_imp = parent_impurity_of(
                y_act[s0:s1], criterion, n_classes, counts=stats.counts
            )
            if not split_is_useful(split, parent_imp, config):
                continue
            node = nodes[i]
            node.split = split
            go_left = route_training_rows(
                column_cache[split.column][s0:s1], split
            )
            ids_seg = act_rows[s0:s1]
            next_frontier.append((ids_seg[go_left], 2 * path, (node, "left")))
            next_frontier.append(
                (ids_seg[~go_left], 2 * path + 1, (node, "right"))
            )
        frontier = next_frontier

    if counters is not None:
        counters.gather_s += gather_s
    return root_holder[0]
