"""Worker assignment for tasks — the paper's Section VI cost model.

The master tracks a load matrix ``M_work`` with one row per worker and
three columns — estimated pending Computation, Sending and Receiving
workloads — and assigns each new plan greedily:

* **Subtree-task**: the key worker is the worker with minimum current
  computation load; its Comp is charged ``|I_x| * |C| * log|I_x|``.  Each
  remote column is then assigned to a holding worker chosen to minimize the
  maximum of the four updated transfer entries (the receiving worker's Recv
  of ``I_x``, the parent worker's Send of ``I_x`` — only on the worker's
  first column of this task — plus the server's Send and key worker's Recv
  of the column data).
* **Column-task**: each candidate column goes to a holding worker chosen to
  minimize ``max(Recv_j, Send_parent)`` after the updates; the worker's Comp
  is charged the one-pass scan cost.

Workloads added on assignment are remembered per task and reverted when the
task's result arrives, exactly as the paper describes (``theta_recv``
deducts using the amounts memorized in the task object).  Communication
charges are skipped whenever the requested data is local.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.cost import CostModel

#: Column indices of the load matrix.
COMP, SEND, RECV = 0, 1, 2


@dataclass
class TaskCharge:
    """The workload amounts a task added to ``M_work`` (for later revert)."""

    entries: list[tuple[int, int, float]] = field(default_factory=list)

    def note(self, worker: int, kind: int, amount: float) -> None:
        """Record one addition."""
        self.entries.append((worker, kind, amount))


class LoadMatrix:
    """The mutable ``M_work`` matrix."""

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        # Indexed by worker machine id (ids start at 1; slot 0 unused when
        # the master is machine 0 — callers pass machine ids directly).
        self._values: dict[int, list[float]] = {}
        self._n_workers = n_workers

    def ensure(self, worker: int) -> list[float]:
        """Row for a worker, created on first touch."""
        row = self._values.get(worker)
        if row is None:
            row = [0.0, 0.0, 0.0]
            self._values[worker] = row
        return row

    def get(self, worker: int, kind: int) -> float:
        """Current load value."""
        return self.ensure(worker)[kind]

    def add(self, worker: int, kind: int, amount: float, charge: TaskCharge) -> None:
        """Add load and record it on the task's charge sheet."""
        self.ensure(worker)[kind] += amount
        charge.note(worker, kind, amount)

    def revert(self, charge: TaskCharge) -> None:
        """Deduct a completed task's recorded additions."""
        for worker, kind, amount in charge.entries:
            self.ensure(worker)[kind] -= amount
        charge.entries.clear()

    def drop_worker(self, worker: int) -> None:
        """Forget a crashed worker's row."""
        self._values.pop(worker, None)

    def snapshot(self) -> dict[int, tuple[float, float, float]]:
        """Copy of the matrix (diagnostics / tests)."""
        return {w: (v[0], v[1], v[2]) for w, v in self._values.items()}

    def is_zero(self, tolerance: float = 1e-6) -> bool:
        """Whether all entries are (numerically) back to zero."""
        return all(
            abs(v) <= tolerance for row in self._values.values() for v in row
        )


@dataclass
class SubtreeAssignment:
    """Result of assigning a subtree-task plan."""

    key_worker: int
    local_columns: tuple[int, ...]
    server_map: dict[int, tuple[int, ...]]
    charge: TaskCharge


@dataclass
class ColumnAssignment:
    """Result of assigning a column-task plan."""

    worker_columns: dict[int, tuple[int, ...]]
    charge: TaskCharge


def assign_subtree_task(
    matrix: LoadMatrix,
    workers: list[int],
    holders: dict[int, list[int]],
    columns: tuple[int, ...],
    parent_worker: int | None,
    n_rows: int,
    cost: CostModel,
) -> SubtreeAssignment:
    """Greedy key-worker and column-server selection (Section VI).

    ``holders`` maps each column to the (live) workers holding a replica.
    """
    charge = TaskCharge()
    # Key worker: minimum current computation load, ties to lowest id.
    key = min(workers, key=lambda w: (matrix.get(w, COMP), w))
    matrix.add(key, COMP, cost.subtree_build_ops(n_rows, len(columns)), charge)

    ix_units = float(n_rows)
    # The key worker itself fetches I_x from the parent worker (for Y).
    if parent_worker is not None and parent_worker != key:
        matrix.add(key, RECV, ix_units, charge)
        matrix.add(parent_worker, SEND, ix_units, charge)

    local: list[int] = []
    server_map: dict[int, list[int]] = {}
    first_touch: set[int] = set()  # servers already charged for an I_x fetch
    for col in sorted(columns):
        candidates = holders.get(col)
        if not candidates:
            raise RuntimeError(f"no live holder for column {col}")
        if key in candidates:
            local.append(col)
            continue
        best_worker = None
        best_value = None
        for j in sorted(candidates):
            recv_j = matrix.get(j, RECV) + (
                ix_units if (j not in first_touch and parent_worker not in (None, j)) else 0.0
            )
            send_pa = (
                matrix.get(parent_worker, SEND)
                + (ix_units if (j not in first_touch and j != parent_worker) else 0.0)
                if parent_worker is not None
                else 0.0
            )
            send_j = matrix.get(j, SEND) + ix_units  # column data out
            recv_key = matrix.get(key, RECV) + ix_units  # column data in
            value = max(recv_j, send_pa, send_j, recv_key)
            if best_value is None or value < best_value:
                best_value = value
                best_worker = j
        assert best_worker is not None
        j = best_worker
        if j not in first_touch:
            first_touch.add(j)
            if parent_worker is not None and parent_worker != j:
                matrix.add(j, RECV, ix_units, charge)
                matrix.add(parent_worker, SEND, ix_units, charge)
        matrix.add(j, SEND, ix_units, charge)
        matrix.add(key, RECV, ix_units, charge)
        server_map.setdefault(j, []).append(col)

    return SubtreeAssignment(
        key_worker=key,
        local_columns=tuple(local),
        server_map={w: tuple(cols) for w, cols in server_map.items()},
        charge=charge,
    )


def assign_column_task(
    matrix: LoadMatrix,
    holders: dict[int, list[int]],
    columns: tuple[int, ...],
    parent_worker: int | None,
    n_rows: int,
    cost: CostModel,
) -> ColumnAssignment:
    """Greedy per-column worker selection for a column-task (Section VI)."""
    charge = TaskCharge()
    ix_units = float(n_rows)
    scan_ops = cost.split_search_ops(n_rows)
    worker_columns: dict[int, list[int]] = {}
    first_touch: set[int] = set()
    for col in sorted(columns):
        candidates = holders.get(col)
        if not candidates:
            raise RuntimeError(f"no live holder for column {col}")
        best_worker = None
        best_value = None
        for j in sorted(candidates):
            fresh = j not in first_touch and parent_worker not in (None, j)
            recv_j = matrix.get(j, RECV) + (ix_units if fresh else 0.0)
            send_pa = (
                matrix.get(parent_worker, SEND) + (ix_units if fresh else 0.0)
                if parent_worker is not None
                else 0.0
            )
            value = max(recv_j, send_pa)
            if best_value is None or value < best_value:
                best_value = value
                best_worker = j
        assert best_worker is not None
        j = best_worker
        if j not in first_touch:
            first_touch.add(j)
            if parent_worker is not None and parent_worker != j:
                matrix.add(j, RECV, ix_units, charge)
                matrix.add(parent_worker, SEND, ix_units, charge)
        matrix.add(j, COMP, scan_ops, charge)
        worker_columns.setdefault(j, []).append(col)

    return ColumnAssignment(
        worker_columns={w: tuple(c) for w, c in worker_columns.items()},
        charge=charge,
    )


def assign_columns_to_workers(
    n_columns: int, worker_ids: list[int], replication: int
) -> dict[int, list[int]]:
    """Initial balanced column placement (paper Section III, ``k`` replicas).

    Returns ``column -> [workers]``.  Replicas land on distinct machines;
    when fewer machines than replicas exist, replication degrades
    gracefully.
    """
    n_workers = len(worker_ids)
    k = min(replication, n_workers)
    placement: dict[int, list[int]] = {}
    stride = max(1, n_workers // k)
    for col in range(n_columns):
        holders = []
        for r in range(k):
            holders.append(worker_ids[(col + r * stride) % n_workers])
        # Guarantee distinct machines even when stride wraps onto itself.
        seen: list[int] = []
        for w in holders:
            if w not in seen:
                seen.append(w)
        offset = 1
        while len(seen) < k:
            candidate = worker_ids[(col + offset) % n_workers]
            if candidate not in seen:
                seen.append(candidate)
            offset += 1
        placement[col] = seen
    return placement
