"""Task and plan objects exchanged between the master and workers.

Terminology follows the paper:

* A **task** ``t_x`` is identified by ``(tree_uid, path)`` where ``path`` is
  the node's heap index within its tree (root = 1, children of ``p`` are
  ``2p`` and ``2p + 1``).
* A **plan** is a task that has not been assigned workers yet; plans wait in
  the master's deque ``B_plan``.
* A **column-task** plan fans out to the workers holding the candidate
  columns; a **subtree-task** plan goes to one *key worker*.
* A child task's **parent ref** names the *parent worker* — the delegate
  worker of the parent task that holds ``I_x`` — so row indices are fetched
  worker-to-worker and never relayed through the master (Section V).

All payload classes here are plain data; they travel inside simulated
network messages, with sizes charged per :class:`repro.cluster.CostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.schema import ProblemKind
from ..data.shm import ShmSlice
from .config import TreeConfig
from .splits import CandidateSplit

#: Task identity: (tree_uid, heap path).
TaskId = tuple[int, int]

#: Message kind strings used on the simulated network.
MSG_COLUMN_PLAN = "column_plan"
MSG_SUBTREE_PLAN = "subtree_plan"
MSG_COLUMN_RESULT = "column_result"
MSG_SPLIT_CONFIRM = "split_confirm"
MSG_SPLIT_DONE = "split_done"
MSG_TASK_DELETE = "task_delete"
MSG_EXPECT_FETCHES = "expect_fetches"
MSG_ROW_REQUEST = "row_request"
MSG_ROW_RESPONSE = "row_response"
MSG_ROW_RESPONSE_SHM = "row_response_shm"
MSG_COLUMN_REQUEST = "column_request"
MSG_COLUMN_RESPONSE = "column_response"
MSG_SUBTREE_RESULT = "subtree_result"
MSG_REVOKE_TREE = "revoke_tree"
# Runtime control plane (multiprocess backend only; the simulator's
# equivalent is the event queue simply draining).
MSG_SHUTDOWN = "shutdown"
MSG_WORKER_STATS = "worker_stats"
MSG_WORKER_ERROR = "worker_error"
# Socket-backend rendezvous (control frames, never protocol traffic).
MSG_WORKER_HELLO = "worker_hello"
MSG_WORKER_WELCOME = "worker_welcome"

#: Wire version of the socket handshake.  A master rejects a hello whose
#: version differs — both sides must run the same protocol revision to
#: guarantee bit-identical training.  v2 added histogram split mode: the
#: welcome ships the equi-depth threshold book and column results may
#: carry per-bin summaries instead of exact splits.
SOCKET_PROTOCOL_VERSION = 2


@dataclass(frozen=True)
class ParentRef:
    """Where a child task fetches its row ids ``I_x`` from.

    ``task`` is the parent task id; ``side`` selects ``I_xl`` (0) or
    ``I_xr`` (1); ``worker`` is the parent task's delegate worker.  ``None``
    parent ref means the task is a tree root and every worker synthesizes
    the root row set locally (deterministically), so even root row ids never
    travel on the wire.
    """

    task: TaskId
    side: int
    worker: int


@dataclass(frozen=True)
class TreeContext:
    """Per-tree information shipped inside every plan (small, O(|C|)).

    Carrying the tree seed (inside ``config``) rather than any materialized
    randomness is what lets workers regenerate bootstrap samples and
    extra-tree draws locally.
    """

    tree_uid: int
    config: TreeConfig
    candidate_columns: tuple[int, ...]
    bootstrap: bool
    n_table_rows: int


@dataclass
class NodeStatsPayload:
    """Sufficient label statistics of one node, as shipped in messages.

    Classification: ``counts`` is the class histogram.  Regression:
    ``(n, y_sum, y_sq_sum)``.  Both support the leaf checks (purity) and the
    per-node prediction of Appendix D.
    """

    n_rows: int
    counts: np.ndarray | None = None
    y_sum: float = 0.0
    y_sq_sum: float = 0.0
    #: Exact purity flag computed from the labels themselves (a float
    #: variance test could disagree with the serial builder's exact
    #: ``all(y == y[0])`` check and break the exactness invariant).
    pure: bool = False

    @classmethod
    def from_labels(
        cls, y: np.ndarray, problem: ProblemKind, n_classes: int
    ) -> "NodeStatsPayload":
        """Compute stats from a node's label array."""
        pure = bool(y.size > 0 and np.all(y == y[0]))
        if problem is ProblemKind.CLASSIFICATION:
            counts = np.bincount(y.astype(np.int64), minlength=n_classes)
            return cls(n_rows=int(y.size), counts=counts, pure=pure)
        return cls(
            n_rows=int(y.size),
            y_sum=float(y.sum()),
            y_sq_sum=float((y * y).sum()),
            pure=pure,
        )

    @property
    def is_classification(self) -> bool:
        """Whether these are classification stats."""
        return self.counts is not None

    @property
    def is_pure(self) -> bool:
        """All labels identical (leaf condition 1)."""
        return self.pure

    def prediction(self) -> np.ndarray | float:
        """PMF vector (classification) or mean (regression)."""
        if self.counts is not None:
            return self.counts / max(1, self.n_rows)
        return self.y_sum / self.n_rows if self.n_rows else 0.0

    def impurity(self, criterion) -> float:
        """Node impurity from these stats (for the gain check)."""
        from .impurity import classification_impurity, variance

        if self.counts is not None:
            return classification_impurity(
                self.counts.astype(np.float64), criterion
            )
        return variance(float(self.n_rows), self.y_sum, self.y_sq_sum)


@dataclass
class PlanEntry:
    """One entry of the master's plan deque ``B_plan``."""

    task: TaskId
    n_rows: int
    depth: int
    parent: ParentRef | None
    ctx: TreeContext
    is_subtree: bool

    @property
    def tree_uid(self) -> int:
        """Owning tree."""
        return self.task[0]

    @property
    def path(self) -> int:
        """Heap path of the node."""
        return self.task[1]


# ----------------------------------------------------------------------
# message payloads
# ----------------------------------------------------------------------
@dataclass
class ColumnPlanMsg:
    """Master -> worker: compute best splits of ``columns`` for a node."""

    task: TaskId
    columns: tuple[int, ...]
    parent: ParentRef | None
    ctx: TreeContext
    n_rows: int
    depth: int


@dataclass
class SubtreePlanMsg:
    """Master -> key worker: gather ``D_x`` and build the whole subtree.

    ``server_map`` tells the key worker which other machine serves which
    remote columns; columns the key worker holds itself are in
    ``local_columns`` and need no communication.
    """

    task: TaskId
    parent: ParentRef | None
    ctx: TreeContext
    n_rows: int
    depth: int
    local_columns: tuple[int, ...]
    server_map: dict[int, tuple[int, ...]]


@dataclass
class ColumnResultMsg:
    """Worker -> master: per-column best splits plus node label stats.

    In hist mode (``TreeConfig.split_mode="hist"``) numeric decision-tree
    columns ship a :class:`~repro.core.histogram.ColumnHistogram` in
    ``hists`` — O(bins) per-bin statistics the master scores itself —
    with a ``None`` placeholder in ``splits``; categorical columns keep
    shipping exact splits either way.  ``hists`` is ``None`` in exact
    mode (and for old pickles), keeping the wire form unchanged there.
    """

    task: TaskId
    worker: int
    splits: list[CandidateSplit | None]
    stats: NodeStatsPayload
    hists: list | None = None


@dataclass
class SplitConfirmMsg:
    """Master -> delegate worker: the overall best split; partition ``I_x``."""

    task: TaskId
    split: CandidateSplit


@dataclass
class SplitDoneMsg:
    """Delegate -> master: children's label stats after partitioning."""

    task: TaskId
    left_stats: NodeStatsPayload
    right_stats: NodeStatsPayload


@dataclass
class ExpectFetchesMsg:
    """Master -> delegate: how many fetches child ``side`` will receive.

    Count 0 means the child became a leaf and its stored row set can be
    freed immediately.
    """

    task: TaskId
    side: int
    count: int


@dataclass
class RowRequestMsg:
    """Worker -> parent worker: send me ``I_x`` for one child side.

    ``tag`` identifies the requesting state machine on the requester
    (``("column" | "key" | "serve", task_id)``) so the response routes back
    to the right local task object.
    """

    parent_task: TaskId
    side: int
    requester: int
    tag: tuple[str, TaskId]


@dataclass
class RowResponseMsg:
    """Parent worker -> requester: the row ids."""

    tag: tuple[str, TaskId]
    row_ids: np.ndarray


@dataclass
class RowResponseShmMsg:
    """Parent worker -> requester: the row ids, parked in shared memory.

    The multiprocess backend's zero-copy variant of
    :class:`RowResponseMsg`: ``ref`` is a :class:`~repro.data.shared.
    ShmSlice` descriptor into the *sender's* arena.  The receiver copies
    the slice out on arrival; the sender frees the slot when the master
    confirms the child side resolved (``expect_fetches``), by which time
    causality guarantees every fetcher has consumed its copy.  Never sent
    on the simulator, and only for row sets at or above
    ``RuntimeOptions.shm_threshold_bytes`` — small sets stay inline.
    """

    tag: tuple[str, TaskId]
    ref: ShmSlice


@dataclass
class ColumnRequestMsg:
    """Key worker -> serving worker: fetch these columns of ``D_x``."""

    task: TaskId
    columns: tuple[int, ...]
    parent: ParentRef | None
    ctx: TreeContext
    key_worker: int


@dataclass
class ColumnResponseMsg:
    """Serving worker -> key worker: the requested column values."""

    task: TaskId
    server: int
    columns: tuple[int, ...]
    arrays: list[np.ndarray]


@dataclass
class SubtreeResultMsg:
    """Key worker -> master: the completed ``Delta_x`` (serialized)."""

    task: TaskId
    worker: int
    subtree: dict
    n_nodes: int


@dataclass
class TaskDeleteMsg:
    """Master -> worker: drop your task object for ``task``."""

    task: TaskId


@dataclass
class RevokeTreeMsg:
    """Master -> all workers: drop every state object of this tree.

    Used by fault recovery: after a worker crash the master restarts
    from scratch exactly the trees whose in-flight tasks or queued plans
    involved the dead worker (see DESIGN.md on this simplification of
    Appendix E's per-task revocation); unaffected trees keep running.
    """

    tree_uid: int


@dataclass
class RootRows:
    """Helper: deterministic root row set of a tree.

    Bootstrap samples are regenerated from the tree seed on any machine, so
    the master never ships root row ids (Section V applies to roots too).
    """

    ctx: TreeContext

    def materialize(self) -> np.ndarray:
        """The root ``I_x`` as an int64 array."""
        from .builder import bootstrap_row_ids

        if self.ctx.bootstrap:
            return bootstrap_row_ids(self.ctx.config.seed, self.ctx.n_table_rows)
        return np.arange(self.ctx.n_table_rows, dtype=np.int64)


@dataclass
class TaskCounters:
    """Run-level task statistics the master accumulates."""

    column_tasks: int = 0
    subtree_tasks: int = 0
    leaves_finalized: int = 0
    trees_completed: int = 0
    plans_dispatched: int = 0
    head_insertions: int = 0
    tail_insertions: int = 0
    revoked_trees: int = 0
    #: Worker crashes survived via replica reassignment + tree revocation.
    recovered_workers: int = 0
    bplan_peak: int = 0
    extra: dict[str, int] = field(default_factory=dict)


@dataclass
class TreeCompletedSync:
    """Master -> secondary master: checkpoint one completed tree.

    Appendix E: the master periodically synchronizes job metadata and tree
    construction progress to the secondary master; tree completion is the
    natural checkpoint granularity (a completed tree is immutable).
    """

    job_name: str
    tree_index: int
    tree: dict


@dataclass
class MasterFailoverMsg:
    """Secondary master -> workers: the master died; I am the master now.

    Workers drop every live task object (the new master re-plans all
    incomplete trees under fresh uids), redirect results to the new master
    and ignore any straggler messages from the old generation
    (``min_live_uid`` fences them off).
    """

    new_master_id: int
    min_live_uid: int


@dataclass
class ShutdownMsg:
    """Runtime driver -> worker process: training is done, exit cleanly.

    The worker replies with a :class:`WorkerStatsMsg` (its run-end
    invariant report) before its event loop returns.  Only the
    multiprocess backend sends this; the simulator ends when its event
    queue drains.
    """

    reason: str = "done"


@dataclass
class WorkerStatsMsg:
    """Worker process -> runtime driver: end-of-run invariant report.

    ``outstanding`` mirrors :meth:`WorkerActor.outstanding_state` and
    ``mem_task_bytes`` the machine's live task allocation — both must be
    zero after a clean run, giving the multiprocess backend the same
    leak checks the simulator asserts in-process.
    """

    worker: int
    outstanding: dict[str, int]
    mem_task_bytes: int
    mem_task_peak: int = 0
    mem_base_bytes: int = 0
    messages_handled: int = 0
    messages_sent: int = 0
    ops_executed: float = 0.0
    bytes_by_kind: dict[str, int] = field(default_factory=dict)
    # -- transport data-plane counters (mp backend) --------------------
    #: Actual serialized bytes this worker put on its queues.
    bytes_pickled: int = 0
    #: Shared bytes this worker consumed without pickling: its attached
    #: table image plus every arena slice it copied out.
    shm_bytes_mapped: int = 0
    #: Queue puts that carried more than one coalesced message.
    coalesced_batches: int = 0
    # -- crash-recovery counters (mp backend fault recovery) -----------
    #: ``revoke_tree`` broadcasts this worker processed.
    revoked_trees_seen: int = 0
    #: ``row_response_shm`` descriptors dropped because the owning
    #: (crashed) worker's arena segment was already swept.
    stale_shm_drops: int = 0
    # -- training-kernel counters (see repro.core.kernel) ---------------
    #: Which subtree kernel ran last on this worker ("" = none ran).
    subtree_kernel: str = ""
    #: Wall-clock seconds spent inside subtree builds.
    subtree_kernel_s: float = 0.0
    #: Slice of the above spent gathering ``y``/column values
    #: (vectorized kernel only).
    subtree_gather_s: float = 0.0
    #: Tree nodes constructed by subtree-tasks on this worker.
    subtree_nodes_built: int = 0


@dataclass
class WorkerHelloMsg:
    """Socket worker -> master: rendezvous request (first frame sent).

    ``table_hash`` is :func:`repro.data.table.table_fingerprint` of the
    worker's local table copy — the master rejects a hello whose hash
    differs from its own, because exact distributed training is only
    meaningful when every machine trains on byte-identical data.
    ``host_id`` identifies the physical host (hostname plus machine id);
    workers that share the master's reported host id may exchange
    ``row_response_shm`` descriptors, everyone else falls back to inline
    row-id transfer (docs/PROTOCOL.md, "Rendezvous handshake").
    """

    worker_id: int
    protocol_version: int
    table_hash: str
    host_id: str
    pid: int = 0


@dataclass
class WorkerWelcomeMsg:
    """Master -> socket worker: rendezvous reply.

    ``ok=False`` carries a human-readable rejection in ``error`` and the
    worker exits without joining.  On acceptance the welcome ships
    everything the worker needs to run its actor: the cluster size, its
    held columns, the host map of every peer (for the shm-peer rule),
    the run's shm prefix (``None`` when the data plane is disabled or
    the worker is on a different host than the master's table image),
    the transport knobs, and the cost model.  ``threshold_book`` is the
    run's equi-depth threshold book (``{max_bins: {column:
    thresholds}}``, see :mod:`repro.core.histogram`) when any submitted
    job trains with ``split_mode="hist"`` — computed once by the master
    so every machine bins against identical global thresholds; ``None``
    when all jobs are exact.
    """

    ok: bool
    error: str = ""
    n_workers: int = 0
    held_columns: tuple[int, ...] = ()
    host_map: dict[int, str] = field(default_factory=dict)
    shm_prefix: str | None = None
    shm_threshold_bytes: int = 8192
    coalesce_max_messages: int = 32
    poll_interval_seconds: float = 0.05
    cost: object | None = None
    threshold_book: dict | None = None


@dataclass
class WorkerErrorMsg:
    """Worker process -> runtime driver: the worker hit an exception.

    The driver surfaces this as a structured
    :class:`~repro.runtime.base.WorkerDiedError` instead of waiting for a
    timeout; ``traceback`` carries the formatted remote stack.
    """

    worker: int
    error: str
    traceback: str = ""


#: Every message dataclass that can travel on a transport, for
#: transport-safety tests (pickle round-trips) and exhaustiveness checks.
MESSAGE_DATACLASSES: tuple[type, ...] = (
    ColumnPlanMsg,
    SubtreePlanMsg,
    ColumnResultMsg,
    SplitConfirmMsg,
    SplitDoneMsg,
    ExpectFetchesMsg,
    RowRequestMsg,
    RowResponseMsg,
    RowResponseShmMsg,
    ColumnRequestMsg,
    ColumnResponseMsg,
    SubtreeResultMsg,
    TaskDeleteMsg,
    RevokeTreeMsg,
    TreeCompletedSync,
    MasterFailoverMsg,
    ShutdownMsg,
    WorkerStatsMsg,
    WorkerErrorMsg,
    WorkerHelloMsg,
    WorkerWelcomeMsg,
)
