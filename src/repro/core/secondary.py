"""Secondary master: master-failure tolerance (paper Appendix E).

"Since a TreeServer program is master-driven, the master is the only single
point of failure which can be strengthened by enabling a secondary master.
... the master needs to periodically synchronize the job metadata and tree
construction progress to the secondary master.  New tasks assigned since
the last synchronization will be reassigned by the secondary master, which
accepts but ignores old responses."

The implementation here:

* the primary master syncs every *completed tree* to the secondary (job
  metadata is shared at setup);
* on detected master failure the secondary takes over: it broadcasts a
  failover notice (workers drop all task state and redirect results), then
  runs a fresh :class:`~repro.core.master.MasterActor` on its own machine,
  pre-seeded with the synced trees — so only trees incomplete at the crash
  are retrained, under a fresh uid generation that fences off stragglers.

Trained models are unaffected by a failover (exact training is
deterministic), which the fault-tolerance tests assert.
"""

from __future__ import annotations

from ..cluster.network import Message
from ..cluster.topology import SimulatedCluster
from .config import SystemConfig
from .jobs import TrainingJob
from .master import MasterActor, _TableInfo
from .tasks import MasterFailoverMsg, TreeCompletedSync
from .tree import DecisionTree

#: uid namespace width per master generation: fresh generations allocate
#: uids above every uid the previous generation could have issued.
UID_GENERATION_SPAN = 1_000_000_000


class SecondaryMasterActor:
    """Hot standby for the master, running on its own machine."""

    def __init__(
        self,
        cluster: SimulatedCluster,
        machine_id: int,
        table_info: _TableInfo,
        jobs: list[TrainingJob],
        system: SystemConfig,
        holders: dict[int, list[int]],
        threshold_book: dict | None = None,
    ) -> None:
        self.cluster = cluster
        self.machine_id = machine_id
        self.info = table_info
        self.jobs = jobs
        self.system = system
        # Hist-mode threshold book, shared at setup like the job metadata,
        # so a promoted master scores histogram summaries identically.
        self.threshold_book = threshold_book
        # Deep-copy the placement: the primary mutates its own holder
        # lists on worker crashes (`holders[c].remove(worker)`), and an
        # aliased view would double-apply those removals — the standby
        # re-derives liveness itself at failover time.
        self.holders = {c: list(ws) for c, ws in holders.items()}
        self.completed: dict[str, dict[int, DecisionTree]] = {}
        self.promoted: MasterActor | None = None

    # ------------------------------------------------------------------
    # standby duties
    # ------------------------------------------------------------------
    def handle_message(self, message: Message) -> None:
        """Receive checkpoints while on standby; act as master after it."""
        payload = message.payload
        if isinstance(payload, TreeCompletedSync):
            self.completed.setdefault(payload.job_name, {})[
                payload.tree_index
            ] = DecisionTree.from_dict(payload.tree)
            return
        if self.promoted is not None:
            self.promoted.handle_message(message)
            return
        raise RuntimeError(
            f"secondary master got unexpected payload "
            f"{type(payload).__name__} while on standby"
        )

    @property
    def synced_trees(self) -> int:
        """Checkpointed trees received so far."""
        return sum(len(trees) for trees in self.completed.values())

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------
    def on_master_failure(self) -> None:
        """Take over as the master (called by the failure detector)."""
        if self.promoted is not None:
            return
        fence = UID_GENERATION_SPAN
        notice = MasterFailoverMsg(
            new_master_id=self.machine_id, min_live_uid=fence
        )
        live_workers = sorted(
            {
                w
                for ws in self.holders.values()
                for w in ws
                if not self.cluster.network.is_dead(w)
            }
        )
        for worker in live_workers:
            self.cluster.send(
                self.machine_id,
                worker,
                "master_failover",
                notice,
                self.cluster.cost.control_bytes,
            )
        live_holders = {
            c: [w for w in ws if not self.cluster.network.is_dead(w)]
            for c, ws in self.holders.items()
        }
        for column, holders in live_holders.items():
            if not holders:
                raise RuntimeError(
                    f"column {column} lost all replicas before failover"
                )
        self.promoted = MasterActor(
            cluster=self.cluster,
            table_info=self.info,
            jobs=self.jobs,
            system=self.system,
            holders=live_holders,
            machine_id=self.machine_id,
            uid_offset=fence,
            completed=self.completed,
            threshold_book=self.threshold_book,
        )
        self.promoted.start()
