"""Training job specifications.

Users submit *jobs* to the master (paper Fig. 2): a decision tree, a random
forest, an extra-trees forest — each disassembled into individual trees for
training.  Jobs may have *stages* with sequential dependencies: trees of
stage ``s + 1`` become eligible only when every tree of stage ``s`` has been
constructed (the boosting / deep-forest-layer dependency of Section III's
Tree Scheduling).  Trees within a stage, and across independent jobs, train
concurrently subject to the ``n_pool`` cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .config import ColumnSampling, TreeConfig, TreeKind


@dataclass(frozen=True)
class TreeRequest:
    """One tree to train (its config carries the per-tree seed)."""

    config: TreeConfig


@dataclass
class JobStage:
    """A group of mutually independent trees."""

    trees: list[TreeRequest]

    def __post_init__(self) -> None:
        if not self.trees:
            raise ValueError("a job stage needs at least one tree")


@dataclass
class TrainingJob:
    """A named model-training job: one or more sequential stages.

    ``bootstrap_rows`` turns on per-tree bootstrap row sampling (off by
    default; the paper's forests randomize attribute subsets only).
    """

    name: str
    stages: list[JobStage]
    bootstrap_rows: bool = False
    metadata: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError(f"job {self.name!r} has no stages")

    @property
    def n_trees(self) -> int:
        """Total tree count across all stages."""
        return sum(len(stage.trees) for stage in self.stages)

    def with_kernel(self, kernel: str) -> "TrainingJob":
        """Copy of this job with every tree's training kernel overridden.

        The seam :class:`~repro.core.server.TreeServer` uses to apply a
        ``RuntimeOptions.kernel`` override — kernel choice is a runtime
        concern, but it travels in :class:`~repro.core.config.TreeConfig`
        so task plans carry it to workers on every backend.
        """
        stages = [
            JobStage(
                [
                    TreeRequest(replace(tree.config, kernel=kernel))
                    for tree in stage.trees
                ]
            )
            for stage in self.stages
        ]
        return TrainingJob(
            name=self.name,
            stages=stages,
            bootstrap_rows=self.bootstrap_rows,
            metadata=dict(self.metadata),
        )

    def with_split_mode(
        self, split_mode: str | None = None, max_bins: int | None = None
    ) -> "TrainingJob":
        """Copy of this job with every tree's split mode / bins overridden.

        The seam :class:`~repro.core.server.TreeServer` uses to apply a
        ``RuntimeOptions.split_mode`` / ``max_bins`` override (mirroring
        :meth:`with_kernel`): split search is configured per tree in
        :class:`~repro.core.config.TreeConfig` so task plans carry it to
        workers on every backend.  ``None`` keeps a field's per-tree
        values.
        """
        overrides: dict = {}
        if split_mode is not None:
            overrides["split_mode"] = split_mode
        if max_bins is not None:
            overrides["max_bins"] = max_bins
        if not overrides:
            return self
        stages = [
            JobStage(
                [
                    TreeRequest(replace(tree.config, **overrides))
                    for tree in stage.trees
                ]
            )
            for stage in self.stages
        ]
        return TrainingJob(
            name=self.name,
            stages=stages,
            bootstrap_rows=self.bootstrap_rows,
            metadata=dict(self.metadata),
        )


def decision_tree_job(
    name: str, config: TreeConfig | None = None
) -> TrainingJob:
    """A single decision tree trained on all columns (paper Table II(a))."""
    cfg = config or TreeConfig()
    return TrainingJob(name=name, stages=[JobStage([TreeRequest(cfg)])])


def random_forest_job(
    name: str,
    n_trees: int,
    config: TreeConfig | None = None,
    seed: int = 0,
    bootstrap_rows: bool = False,
) -> TrainingJob:
    """A random forest: ``n`` independent trees, each on a random
    ``sqrt(|A|)``-sized attribute subset (paper Section VIII defaults).

    Pass a ``config`` with ``column_sampling=ColumnSampling.RATIO`` to
    reproduce the Table VIII(c,d) column-ratio sweeps instead.
    """
    if n_trees < 1:
        raise ValueError("a forest needs at least one tree")
    base = config or TreeConfig(column_sampling=ColumnSampling.SQRT)
    if base.column_sampling is ColumnSampling.ALL:
        base = replace(base, column_sampling=ColumnSampling.SQRT)
    trees = [
        TreeRequest(base.with_seed(seed * 1_000_003 + i)) for i in range(n_trees)
    ]
    return TrainingJob(
        name=name, stages=[JobStage(trees)], bootstrap_rows=bootstrap_rows
    )


def extra_trees_job(
    name: str,
    n_trees: int,
    config: TreeConfig | None = None,
    seed: int = 0,
) -> TrainingJob:
    """A completely-random-trees forest (paper Appendix F)."""
    base = config or TreeConfig()
    base = replace(
        base, column_sampling=ColumnSampling.ALL, tree_kind=TreeKind.EXTRA
    )
    trees = [
        TreeRequest(base.with_seed(seed * 1_000_003 + i)) for i in range(n_trees)
    ]
    return TrainingJob(name=name, stages=[JobStage(trees)])


def staged_job(
    name: str, stage_tree_lists: list[list[TreeConfig]]
) -> TrainingJob:
    """A job with explicit sequential stages (boosting-style dependency)."""
    stages = [
        JobStage([TreeRequest(cfg) for cfg in configs])
        for configs in stage_tree_lists
    ]
    return TrainingJob(name=name, stages=stages)
