"""Distributed batch prediction — the paper's second row-parallel job.

After a deep-forest layer's forests are trained and saved to HDFS, "we let
every machine load all the forests from HDFS, and then conduct tree
traversal for its assigned portion of images" (Section VII).  This module
implements that job over the simulated substrate:

* every worker loads the model from the simulated DFS (connection + byte
  costs charged) — **once per content hash**: repeat jobs against a model
  the worker pool already holds hit the serving registry and skip the
  load entirely (``cache_hit`` in the report);
* rows are partitioned across workers' row-groups; each worker traverses
  every tree for its rows (real predictions, simulated compute time);
* results are gathered (byte cost to the collecting machine).

The returned predictions are exactly the model's predictions — computed for
real through the serving subsystem's flat-array kernel, which the parity
suite pins to node-based descent; the report carries the simulated
per-phase seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.cost import CostModel
from ..data.schema import ProblemKind
from ..data.table import DataTable
from ..ensemble.forest import ForestModel
from ..hdfs.filesystem import SimHdfs
from .config import SystemConfig
from .persistence import model_fingerprint_hdfs, save_model_hdfs


@dataclass
class PredictReport:
    """Simulated-time breakdown of one distributed prediction job."""

    predictions: np.ndarray
    sim_seconds: float
    model_load_seconds: float
    traversal_seconds: float
    gather_seconds: float
    model_bytes: int
    #: Whether the worker pool already held this model (registry hit) —
    #: when True no DFS bytes or connections were charged for the load.
    cache_hit: bool = False


def model_size_bytes(model: ForestModel, cost: CostModel) -> int:
    """Serialized model size under the cost model's per-node estimate."""
    return cost.control_bytes + cost.node_bytes * model.total_nodes()


def distributed_predict(
    model: ForestModel,
    table: DataTable,
    system: SystemConfig | None = None,
    cost: CostModel | None = None,
    compiled=None,
    charge_model_load: bool = True,
) -> PredictReport:
    """Predict a table on the simulated cluster (row-parallel).

    The real predictions come from the model — via the pre-compiled flat
    kernel when ``compiled`` (a serving ``BatchPredictor``) is supplied;
    the simulated time follows the paper's workflow: broadcast-style model
    load to every worker from the DFS (serialized at the DFS-side NIC,
    skipped when ``charge_model_load`` is False because the pool already
    holds the model), parallel traversal of each worker's row partition,
    then gathering the outputs.
    """
    system = system or SystemConfig()
    cost = cost or CostModel(
        ops_per_second=system.core_ops_per_second,
        bandwidth_bytes_per_second=system.bandwidth_bytes_per_second,
        latency_seconds=system.network_latency_seconds,
    )

    # Real computation (flat kernel and node descent are parity-tested).
    engine = compiled if compiled is not None else model
    if model.problem is ProblemKind.CLASSIFICATION:
        predictions = engine.predict(table)
    else:
        predictions = engine.predict_values(table)

    # Simulated time.
    m_bytes = model_size_bytes(model, cost)
    if charge_model_load:
        # Every worker pulls the model; the DFS side serializes the sends.
        load = (
            system.n_workers * m_bytes / cost.bandwidth_bytes_per_second
            + system.n_workers * cost.hdfs_connection_seconds
        )
    else:
        load = 0.0
    total_traversal_ops = 0.0
    for tree in model.trees:
        total_traversal_ops += table.n_rows * max(1, tree.depth)
    cores = system.n_workers * system.compers_per_worker
    traversal = cost.compute_seconds(total_traversal_ops) / cores
    out_bytes = table.n_rows * cost.value_bytes
    gather = out_bytes / cost.bandwidth_bytes_per_second
    return PredictReport(
        predictions=predictions,
        sim_seconds=load + traversal + gather,
        model_load_seconds=load,
        traversal_seconds=traversal,
        gather_seconds=gather,
        model_bytes=m_bytes,
        cache_hit=not charge_model_load,
    )


def predict_from_hdfs(
    fs: SimHdfs,
    model_path: str,
    table: DataTable,
    system: SystemConfig | None = None,
    registry=None,
) -> PredictReport:
    """Run distributed prediction against a DFS-saved model.

    The model is resolved through the serving registry keyed by the
    content hash of its persisted files: the first job per content pays
    the full broadcast load (bytes + DFS connections) and compiles the
    flat-array kernel; repeat jobs reuse both, so only traversal and
    gather time are charged (``report.cache_hit``).
    """
    from ..serving.registry import default_registry

    registry = default_registry() if registry is None else registry
    key = model_fingerprint_hdfs(fs, model_path)
    entry = registry.get(key)
    cache_hit = entry is not None
    if entry is None:
        from .persistence import load_model_hdfs

        entry = registry.put(key, load_model_hdfs(fs, model_path))
    return distributed_predict(
        entry.model,
        table,
        system,
        compiled=entry.predictor,
        charge_model_load=not cache_hit,
    )


def publish_and_predict(
    fs: SimHdfs,
    model_path: str,
    name: str,
    model: ForestModel,
    table: DataTable,
    system: SystemConfig | None = None,
    registry=None,
) -> PredictReport:
    """The full Section VII loop: save the trained forests to the DFS, then
    run the row-parallel prediction job against them."""
    save_model_hdfs(fs, model_path, name, model.trees)
    return predict_from_hdfs(fs, model_path, table, system, registry)
