"""Distributed batch prediction — the paper's second row-parallel job.

After a deep-forest layer's forests are trained and saved to HDFS, "we let
every machine load all the forests from HDFS, and then conduct tree
traversal for its assigned portion of images" (Section VII).  This module
implements that job over the simulated substrate:

* every worker loads the model from the simulated DFS (connection + byte
  costs charged);
* rows are partitioned across workers' row-groups; each worker traverses
  every tree for its rows (real predictions, simulated compute time);
* results are gathered (byte cost to the collecting machine).

The returned predictions are exactly the model's predictions (computed for
real); the report carries the simulated per-phase seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.cost import CostModel
from ..data.schema import ProblemKind
from ..data.table import DataTable
from ..ensemble.forest import ForestModel
from ..hdfs.filesystem import SimHdfs
from .config import SystemConfig
from .persistence import load_model_hdfs, save_model_hdfs


@dataclass
class PredictReport:
    """Simulated-time breakdown of one distributed prediction job."""

    predictions: np.ndarray
    sim_seconds: float
    model_load_seconds: float
    traversal_seconds: float
    gather_seconds: float
    model_bytes: int


def model_size_bytes(model: ForestModel, cost: CostModel) -> int:
    """Serialized model size under the cost model's per-node estimate."""
    return cost.control_bytes + cost.node_bytes * model.total_nodes()


def distributed_predict(
    model: ForestModel,
    table: DataTable,
    system: SystemConfig | None = None,
    cost: CostModel | None = None,
) -> PredictReport:
    """Predict a table on the simulated cluster (row-parallel).

    The real predictions come from the model; the simulated time follows
    the paper's workflow: broadcast-style model load to every worker from
    the DFS (serialized at the DFS-side NIC), parallel traversal of each
    worker's row partition, then gathering the outputs.
    """
    system = system or SystemConfig()
    cost = cost or CostModel(
        ops_per_second=system.core_ops_per_second,
        bandwidth_bytes_per_second=system.bandwidth_bytes_per_second,
        latency_seconds=system.network_latency_seconds,
    )

    # Real computation.
    if model.problem is ProblemKind.CLASSIFICATION:
        predictions = model.predict(table)
    else:
        predictions = model.predict_values(table)

    # Simulated time.
    m_bytes = model_size_bytes(model, cost)
    # Every worker pulls the model; the DFS side serializes the sends.
    load = (
        system.n_workers * m_bytes / cost.bandwidth_bytes_per_second
        + system.n_workers * cost.hdfs_connection_seconds
    )
    total_traversal_ops = 0.0
    for tree in model.trees:
        total_traversal_ops += table.n_rows * max(1, tree.depth)
    cores = system.n_workers * system.compers_per_worker
    traversal = cost.compute_seconds(total_traversal_ops) / cores
    out_bytes = table.n_rows * cost.value_bytes
    gather = out_bytes / cost.bandwidth_bytes_per_second
    return PredictReport(
        predictions=predictions,
        sim_seconds=load + traversal + gather,
        model_load_seconds=load,
        traversal_seconds=traversal,
        gather_seconds=gather,
        model_bytes=m_bytes,
    )


def predict_from_hdfs(
    fs: SimHdfs,
    model_path: str,
    table: DataTable,
    system: SystemConfig | None = None,
) -> PredictReport:
    """Load a model from the simulated DFS and run distributed prediction."""
    model = load_model_hdfs(fs, model_path)
    return distributed_predict(model, table, system)


def publish_and_predict(
    fs: SimHdfs,
    model_path: str,
    name: str,
    model: ForestModel,
    table: DataTable,
    system: SystemConfig | None = None,
) -> PredictReport:
    """The full Section VII loop: save the trained forests to the DFS, then
    run the row-parallel prediction job against them."""
    save_model_hdfs(fs, model_path, name, model.trees)
    return predict_from_hdfs(fs, model_path, table, system)
