"""The paper's primary contribution: exact tree training, the node-centric
task engine, hybrid scheduling, delegate-worker row maintenance and the
Section VI load balancer."""

from .builder import build_subtree, train_tree
from .config import ColumnSampling, SystemConfig, TreeConfig, TreeKind
from .impurity import Impurity
from .persistence import (
    load_model_hdfs,
    load_model_local,
    save_model_hdfs,
    save_model_local,
)
from .jobs import (
    TrainingJob,
    decision_tree_job,
    extra_trees_job,
    random_forest_job,
    staged_job,
)
from .server import RunReport, TreeServer
from .splits import CandidateSplit, best_split_for_column
from .tree import DecisionTree, TreeNode, trees_equal

__all__ = [
    "CandidateSplit",
    "ColumnSampling",
    "DecisionTree",
    "Impurity",
    "RunReport",
    "SystemConfig",
    "TrainingJob",
    "TreeConfig",
    "TreeKind",
    "TreeNode",
    "TreeServer",
    "best_split_for_column",
    "build_subtree",
    "decision_tree_job",
    "extra_trees_job",
    "load_model_hdfs",
    "load_model_local",
    "save_model_hdfs",
    "save_model_local",
    "random_forest_job",
    "staged_job",
    "train_tree",
    "trees_equal",
]
