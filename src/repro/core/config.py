"""Model hyperparameters and TreeServer system parameters.

Two distinct configuration objects, mirroring the paper's separation:

* :class:`TreeConfig` — *model* hyperparameters a user submits with a
  training job (``d_max``, ``tau_leaf``, impurity, column ratio, tree type —
  the per-job boxes in Fig. 2).
* :class:`SystemConfig` — *system* tuning knobs of the TreeServer deployment
  (``tau_D``, ``tau_dfs``, ``n_pool``, column replication ``k``, machine and
  comper counts — Section III "Task Scheduling" and Section VIII defaults).

The paper's defaults are ``tau_D = 10_000``, ``tau_dfs = 80_000``,
``n_pool = 200``, ``k = 2``, 15 machines × 10 compers; those run against
datasets of up to 54 M rows.  Our synthetic datasets are hundreds of times
smaller, so :meth:`SystemConfig.scaled_to` derives proportional thresholds —
the *ratios* between ``tau_D``, ``tau_dfs`` and the dataset size are what the
scheduling behaviour depends on.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace

from .impurity import Impurity


class TreeKind(enum.Enum):
    """Tree flavour: exact CART-style tree or completely-random extra-tree."""

    DECISION = "decision"
    EXTRA = "extra"


#: Training-kernel implementations accepted by ``TreeConfig.kernel`` (and
#: the ``REPRO_KERNEL`` env override / ``repro train --kernel`` flag).
#: ``"scalar"`` is the one-node-at-a-time reference builder;
#: ``"vectorized"`` is the level-synchronous breadth-first / depth-next
#: kernel in :mod:`repro.core.kernel`.  Both produce bit-identical trees.
TREE_KERNELS = ("scalar", "vectorized")

#: Split-search modes accepted by ``TreeConfig.split_mode`` (and the
#: ``repro train --split-mode`` flag).  ``"exact"`` is the paper's exact
#: per-boundary scan; ``"hist"`` scores equi-depth histogram prefix cuts
#: (PLANET / MLlib ``maxBins`` style, see :mod:`repro.core.histogram`) so
#: column-task workers ship O(bins) summaries instead of exact results
#: and subtree gathers ship small bin codes instead of float64 columns.
SPLIT_MODES = ("exact", "hist")


class ColumnSampling(enum.Enum):
    """How the candidate attribute set ``C`` is drawn for each tree."""

    ALL = "all"  # |C| = |A| (single decision trees in the paper)
    SQRT = "sqrt"  # |C| = sqrt(|A|) (random forests in the paper)
    RATIO = "ratio"  # |C| = ratio * |A| (Table VIII(c,d) sweeps)


@dataclass(frozen=True)
class TreeConfig:
    """Hyperparameters of a single tree (or every tree of an ensemble job).

    Parameters
    ----------
    max_depth:
        The paper's ``d_max``; ``None`` means unbounded (deep-forest CF
        stage trains with ``d_max = infinity``).
    tau_leaf:
        Stop splitting when ``|D_x| <= tau_leaf`` (default 1, as in the
        paper's experiments).
    criterion:
        Impurity function; ``None`` selects the paper default (Gini for
        classification, variance for regression).
    column_sampling / column_ratio:
        Strategy for drawing the candidate set ``C`` per tree.
    tree_kind:
        Exact decision tree or completely-random extra-tree.
    min_impurity_decrease:
        A node is split only if the weighted child impurity improves on the
        parent impurity by more than this (exact trees only; extra-trees
        always split when a valid random split exists).
    seed:
        Seed for all per-tree randomness (column sampling, extra-tree
        thresholds).  Per-node randomness is derived from ``(seed, node
        path)`` so serial and distributed training draw identical values.
    kernel:
        Which subtree-training kernel executes this tree's CPU-bound node
        construction: ``"vectorized"`` (default — the level-synchronous
        breadth-first / depth-next kernel) or ``"scalar"`` (the one-node-
        at-a-time reference builder).  The two are bit-identical; the
        choice only affects wall-clock.  Travels inside every task plan,
        so all runtime backends honour it.
    split_mode:
        ``"exact"`` (default — the paper's exact per-boundary scan) or
        ``"hist"`` (equi-depth histogram prefix cuts over at most
        ``max_bins`` buckets, thresholds computed once per column over
        the full table at training start).  Applies to numeric columns
        of decision trees; categorical splits and extra-trees draws stay
        exact in either mode.  On columns with at most ``max_bins``
        distinct values, hist mode reproduces the exact tree
        bit-identically (see docs/RUNTIME.md, "Split modes").
    max_bins:
        Maximum histogram bucket count per numeric column in hist mode
        (MLlib's ``maxBins``; default 32, must be >= 2).  Ignored in
        exact mode.
    """

    max_depth: int | None = 10
    tau_leaf: int = 1
    criterion: Impurity | None = None
    column_sampling: ColumnSampling = ColumnSampling.ALL
    column_ratio: float = 1.0
    tree_kind: TreeKind = TreeKind.DECISION
    min_impurity_decrease: float = 1e-12
    seed: int = 0
    kernel: str = "vectorized"
    split_mode: str = "exact"
    max_bins: int = 32

    def __post_init__(self) -> None:
        if self.kernel not in TREE_KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; expected one of "
                f"{TREE_KERNELS}"
            )
        if self.split_mode not in SPLIT_MODES:
            raise ValueError(
                f"unknown split_mode {self.split_mode!r}; expected one of "
                f"{SPLIT_MODES}"
            )
        if self.max_bins < 2:
            raise ValueError(
                f"max_bins must be >= 2, got {self.max_bins!r}"
            )

    def resolved_criterion(self, is_classification: bool) -> Impurity:
        """The criterion to use, applying the paper's defaults."""
        if self.criterion is not None:
            return self.criterion
        return Impurity.GINI if is_classification else Impurity.VARIANCE

    def n_candidate_columns(self, n_columns: int) -> int:
        """Size of ``C`` under the configured sampling strategy."""
        if self.column_sampling is ColumnSampling.ALL:
            return n_columns
        if self.column_sampling is ColumnSampling.SQRT:
            return max(1, int(round(math.sqrt(n_columns))))
        return max(1, int(round(self.column_ratio * n_columns)))

    def with_seed(self, seed: int) -> "TreeConfig":
        """Copy of this config with a different seed (per-tree in forests)."""
        return replace(self, seed=seed)


@dataclass(frozen=True)
class SystemConfig:
    """TreeServer deployment parameters (Section III defaults).

    ``tau_subtree`` is the paper's ``tau_D`` (renamed to avoid clashing with
    the data table ``D``): nodes with ``|D_x| <= tau_subtree`` become
    CPU-bound subtree-tasks.  Nodes with ``|D_x| <= tau_dfs`` are inserted at
    the *head* of the plan deque (depth-first); larger nodes are appended at
    the tail (breadth-first).
    """

    n_workers: int = 15
    compers_per_worker: int = 10
    tau_subtree: int = 10_000
    tau_dfs: int = 80_000
    n_pool: int = 200
    column_replication: int = 2  # the paper's k
    #: B_plan insertion policy: "hybrid" (the paper's head/tail rule),
    #: "fifo" (pure breadth-first) or "lifo" (pure depth-first).  The
    #: alternatives exist for the scheduling ablation benchmark.
    scheduling_policy: str = "hybrid"
    # Simulated hardware (see repro.cluster.CostModel for semantics).
    core_ops_per_second: float = 25e6
    bandwidth_bytes_per_second: float = 125e6  # 1 GigE
    network_latency_seconds: float = 5e-4

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("need at least one worker")
        if self.compers_per_worker < 1:
            raise ValueError("need at least one comper per worker")
        if self.tau_dfs < self.tau_subtree:
            raise ValueError("tau_dfs must be >= tau_subtree (paper Fig. 4)")
        if self.column_replication < 1:
            raise ValueError("column replication k must be >= 1")
        if self.n_pool < 1:
            raise ValueError("n_pool must be >= 1")
        if self.scheduling_policy not in ("hybrid", "fifo", "lifo"):
            raise ValueError(
                f"unknown scheduling policy {self.scheduling_policy!r}"
            )

    #: Reference dataset size the paper tuned its thresholds against
    #: (tau_D = 10k and tau_dfs = 80k on multi-million-row tables; the
    #: operative ratios are roughly |D| / tau_D ~ 500 and tau_dfs / tau_D = 8).
    PAPER_REFERENCE_ROWS = 5_000_000

    def scaled_to(self, n_rows: int) -> "SystemConfig":
        """Derive thresholds proportional to a (smaller) dataset size.

        Keeps ``tau_dfs / tau_subtree = 8`` and ``n_rows / tau_subtree ~ 500``
        as in the paper's default setting, with floors so tiny test datasets
        still exercise both task types.
        """
        scale = n_rows / self.PAPER_REFERENCE_ROWS
        tau_subtree = max(32, int(round(self.tau_subtree * scale)))
        tau_dfs = max(tau_subtree, int(round(self.tau_dfs * scale)))
        return replace(self, tau_subtree=tau_subtree, tau_dfs=tau_dfs)


@dataclass
class JobOptions:
    """Per-job knobs that are neither model nor deployment parameters."""

    #: Train each tree on a bootstrap sample of the rows (off by default —
    #: the paper's random forests randomize over attribute subsets only).
    bootstrap_rows: bool = False
    #: Extra metadata propagated into reports.
    tags: dict[str, str] = field(default_factory=dict)
