"""Equi-depth histogram split machinery — the ``split_mode="hist"`` path.

The paper's TreeServer computes *exact* splits: a column-task worker scans
every distinct-value boundary of its columns and the result it ships is
already O(1) per column.  The communication-heavy part of the protocol is
elsewhere — subtree-task gathers ship whole float64 column slices, and the
related PLANET / MLlib / PV-Tree line of work replaces exact scans with
equi-depth histograms precisely to shrink what travels.  This module is
that machinery, promoted from ``repro.baselines.histogram`` into the core
engine behind the existing task seam:

* :func:`equi_depth_thresholds` / :func:`bin_indices` — candidate
  thresholds per column (computed **once over the full table** at training
  start and shipped to every machine) and the per-row bucket codes.
* :class:`ColumnHistogram` — the per-(node, column) summary a column-task
  worker ships instead of an exact split: per-bin class counts
  (classification) or per-bin ``(count, sum, sum-of-squares)``
  (regression), plus the node-local missing-row count.
* :func:`score_histogram` — the master-side O(bins) prefix-cut scoring
  that turns a summary into a :class:`~repro.core.splits.CandidateSplit`.
* :func:`encode_bin_codes` / :func:`decode_bin_codes` — the subtree-task
  data plane: column servers ship int8/int16 bucket codes instead of
  float64 values, and the key worker decodes them into *pseudo-values*
  (the bucket's threshold) that rebin and route exactly like the
  originals.

**Exact-collapse guarantee.**  When a column has at most ``max_bins``
distinct present values, the thresholds are exactly the distinct values
(all but the largest), every prefix cut corresponds 1:1 to an exact-scan
boundary, and the integer statistics make the scores bit-identical — so
hist mode reproduces the exact-mode tree bit-for-bit on such columns.
The scorer keeps the exact scan's deterministic tie rules: within a
column the *first* minimum (smallest threshold) wins, across columns the
strictly smaller ``(score, column)`` key wins.

**Node-local accounting.**  Every statistic here — including
``n_missing`` and the derived ``missing_to_left`` — is computed from the
rows of the node being split, never from whole-table bins, so the
delegate-protocol invariant ``|I_xl| + |I_xr| = |I_x|`` holds for every
node (the master asserts it on every ``split_done``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.schema import ColumnKind
from .impurity import (
    Impurity,
    classification_impurity_rows,
    variance_rows,
    weighted_children_impurity,
)
from .splits import CandidateSplit

#: A threshold book: ``{max_bins: {column: thresholds array}}``, covering
#: every numeric column of the table for every distinct ``max_bins`` any
#: submitted hist-mode tree uses.  Computed once at training start from
#: the full table and shipped to the master and every worker, so every
#: machine bins against identical global thresholds.
ThresholdBook = dict[int, dict[int, np.ndarray]]


def hist_active(config) -> bool:
    """Whether a tree config trains with histogram splits.

    Histogram mode applies to decision trees only: extra-trees draw
    random thresholds from the actual node values (Appendix F) and are
    unaffected by ``split_mode``.
    """
    from .config import TreeKind

    return config.split_mode == "hist" and config.tree_kind is TreeKind.DECISION


# ----------------------------------------------------------------------
# thresholds and bucket codes
# ----------------------------------------------------------------------
def equi_depth_thresholds(values: np.ndarray, max_bins: int) -> np.ndarray:
    """Candidate thresholds: at most ``max_bins - 1`` equi-depth quantiles.

    Computed once per column over the whole table at training start, as in
    MLlib's ``findSplits``; missing values are ignored.  Columns with at
    most ``max_bins`` distinct present values collapse to their *exact*
    distinct values (all but the largest — a threshold equal to the
    maximum would send everything left), which is what makes hist mode
    bit-identical to exact mode on low-cardinality columns; sampling
    quantile positions alone would skip distinct values on skewed
    distributions.  Degenerate columns (all-NaN, constant, or quantiles
    collapsing onto the maximum) return an empty array, meaning "no split
    candidates" — never an exception downstream.
    """
    if max_bins < 2:
        raise ValueError("max_bins must be >= 2")
    values = np.asarray(values, dtype=np.float64)
    present = values[~np.isnan(values)]
    if present.size == 0:
        return np.empty(0)
    distinct = np.unique(present)
    if distinct.size <= max_bins:
        # Exact collapse: one bucket per distinct value.
        return distinct[:-1]
    qs = np.linspace(0.0, 1.0, max_bins + 1)[1:-1]
    # method="lower": candidates are actual data values, as in MLlib.
    thresholds = np.unique(np.quantile(present, qs, method="lower"))
    return thresholds[thresholds < distinct[-1]]


def bin_indices(values: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
    """Bucket index per row: ``searchsorted`` over the thresholds.

    Bin ``b`` contains rows with ``thresholds[b-1] < v <= thresholds[b]``
    (the last bin, index ``len(thresholds)``, holds everything above the
    largest threshold); missing values get bin ``-1``.  An empty
    thresholds array puts every present row in bin 0 — downstream scoring
    treats that as "no split" cleanly.
    """
    bins = np.searchsorted(thresholds, values, side="left").astype(np.int64)
    bins[np.isnan(values)] = -1
    return bins


def bin_code_dtype(n_thresholds: int) -> np.dtype:
    """Smallest signed integer dtype holding codes ``-1..n_thresholds``."""
    if n_thresholds <= np.iinfo(np.int8).max:
        return np.dtype(np.int8)
    if n_thresholds <= np.iinfo(np.int16).max:
        return np.dtype(np.int16)
    return np.dtype(np.int32)


def encode_bin_codes(values: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
    """Compact bucket codes of a column slice for the wire (1–2 bytes/row)."""
    return bin_indices(values, thresholds).astype(bin_code_dtype(thresholds.size))


def decode_bin_codes(codes: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
    """Pseudo-values for received bucket codes.

    Code ``b < len(thresholds)`` maps to ``thresholds[b]``, the overflow
    bucket to ``+inf``, missing (``-1``) to NaN.  Because thresholds
    strictly increase, ``pseudo <= t`` holds exactly when the original
    value satisfied ``v <= t`` for every candidate threshold ``t`` — so
    rebinning and routing pseudo-values is identical to routing the
    originals, which is what lets a key worker run a whole hist-mode
    subtree on decoded columns.
    """
    ext = np.empty(thresholds.size + 1, dtype=np.float64)
    ext[: thresholds.size] = thresholds
    ext[thresholds.size] = np.inf
    out = ext[np.maximum(codes, 0).astype(np.int64)]
    out[codes < 0] = np.nan
    return out


# ----------------------------------------------------------------------
# per-(node, column) summaries and prefix-cut scoring
# ----------------------------------------------------------------------
@dataclass
class ColumnHistogram:
    """Sufficient split statistics of one column at one node.

    This is what a hist-mode column-task worker ships to the master in
    place of an exact :class:`~repro.core.splits.CandidateSplit`: O(bins)
    integers/floats per column instead of an O(rows) scan result.
    ``counts`` is the ``(n_bins, n_classes)`` class-count matrix
    (classification); ``bin_counts`` / ``y_sum`` / ``y_sq_sum`` are the
    per-bin regression triples.  ``n_missing`` is the **node-local**
    missing-row count (rows of this node with NaN in this column).
    """

    column: int
    n_missing: int = 0
    counts: np.ndarray | None = None
    bin_counts: np.ndarray | None = None
    y_sum: np.ndarray | None = None
    y_sq_sum: np.ndarray | None = None


def column_histogram(
    column: int,
    codes: np.ndarray,
    y: np.ndarray,
    n_bins: int,
    criterion: Impurity,
    n_classes: int,
) -> ColumnHistogram:
    """Accumulate one node's per-bin statistics from its own rows.

    ``codes`` are the node rows' bucket codes (``-1`` missing), so every
    statistic — including ``n_missing`` — is node-local by construction.
    """
    present = codes >= 0
    n_missing = int(codes.size - present.sum())
    b = codes[present].astype(np.int64)
    ys = y[present]
    if criterion.is_classification:
        flat = b * n_classes + ys.astype(np.int64)
        counts = np.bincount(flat, minlength=n_bins * n_classes).reshape(
            n_bins, n_classes
        )
        return ColumnHistogram(column=column, n_missing=n_missing, counts=counts)
    return ColumnHistogram(
        column=column,
        n_missing=n_missing,
        bin_counts=np.bincount(b, minlength=n_bins),
        y_sum=np.bincount(b, weights=ys, minlength=n_bins),
        y_sq_sum=np.bincount(b, weights=ys * ys, minlength=n_bins),
    )


def score_histogram(
    hist: ColumnHistogram,
    thresholds: np.ndarray,
    criterion: Impurity,
) -> CandidateSplit | None:
    """Best prefix cut of one node-local histogram.

    The master-side half of the hist column-task: O(bins) work per
    column.  Tie rules match the exact scan — ``np.argmin`` over cuts in
    ascending-threshold order picks the *first* minimum, i.e. the
    smallest threshold; invalid cuts (an empty child) are masked to
    ``inf``; ``None`` means "this column offers no split".  Missing rows
    join the larger child, counted from the node's own rows.
    """
    if thresholds.size == 0:
        return None
    n_missing = hist.n_missing
    if criterion.is_classification:
        stats = hist.counts.astype(np.float64)
        cum = np.cumsum(stats, axis=0)[:-1]  # prefix: "bin <= t" per cut
        total = stats.sum(axis=0)
        n_left = cum.sum(axis=1)
        n_right = total.sum() - n_left
        left_imp = classification_impurity_rows(cum, criterion)
        right_imp = classification_impurity_rows(total[None, :] - cum, criterion)
    else:
        counts = hist.bin_counts.astype(np.float64)
        c_cum = np.cumsum(counts)[:-1]
        s_cum = np.cumsum(hist.y_sum)[:-1]
        q_cum = np.cumsum(hist.y_sq_sum)[:-1]
        n_left = c_cum
        n_right = counts.sum() - c_cum
        left_imp = variance_rows(c_cum, s_cum, q_cum)
        right_imp = variance_rows(
            counts.sum() - c_cum,
            hist.y_sum.sum() - s_cum,
            hist.y_sq_sum.sum() - q_cum,
        )
    valid = (n_left > 0) & (n_right > 0)
    if not valid.any():
        return None
    scores = weighted_children_impurity(left_imp, n_left, right_imp, n_right)
    scores = np.where(valid, scores, np.inf)
    best = int(np.argmin(scores))  # first minimum == smallest threshold
    nl, nr = int(n_left[best]), int(n_right[best])
    return CandidateSplit(
        column=hist.column,
        kind=ColumnKind.NUMERIC,
        score=float(scores[best]),
        n_left=nl + (n_missing if nl >= nr else 0),
        n_right=nr + (0 if nl >= nr else n_missing),
        threshold=float(thresholds[best]),
        n_missing=n_missing,
        missing_to_left=nl >= nr,
    )


def best_binned_numeric_split(
    column: int,
    bins: np.ndarray,
    thresholds: np.ndarray,
    y: np.ndarray,
    criterion: Impurity,
    n_classes: int,
) -> CandidateSplit | None:
    """Best candidate threshold from a node's pre-binned values.

    Convenience composition of :func:`column_histogram` and
    :func:`score_histogram` — the scalar builder's hist split search, and
    the promoted replacement of the ``baselines.histogram`` prototype.
    ``bins`` must be the **node's own rows'** codes; whole-table bins
    handed as a slice are fine (the slice is node-local), but statistics
    are always derived from exactly what is passed in.
    """
    present = bins >= 0
    if int(present.sum()) < 2 or thresholds.size == 0:
        return None
    hist = column_histogram(
        column, bins, y, len(thresholds) + 1, criterion, n_classes
    )
    return score_histogram(hist, thresholds, criterion)


# ----------------------------------------------------------------------
# the threshold book: computed once, shipped everywhere
# ----------------------------------------------------------------------
def column_thresholds(table, max_bins: int) -> dict[int, np.ndarray]:
    """Equi-depth thresholds of every numeric column of a table."""
    out: dict[int, np.ndarray] = {}
    for idx, spec in enumerate(table.schema.columns):
        if spec.kind is ColumnKind.NUMERIC:
            out[idx] = equi_depth_thresholds(table.column(idx), max_bins)
    return out


def hist_bin_counts(jobs) -> tuple[int, ...]:
    """Distinct ``max_bins`` values across all hist-mode trees of jobs."""
    bins = {
        tree.config.max_bins
        for job in jobs
        for stage in job.stages
        for tree in stage.trees
        if hist_active(tree.config)
    }
    return tuple(sorted(bins))


def build_threshold_book(table, jobs) -> ThresholdBook:
    """The threshold book for a run: empty when no job trains hist-mode."""
    return {mb: column_thresholds(table, mb) for mb in hist_bin_counts(jobs)}


def book_for_config(
    book: ThresholdBook | None, config
) -> dict[int, np.ndarray] | None:
    """This config's per-column thresholds, or ``None`` outside hist mode."""
    if not hist_active(config):
        return None
    thresholds = (book or {}).get(config.max_bins)
    if thresholds is None:
        raise RuntimeError(
            f"no thresholds for max_bins={config.max_bins} in the shipped "
            f"book (present: {sorted(book or {})}); the driver must build "
            f"the book from the submitted jobs before dispatch"
        )
    return thresholds


def book_to_wire(book: ThresholdBook) -> dict:
    """JSON-able form of a threshold book (socket rendezvous welcome).

    Control frames are JSON, never pickle; Python's ``repr``-based float
    serialization round-trips every float64 exactly, so the decoded book
    is bit-identical on the worker side.
    """
    return {
        str(mb): {
            str(col): [float(v) for v in arr] for col, arr in cols.items()
        }
        for mb, cols in book.items()
    }


def book_from_wire(wire: dict) -> ThresholdBook:
    """Decode :func:`book_to_wire` back into numpy-array form."""
    return {
        int(mb): {
            int(col): np.asarray(vals, dtype=np.float64)
            for col, vals in cols.items()
        }
        for mb, cols in wire.items()
    }
