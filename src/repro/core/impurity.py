"""Impurity functions for node-split scoring.

The paper evaluates node splits with an impurity function: Gini index or
entropy of the ``Y`` labels for classification, and variance of the ``Y``
values for regression (Section II).  All functions here operate on
*sufficient statistics* — class-count vectors for classification and
``(count, sum, sum of squares)`` triples for regression — because that is
what the split-search scans accumulate incrementally, and what column-task
workers could ship in messages.

Vectorized variants accept 2-D stacks of statistics so a split scan can
score every candidate boundary of a sorted column in one NumPy pass.
"""

from __future__ import annotations

import enum

import numpy as np


class Impurity(enum.Enum):
    """User-selectable impurity criterion (a model hyperparameter, Fig. 2)."""

    GINI = "gini"
    ENTROPY = "entropy"
    VARIANCE = "variance"

    @property
    def is_classification(self) -> bool:
        """Whether this criterion scores class-count statistics."""
        return self is not Impurity.VARIANCE


def gini(counts: np.ndarray) -> float:
    """Gini index of one class-count vector: ``1 - sum_k p_k^2``."""
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.dot(p, p))


def entropy(counts: np.ndarray) -> float:
    """Shannon entropy (nats) of one class-count vector."""
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log(p)).sum())


def variance(count: float, total: float, total_sq: float) -> float:
    """Variance of ``Y`` values from ``(n, sum, sum of squares)``."""
    if count == 0:
        return 0.0
    mean = total / count
    return max(0.0, total_sq / count - mean * mean)


def classification_impurity(counts: np.ndarray, criterion: Impurity) -> float:
    """Dispatch Gini or entropy for one class-count vector."""
    if criterion is Impurity.GINI:
        return gini(counts)
    if criterion is Impurity.ENTROPY:
        return entropy(counts)
    raise ValueError(f"{criterion} is not a classification criterion")


def gini_rows(counts: np.ndarray) -> np.ndarray:
    """Gini per row of a ``(m, k)`` class-count matrix."""
    totals = counts.sum(axis=1)
    safe = np.where(totals == 0, 1.0, totals)
    p = counts / safe[:, None]
    out = 1.0 - (p * p).sum(axis=1)
    out[totals == 0] = 0.0
    return out


def entropy_rows(counts: np.ndarray) -> np.ndarray:
    """Entropy (nats) per row of a ``(m, k)`` class-count matrix."""
    totals = counts.sum(axis=1)
    safe = np.where(totals == 0, 1.0, totals)
    p = counts / safe[:, None]
    with np.errstate(divide="ignore", invalid="ignore"):
        logp = np.where(p > 0, np.log(p), 0.0)
    out = -(p * logp).sum(axis=1)
    out[totals == 0] = 0.0
    return out


def classification_impurity_rows(
    counts: np.ndarray, criterion: Impurity
) -> np.ndarray:
    """Vectorized Gini/entropy over a stack of class-count vectors."""
    if criterion is Impurity.GINI:
        return gini_rows(counts)
    if criterion is Impurity.ENTROPY:
        return entropy_rows(counts)
    raise ValueError(f"{criterion} is not a classification criterion")


def variance_rows(
    counts: np.ndarray, sums: np.ndarray, sq_sums: np.ndarray
) -> np.ndarray:
    """Vectorized variance over parallel ``(n, sum, sum_sq)`` arrays."""
    safe = np.where(counts == 0, 1.0, counts)
    means = sums / safe
    out = sq_sums / safe - means * means
    out[counts == 0] = 0.0
    return np.maximum(out, 0.0)


def weighted_children_impurity(
    left_impurity: np.ndarray | float,
    left_weight: np.ndarray | float,
    right_impurity: np.ndarray | float,
    right_weight: np.ndarray | float,
) -> np.ndarray | float:
    """Size-weighted mean impurity of a candidate (left, right) split.

    This is the quantity the split search minimizes; the parent impurity is
    a constant per node, so minimizing the weighted child impurity maximizes
    the impurity decrease the paper describes.
    """
    total = left_weight + right_weight
    if np.isscalar(total):
        if total == 0:
            return 0.0
        return (
            left_weight * left_impurity + right_weight * right_impurity
        ) / total
    safe = np.where(total == 0, 1.0, total)
    out = (left_weight * left_impurity + right_weight * right_impurity) / safe
    return np.where(total == 0, 0.0, out)


def default_impurity(is_classification: bool) -> Impurity:
    """The paper's default criteria: Gini for classification, variance else."""
    return Impurity.GINI if is_classification else Impurity.VARIANCE
