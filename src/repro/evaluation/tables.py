"""Paper-style table rendering for benchmark output.

Each benchmark prints a table shaped like its counterpart in the paper's
Section VIII (same rows, same column meanings), so a reader can put them
side by side.  Values are simulated seconds and real model quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .harness import ExperimentRow


def format_table(
    title: str, headers: list[str], rows: list[list[str]]
) -> str:
    """Monospace table with a title rule."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(h for h in headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


@dataclass
class ComparisonTable:
    """Accumulates rows of a Table II-style system comparison."""

    title: str
    systems: list[str]
    rows: dict[str, dict[str, ExperimentRow]] = field(default_factory=dict)

    def add(self, row: ExperimentRow) -> None:
        """Record one measurement."""
        self.rows.setdefault(row.dataset, {})[row.system] = row

    def render(self) -> str:
        """Paper-style layout: dataset | per-system (time, quality)."""
        headers = ["Dataset"]
        for system in self.systems:
            headers += [f"{system} time(s)", f"{system} quality"]
        body = []
        for dataset, by_system in self.rows.items():
            line = [dataset]
            for system in self.systems:
                row = by_system.get(system)
                if row is None:
                    line += ["-", "-"]
                else:
                    line += [f"{row.sim_seconds:.2f}", row.quality_str()]
            body.append(line)
        return format_table(self.title, headers, body)

    def speedup(self, dataset: str, base: str, other: str) -> float:
        """``other`` time divided by ``base`` time for one dataset."""
        by_system = self.rows[dataset]
        return by_system[other].sim_seconds / by_system[base].sim_seconds


def sweep_table(
    title: str,
    param_name: str,
    results: list[tuple[object, ExperimentRow]],
    extra_columns: dict[str, list[str]] | None = None,
) -> str:
    """Render a parameter-sweep table (Tables III/IV/V/VIII style)."""
    headers = [param_name, "time(s)", "quality"]
    extras = extra_columns or {}
    headers += list(extras)
    body = []
    for i, (value, row) in enumerate(results):
        line = [str(value), f"{row.sim_seconds:.2f}", row.quality_str()]
        for name in extras:
            line.append(extras[name][i])
        body.append(line)
    return format_table(title, headers, body)
