"""Experiment harness: run each system on a dataset, score and time it.

Every benchmark in ``benchmarks/`` is a thin parameter sweep over these
runners.  A run returns an :class:`ExperimentRow` carrying the simulated
training seconds, the paper's quality metric (accuracy, or RMSE for the
regression dataset) on a held-out test split, and the system's run metrics
— the same columns the paper's tables print.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines.planet import PlanetConfig, PlanetTrainer
from ..baselines.xgboost_like import XGBoostConfig, XGBoostTrainer
from ..cluster.cost import CostModel
from ..core.config import ColumnSampling, SystemConfig, TreeConfig
from ..core.jobs import decision_tree_job, random_forest_job
from ..core.server import TreeServer
from ..core.tree import DecisionTree
from ..data.schema import ProblemKind
from ..data.table import DataTable
from ..datasets.registry import dataset_spec
from ..datasets.synthetic import train_test
from ..ensemble.forest import ForestModel
from .metrics import accuracy, rmse


@dataclass
class ExperimentRow:
    """One (system, dataset, configuration) measurement."""

    system: str
    dataset: str
    sim_seconds: float
    quality: float
    quality_metric: str  # "accuracy" | "rmse"
    params: dict[str, object] = field(default_factory=dict)
    cpu_percent: float | None = None
    send_mbps: float | None = None
    peak_memory_mb: float | None = None

    def quality_str(self) -> str:
        """Paper-style rendering: percent for accuracy, plain for RMSE."""
        if self.quality_metric == "accuracy":
            return f"{self.quality * 100:.2f}%"
        return f"{self.quality:.4f}"


def load_dataset(
    name: str, small: bool = False, test_fraction: float = 0.25
) -> tuple[DataTable, DataTable]:
    """Train/test split of a registry dataset."""
    return train_test(dataset_spec(name, small=small), test_fraction)


def _score(table: DataTable, y_pred) -> tuple[float, str]:
    if table.problem is ProblemKind.CLASSIFICATION:
        return accuracy(table.target, y_pred), "accuracy"
    return rmse(table.target, y_pred), "rmse"


def cached_predict(model, table: DataTable):
    """Score through the serving registry's compiled kernel when possible.

    Tree/forest models are compiled once per content hash and every repeat
    evaluation of the same model (parameter sweeps re-score constantly)
    reuses the flat arrays — output is parity-tested identical to
    ``model.predict``.  Other model shapes (e.g. GBDT, whose prediction is
    a weighted sum, not a PMF average) fall back to their own ``predict``.
    """
    if isinstance(model, (DecisionTree, ForestModel)):
        from ..serving.registry import default_registry

        entry, _ = default_registry().get_or_compile(model)
        return entry.predictor.predict(table)
    return model.predict(table)


def run_treeserver(
    dataset: str,
    train: DataTable,
    test: DataTable,
    tree_config: TreeConfig | None = None,
    n_trees: int = 1,
    system: SystemConfig | None = None,
    seed: int = 0,
) -> ExperimentRow:
    """Train a decision tree (``n_trees == 1``) or random forest on the
    simulated TreeServer deployment."""
    cfg = tree_config or TreeConfig()
    sys_cfg = (system or SystemConfig()).scaled_to(train.n_rows)
    if n_trees == 1:
        job = decision_tree_job("model", cfg)
    else:
        job = random_forest_job("model", n_trees, cfg, seed=seed)
    report = TreeServer(sys_cfg).fit(train, [job])
    model = report.forest("model") if n_trees > 1 else report.tree("model")
    quality, metric = _score(test, cached_predict(model, test))
    return ExperimentRow(
        system="TreeServer",
        dataset=dataset,
        sim_seconds=report.sim_seconds,
        quality=quality,
        quality_metric=metric,
        params={"n_trees": n_trees, "workers": sys_cfg.n_workers,
                "compers": sys_cfg.compers_per_worker},
        cpu_percent=report.cluster.avg_worker_cpu_percent,
        send_mbps=report.cluster.avg_worker_send_mbps,
        peak_memory_mb=report.cluster.avg_peak_memory_bytes / 1e6,
    )


def run_mllib(
    dataset: str,
    train: DataTable,
    test: DataTable,
    tree_config: TreeConfig | None = None,
    n_trees: int = 1,
    planet_config: PlanetConfig | None = None,
    single_thread: bool = False,
    seed: int = 0,
) -> ExperimentRow:
    """Train with the PLANET/MLlib-style baseline (parallel or 1-thread)."""
    from dataclasses import replace

    cfg = tree_config or TreeConfig()
    if n_trees > 1 and cfg.column_sampling is ColumnSampling.ALL:
        # Forests use sqrt(|A|) columns per tree (paper Section VIII),
        # mirroring random_forest_job's normalization.
        cfg = replace(cfg, column_sampling=ColumnSampling.SQRT, seed=seed)
    planet = planet_config or PlanetConfig()
    if single_thread:
        planet = planet.single_thread()
    report = PlanetTrainer(planet).fit(train, cfg, n_trees=n_trees, seed=seed)
    model = report.forest() if n_trees > 1 else report.tree()
    quality, metric = _score(test, cached_predict(model, test))
    name = "MLlib (Single Thread)" if single_thread else "MLlib (Parallel)"
    return ExperimentRow(
        system=name,
        dataset=dataset,
        sim_seconds=report.sim_seconds,
        quality=quality,
        quality_metric=metric,
        params={"n_trees": n_trees, "max_bins": planet.max_bins},
    )


def run_xgboost(
    dataset: str,
    train: DataTable,
    test: DataTable,
    xgb_config: XGBoostConfig | None = None,
) -> ExperimentRow:
    """Train with the XGBoost-style boosting baseline."""
    cfg = xgb_config or XGBoostConfig()
    report = XGBoostTrainer(cfg).fit(train)
    quality, metric = _score(test, cached_predict(report.model, test))
    return ExperimentRow(
        system="XGBoost",
        dataset=dataset,
        sim_seconds=report.sim_seconds,
        quality=quality,
        quality_metric=metric,
        params={"n_rounds": cfg.n_rounds, "max_depth": cfg.max_depth},
    )


def serial_treeserver_seconds(
    train: DataTable, tree_config: TreeConfig | None = None,
    cost: CostModel | None = None,
) -> float:
    """Analytic single-thread single-tree TreeServer time (fairness exp.).

    The whole tree is one subtree-task on one core: the cost model's
    ``n * |C| * log n`` build charge — the quantity the paper's fairness
    experiment compares against single-thread MLlib.
    """
    cfg = tree_config or TreeConfig()
    cost = cost or CostModel()
    n_cols = cfg.n_candidate_columns(train.n_columns)
    return cost.compute_seconds(
        cost.subtree_build_ops(train.n_rows, n_cols)
    )
