"""Experiment metrics, runners and paper-style table rendering."""

from .harness import (
    ExperimentRow,
    load_dataset,
    run_mllib,
    run_treeserver,
    run_xgboost,
    serial_treeserver_seconds,
)
from .model_selection import (
    Candidate,
    CandidateResult,
    GridSearchResult,
    expand_grid,
    grid_search,
)
from .metrics import accuracy, pmf_accuracy, rmse, score
from .tables import ComparisonTable, format_table, sweep_table

__all__ = [
    "Candidate",
    "CandidateResult",
    "ComparisonTable",
    "GridSearchResult",
    "ExperimentRow",
    "accuracy",
    "expand_grid",
    "format_table",
    "grid_search",
    "load_dataset",
    "pmf_accuracy",
    "rmse",
    "run_mllib",
    "run_treeserver",
    "run_xgboost",
    "score",
    "serial_treeserver_seconds",
    "sweep_table",
]
