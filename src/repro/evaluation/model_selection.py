"""Model selection on TreeServer: many configurations, one cluster run.

The paper motivates the tree pool with exactly this workload: "in reality,
we often need to train many tree models with different hyperparameters for
model selection ... T-thinker trains all these trees together so that we
can have more node-centric tasks to keep CPUs busy" (Section III).

:func:`grid_search` submits every candidate configuration as a job in a
*single* ``TreeServer.fit`` call — all candidates' node-centric tasks mix
in the same pool — then scores each candidate on a held-out validation
split and returns the winner, together with the run's simulated time for
comparison against training the candidates one by one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any

from ..core.config import SystemConfig, TreeConfig
from ..core.jobs import TrainingJob, decision_tree_job, random_forest_job
from ..core.server import TreeServer
from ..data.schema import ProblemKind
from ..data.table import DataTable
from .metrics import accuracy, rmse


@dataclass(frozen=True)
class Candidate:
    """One hyperparameter combination under evaluation."""

    name: str
    config: TreeConfig
    n_trees: int = 1


@dataclass
class CandidateResult:
    """Validation outcome of one candidate."""

    candidate: Candidate
    quality: float
    quality_metric: str

    def better_than(self, other: "CandidateResult") -> bool:
        """Quality comparison respecting the metric's direction."""
        if self.quality_metric == "rmse":
            return self.quality < other.quality
        return self.quality > other.quality


@dataclass
class GridSearchResult:
    """Everything a grid search produced."""

    best: CandidateResult
    results: list[CandidateResult]
    sim_seconds: float
    sequential_sim_seconds: float = 0.0
    models: dict[str, Any] = field(default_factory=dict)

    def ranking(self) -> list[CandidateResult]:
        """Candidates from best to worst."""
        reverse = self.results[0].quality_metric != "rmse"
        return sorted(self.results, key=lambda r: r.quality, reverse=reverse)


def expand_grid(
    base: TreeConfig, grid: dict[str, list], n_trees: int = 1
) -> list[Candidate]:
    """Cartesian expansion of a parameter grid over :class:`TreeConfig`.

    ``grid`` maps TreeConfig field names to candidate values, e.g.
    ``{"max_depth": [4, 8, 12], "tau_leaf": [1, 16]}``.
    """
    if not grid:
        raise ValueError("empty parameter grid")
    names = sorted(grid)
    candidates = []
    for values in itertools.product(*(grid[n] for n in names)):
        overrides = dict(zip(names, values))
        label = ",".join(f"{k}={v}" for k, v in overrides.items())
        candidates.append(
            Candidate(
                name=label,
                config=replace(base, **overrides),
                n_trees=n_trees,
            )
        )
    return candidates


def grid_search(
    table: DataTable,
    candidates: list[Candidate],
    system: SystemConfig | None = None,
    validation_fraction: float = 0.25,
    seed: int = 0,
) -> GridSearchResult:
    """Train all candidates in one TreeServer run; pick the best.

    The validation split is carved off deterministically; every candidate
    trains on the same training fold.
    """
    if not candidates:
        raise ValueError("no candidates")
    names = [c.name for c in candidates]
    if len(set(names)) != len(names):
        raise ValueError("candidate names must be unique")
    train, valid = table.split_train_test(validation_fraction, seed=seed)
    sys_cfg = (system or SystemConfig()).scaled_to(train.n_rows)

    jobs: list[TrainingJob] = []
    for candidate in candidates:
        if candidate.n_trees == 1:
            jobs.append(decision_tree_job(candidate.name, candidate.config))
        else:
            jobs.append(
                random_forest_job(
                    candidate.name,
                    candidate.n_trees,
                    candidate.config,
                    seed=seed,
                )
            )
    report = TreeServer(sys_cfg).fit(train, jobs)

    results: list[CandidateResult] = []
    models: dict[str, Any] = {}
    for candidate in candidates:
        model = (
            report.forest(candidate.name)
            if candidate.n_trees > 1
            else report.tree(candidate.name)
        )
        models[candidate.name] = model
        predictions = model.predict(valid)
        if table.problem is ProblemKind.CLASSIFICATION:
            result = CandidateResult(
                candidate, accuracy(valid.target, predictions), "accuracy"
            )
        else:
            result = CandidateResult(
                candidate, rmse(valid.target, predictions), "rmse"
            )
        results.append(result)

    best = results[0]
    for result in results[1:]:
        if result.better_than(best):
            best = result

    # For the pooling-benefit comparison: the same candidates trained one
    # per run (each run still parallel, but candidates not pooled).
    sequential = 0.0
    for candidate in candidates:
        if candidate.n_trees == 1:
            job = decision_tree_job(candidate.name, candidate.config)
        else:
            job = random_forest_job(
                candidate.name, candidate.n_trees, candidate.config, seed=seed
            )
        solo = TreeServer(sys_cfg).fit(train, [job])
        sequential += solo.sim_seconds

    return GridSearchResult(
        best=best,
        results=results,
        sim_seconds=report.sim_seconds,
        sequential_sim_seconds=sequential,
        models=models,
    )
