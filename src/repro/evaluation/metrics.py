"""Test-set metrics used throughout the paper's evaluation.

The paper reports *accuracy* for classification datasets and *RMSE* for the
one regression dataset (Allstate) — Table II's caption.  Deep forest layers
additionally report per-layer test accuracy from averaged PMF vectors.
"""

from __future__ import annotations

import numpy as np


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exactly matching labels."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("cannot score empty arrays")
    return float((y_true == y_pred).mean())


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("cannot score empty arrays")
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def pmf_accuracy(y_true: np.ndarray, pmf: np.ndarray) -> float:
    """Accuracy of argmax predictions from a ``(n, k)`` PMF matrix."""
    return accuracy(y_true, np.argmax(pmf, axis=1))


def score(problem_is_classification: bool, y_true, y_pred) -> float:
    """Paper-style single score: accuracy for classification, RMSE else."""
    if problem_is_classification:
        return accuracy(y_true, y_pred)
    return rmse(y_true, y_pred)
