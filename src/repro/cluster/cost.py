"""Cost model: how many ops / bytes each action in the protocol costs.

The master's load-balancing decisions (paper Section VI) and the simulated
clock both consume these estimates.  Units are abstract "ops" for compute
(the paper: *"the unit does not matter as long as they are the same for all
workers"*) and bytes for communication.

The defaults approximate the paper's testbed: 2.67 GHz Xeons doing a few
tens of millions of comparison-ish operations per second per core in the
tree-training inner loop, and 1 GigE links (125 MB/s).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def log2_ceil(n: int) -> float:
    """``log2(n)`` floored at 1 — the tree-height / sort-depth factor."""
    return max(1.0, math.log2(max(2, n)))


@dataclass(frozen=True)
class CostModel:
    """Unit costs for compute, communication and payload sizes."""

    ops_per_second: float = 25e6
    bandwidth_bytes_per_second: float = 125e6
    latency_seconds: float = 5e-4

    row_id_bytes: int = 8
    value_bytes: int = 8
    #: Fixed overhead of any control message (headers, task ids).
    control_bytes: int = 128
    #: Serialized size of one per-column best-split result.
    split_result_bytes: int = 96
    #: Serialized size of one tree node in a subtree-result message.
    node_bytes: int = 64
    #: Per-connection cost of opening a (simulated) HDFS file stream.
    hdfs_connection_seconds: float = 5e-3

    # ------------------------------------------------------------------
    # compute costs (abstract ops)
    # ------------------------------------------------------------------
    def split_search_ops(self, n_rows: int) -> float:
        """Exact best-split search over one column of ``n`` rows.

        Sort-dominated: ``n log n`` (paper Appendix B, Case 1; Cases 2-3 are
        cheaper but we charge uniformly, as the paper's load model does by
        assuming one-pass-amenable attributes).
        """
        return n_rows * log2_ceil(n_rows)

    def subtree_build_ops(self, n_rows: int, n_columns: int) -> float:
        """Build a whole subtree over ``n`` rows and ``|C|`` columns.

        The paper's estimate for key-worker load: ``|I_x| * |C| * log|I_x|``
        (each tree level scans every row once per candidate column; height
        approximated as ``log|I_x|``).
        """
        return n_rows * n_columns * log2_ceil(n_rows)

    def partition_ops(self, n_rows: int) -> float:
        """Split ``I_x`` into ``I_xl``/``I_xr`` at the delegate worker."""
        return float(n_rows)

    def gather_ops(self, n_rows: int, n_columns: int) -> float:
        """Fetch ``n`` rows of ``c`` columns into a response buffer."""
        return float(n_rows * n_columns)

    def node_stats_ops(self, n_rows: int) -> float:
        """Histogram / mean computation over a node's labels."""
        return float(n_rows)

    def master_dispatch_ops(self, n_columns: int, n_workers: int) -> float:
        """Greedy worker-assignment cost for one plan at the master."""
        return 500.0 + 20.0 * n_columns * max(1, n_workers)

    # ------------------------------------------------------------------
    # message sizes (bytes)
    # ------------------------------------------------------------------
    def row_ids_bytes(self, n_rows: int) -> int:
        """Size of a row-id set ``I_x`` on the wire."""
        return self.control_bytes + self.row_id_bytes * n_rows

    def column_data_bytes(self, n_rows: int, n_columns: int) -> int:
        """Size of a column-data response for a subtree-task."""
        return self.control_bytes + self.value_bytes * n_rows * n_columns

    def plan_bytes(self, n_columns: int) -> int:
        """Size of a task-plan message (column ids + refs, *no* ``I_x`` —
        the whole point of Section V)."""
        return self.control_bytes + 16 * n_columns

    def column_result_bytes(self, n_columns: int) -> int:
        """Size of a worker's column-task result (per-column bests)."""
        return self.control_bytes + self.split_result_bytes * n_columns

    def subtree_bytes(self, n_nodes: int) -> int:
        """Size of a serialized subtree result."""
        return self.control_bytes + self.node_bytes * n_nodes

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def compute_seconds(self, ops: float) -> float:
        """Ops to seconds on one core."""
        return ops / self.ops_per_second

    def transfer_seconds(self, nbytes: int) -> float:
        """Serialization time of a message on a NIC."""
        return nbytes / self.bandwidth_bytes_per_second
