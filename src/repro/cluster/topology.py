"""Cluster assembly: engine + machines + network + actor dispatch.

A :class:`SimulatedCluster` wires one :class:`SimulationEngine`, ``n``
:class:`Machine` instances and a :class:`Network` together and routes
delivered messages to per-machine *actors* (objects with a
``handle_message(Message)`` method).  The TreeServer master and workers, and
the baselines' drivers, are all actors on this substrate.
"""

from __future__ import annotations

from typing import Protocol

from .cost import CostModel
from .machine import Machine
from .metrics import ClusterReport, collect_metrics
from .network import Message, Network
from .simulation import SimulationEngine


class Actor(Protocol):
    """Anything that can receive messages on a cluster machine."""

    def handle_message(self, message: Message) -> None:
        """Process one delivered message."""
        ...  # pragma: no cover - protocol


class SimulatedCluster:
    """The full simulated deployment.

    Machine 0 is conventionally the master (dedicated to task management —
    it never computes tasks itself, matching the paper), machines
    ``1..n_workers`` are workers.
    """

    MASTER = 0

    def __init__(
        self,
        n_workers: int,
        compers_per_worker: int,
        cost: CostModel | None = None,
        extra_machines: int = 0,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker machine")
        if extra_machines < 0:
            raise ValueError("extra_machines must be >= 0")
        self.cost = cost or CostModel()
        self.engine = SimulationEngine()
        self._n_workers = n_workers
        # machines: [master] + workers + extras (e.g. a secondary master).
        n_machines = n_workers + 1 + extra_machines
        self.machines = [
            Machine(
                self.engine,
                machine_id=i,
                # Master-role machines get one core: they only run dispatch
                # and bookkeeping, never task computation.
                n_cores=(
                    1
                    if (i == self.MASTER or i > n_workers)
                    else compers_per_worker
                ),
                ops_per_second=self.cost.ops_per_second,
            )
            for i in range(n_machines)
        ]
        self.network = Network(
            self.engine,
            n_machines,
            self.cost.bandwidth_bytes_per_second,
            self.cost.latency_seconds,
        )
        self._actors: dict[int, Actor] = {}
        self.network.on_deliver(self._dispatch)

    @property
    def n_workers(self) -> int:
        """Number of worker machines (excluding master-role machines)."""
        return self._n_workers

    def worker_ids(self) -> list[int]:
        """Machine ids of all workers."""
        return list(range(1, self._n_workers + 1))

    def register(self, machine_id: int, actor: Actor) -> None:
        """Attach an actor to a machine."""
        self._actors[machine_id] = actor

    def _dispatch(self, message: Message) -> None:
        actor = self._actors.get(message.dst)
        if actor is None:
            raise RuntimeError(
                f"message {message.kind!r} delivered to machine "
                f"{message.dst} which has no actor"
            )
        actor.handle_message(message)

    def send(
        self, src: int, dst: int, kind: str, payload, size_bytes: int
    ) -> float:
        """Send a message between machines; returns delivery time."""
        return self.network.send(src, dst, kind, payload, size_bytes)

    def run(self, max_events: int | None = None) -> ClusterReport:
        """Drain the event queue and summarize metrics."""
        self.engine.run(max_events=max_events)
        return collect_metrics(
            elapsed=self.engine.now,
            machines=self.machines,
            network=self.network,
            master_id=self.MASTER,
            events_processed=self.engine.events_processed,
        )
