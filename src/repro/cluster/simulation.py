"""Deterministic discrete-event simulation engine.

This is the clock substrate the whole distributed reproduction runs on.  The
paper measures wall-clock seconds on a 15-machine cluster; we cannot (GIL,
one machine), so every machine, core and network link charges *simulated*
seconds against this engine instead.  All protocol logic — task scheduling,
the delegate-worker row protocol, load balancing — executes for real; only
time is virtual.

Determinism: events at equal timestamps fire in insertion order (a
monotonically increasing sequence number breaks ties), so a run is a pure
function of its inputs — which the reproducibility tests assert.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an impossible state."""


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by :meth:`SimulationEngine.schedule` for cancelling."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already ran)."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._event.time


class SimulationEngine:
    """A minimal, fast event loop with virtual time.

    Usage: schedule callbacks with :meth:`schedule` / :meth:`schedule_at`,
    then :meth:`run` until the queue drains.  Callbacks may schedule further
    events; scheduling into the past raises.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[_Event] = []
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total callbacks executed so far (diagnostics)."""
        return self._events_processed

    def schedule(self, delay: float, fn: Callable[[], None]) -> EventHandle:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, fn)

    def schedule_at(self, time: float, fn: Callable[[], None]) -> EventHandle:
        """Schedule ``fn`` at an absolute virtual time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} < now {self._now} (causality)"
            )
        event = _Event(time=time, seq=self._seq, fn=fn)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def run(self, max_events: int | None = None) -> None:
        """Process events until the queue drains (or a budget is hit).

        ``max_events`` is a runaway guard for tests; exceeding it raises.
        """
        budget = max_events if max_events is not None else float("inf")
        processed = 0
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if processed >= budget:
                raise SimulationError(
                    f"exceeded event budget of {max_events} events"
                )
            self._now = event.time
            event.fn()
            processed += 1
            self._events_processed += 1

    def pending_events(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._heap)
