"""Discrete-event cluster simulator: machines, cores, network, faults.

This substrate replaces the paper's physical 15-machine / 1 GigE testbed
(see DESIGN.md, substitutions).  All protocol logic executes for real; only
the clock is virtual.
"""

from .cost import CostModel, log2_ceil
from .faults import CrashPlan, FaultInjector
from .machine import Machine, MachineStats
from .metrics import ClusterReport, MachineReport, collect_metrics, utilization_curve
from .network import DeadMachineError, Message, Network
from .simulation import EventHandle, SimulationEngine, SimulationError
from .topology import Actor, SimulatedCluster

__all__ = [
    "Actor",
    "ClusterReport",
    "CostModel",
    "CrashPlan",
    "DeadMachineError",
    "EventHandle",
    "FaultInjector",
    "Machine",
    "MachineReport",
    "MachineStats",
    "Message",
    "Network",
    "SimulatedCluster",
    "SimulationEngine",
    "SimulationError",
    "collect_metrics",
    "utilization_curve",
    "log2_ceil",
]
