"""Point-to-point message network with per-NIC bandwidth contention.

Models the paper's "Task Comm." (master <-> workers) and "Data Comm."
(worker <-> worker) channels (Fig. 6) over a shared-medium NIC per machine:
each machine serializes outgoing messages FIFO at its link bandwidth, then
the message arrives after a propagation latency.  This is the model under
which the paper's horizontal-scalability bottleneck appears — Table VI shows
the master-free data plane saturating worker NICs near 941 Mbps while the
master's own send channel stays small (because plans carry no row ids).

Local sends (``src == dst``) are free: the paper skips communication when
the requested data is local.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from .simulation import SimulationEngine


@dataclass
class Message:
    """One message on the wire."""

    src: int
    dst: int
    kind: str
    payload: Any
    size_bytes: int


class DeadMachineError(RuntimeError):
    """Raised when sending from a crashed machine (fault-injection tests)."""


class Network:
    """Per-sender FIFO serialization + fixed latency delivery."""

    def __init__(
        self,
        engine: SimulationEngine,
        n_nodes: int,
        bandwidth_bytes_per_second: float,
        latency_seconds: float,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("network needs at least one node")
        self._engine = engine
        self._bandwidth = bandwidth_bytes_per_second
        self._latency = latency_seconds
        self._sender_free_at = [0.0] * n_nodes
        self._deliver: Callable[[Message], None] | None = None
        self._dead = [False] * n_nodes
        # --- metrics ----------------------------------------------------
        self.bytes_sent = [0] * n_nodes
        self.bytes_received = [0] * n_nodes
        self.send_busy_seconds = [0.0] * n_nodes
        self.messages_sent = [0] * n_nodes
        self.bytes_by_kind: dict[str, int] = {}
        self.messages_dropped = 0

    @property
    def n_nodes(self) -> int:
        """Number of attached machines."""
        return len(self._sender_free_at)

    def on_deliver(self, handler: Callable[[Message], None]) -> None:
        """Install the delivery callback (the cluster's actor dispatch)."""
        self._deliver = handler

    def mark_dead(self, node: int) -> None:
        """Crash a machine: future sends from/to it fail or are dropped."""
        self._dead[node] = True

    def is_dead(self, node: int) -> bool:
        """Whether a machine has been crashed."""
        return self._dead[node]

    def sender_free_at(self, node: int) -> float:
        """When the node's send channel next becomes idle.

        The master's dispatch loop uses this to pace plan assignment —
        which is what makes the B_plan deque actually queue up and the
        BFS/DFS ordering matter, as in the real system.
        """
        return max(self._engine.now, self._sender_free_at[node])

    def send(
        self, src: int, dst: int, kind: str, payload: Any, size_bytes: int
    ) -> float:
        """Enqueue a message; returns its delivery time.

        Charges serialization on the sender's NIC unless ``src == dst``.
        Messages to a crashed machine are silently dropped (the sender
        cannot know); sending *from* a crashed machine raises, because the
        engine must never execute logic on a dead worker.
        """
        if self._deliver is None:
            raise RuntimeError("network has no delivery handler installed")
        if self._dead[src]:
            raise DeadMachineError(f"machine {src} is dead and cannot send")
        if size_bytes < 0:
            raise ValueError("message size must be non-negative")

        message = Message(src, dst, kind, payload, size_bytes)
        now = self._engine.now
        if src == dst:
            deliver_at = now
        else:
            start = max(now, self._sender_free_at[src])
            serialize = size_bytes / self._bandwidth
            self._sender_free_at[src] = start + serialize
            self.send_busy_seconds[src] += serialize
            self.bytes_sent[src] += size_bytes
            self.messages_sent[src] += 1
            self.bytes_by_kind[kind] = (
                self.bytes_by_kind.get(kind, 0) + size_bytes
            )
            deliver_at = start + serialize + self._latency

        if self._dead[dst]:
            self.messages_dropped += 1
            return deliver_at
        if src != dst:
            self.bytes_received[dst] += size_bytes

        def fire() -> None:
            if self._dead[dst]:
                self.messages_dropped += 1
                return
            assert self._deliver is not None
            self._deliver(message)

        self._engine.schedule_at(deliver_at, fire)
        return deliver_at
