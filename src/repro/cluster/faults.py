"""Fault injection for the worker-crash recovery path.

The paper's fault-tolerance design (Section IV / Appendix E): a worker crash
is survivable because every column is replicated on ``k`` machines — the
master reassigns lost columns, revokes tasks the dead worker was involved
in, and re-plans them from ``B_plan``.  :class:`FaultInjector` kills a
machine at a chosen simulated time and notifies a failure handler after a
detection delay (standing in for the heartbeat the real system would use).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .machine import Machine
from .network import Network
from .simulation import SimulationEngine


@dataclass
class CrashPlan:
    """One scheduled machine crash."""

    machine_id: int
    at_time: float


class FaultInjector:
    """Schedules machine crashes and failure notifications."""

    def __init__(
        self,
        engine: SimulationEngine,
        machines: list[Machine],
        network: Network,
        detection_delay: float = 0.05,
    ) -> None:
        self._engine = engine
        self._machines = machines
        self._network = network
        self._detection_delay = detection_delay
        self._on_failure: Callable[[int], None] | None = None
        self.crashed: list[int] = []

    def on_failure_detected(self, handler: Callable[[int], None]) -> None:
        """Install the master-side handler called after crash detection."""
        self._on_failure = handler

    def schedule_crash(self, plan: CrashPlan) -> None:
        """Arrange for a machine to die at a simulated time."""

        def crash() -> None:
            machine = self._machines[plan.machine_id]
            if machine.halted:
                return
            machine.halt()
            self._network.mark_dead(plan.machine_id)
            self.crashed.append(plan.machine_id)
            if self._on_failure is not None:
                handler = self._on_failure
                self._engine.schedule(
                    self._detection_delay,
                    lambda: handler(plan.machine_id),
                )

        self._engine.schedule_at(plan.at_time, crash)
