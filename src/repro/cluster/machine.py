"""Simulated machines: multi-core execution and memory accounting.

A :class:`Machine` owns ``n_cores`` compers (the paper's computing threads).
Work items are submitted with an abstract op count; a free core runs the
item for ``ops / ops_per_second`` simulated seconds, otherwise the item
waits in a FIFO run queue — exactly the behaviour of the worker's
``B_task`` buffer drained by compers (paper Fig. 7).

Memory accounting tracks the bytes a worker holds for task data (gathered
``D_x`` tables, stored ``I_x`` row sets) on top of its resident data
columns; Table III's peak-memory-vs-``n_pool`` experiment reads these
numbers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from .simulation import SimulationEngine


@dataclass
class _WorkItem:
    ops: float
    fn: Callable[[], None]
    label: str


@dataclass
class MachineStats:
    """Counters a machine accumulates over a run."""

    busy_core_seconds: float = 0.0
    items_executed: int = 0
    ops_executed: float = 0.0
    queue_peak: int = 0
    mem_task_bytes: int = 0
    mem_task_peak: int = 0
    mem_base_bytes: int = 0
    ops_by_label: dict[str, float] = field(default_factory=dict)
    #: Optional per-item execution trace: (label, start, end).  Populated
    #: only when the machine's ``record_timeline`` flag is set.
    timeline: list[tuple[str, float, float]] = field(default_factory=list)


class Machine:
    """One simulated worker (or master) machine."""

    def __init__(
        self,
        engine: SimulationEngine,
        machine_id: int,
        n_cores: int,
        ops_per_second: float,
    ) -> None:
        if n_cores < 1:
            raise ValueError("machine needs at least one core")
        if ops_per_second <= 0:
            raise ValueError("ops_per_second must be positive")
        self._engine = engine
        self.machine_id = machine_id
        self.n_cores = n_cores
        self.ops_per_second = ops_per_second
        self._free_cores = n_cores
        self._queue: deque[_WorkItem] = deque()
        self._halted = False
        self.stats = MachineStats()
        #: Record a (label, start, end) trace of every executed item —
        #: utilization-over-time analyses; off by default (memory).
        self.record_timeline = False

    # ------------------------------------------------------------------
    # compute
    # ------------------------------------------------------------------
    def execute(
        self, ops: float, fn: Callable[[], None], label: str = "task"
    ) -> None:
        """Run ``fn`` after ``ops`` worth of simulated compute on a core.

        ``fn`` fires at completion time; if all cores are busy the item
        queues FIFO.  ``label`` feeds the per-kind ops breakdown metric.
        """
        if ops < 0:
            raise ValueError("ops must be non-negative")
        if self._halted:
            return
        item = _WorkItem(ops=ops, fn=fn, label=label)
        if self._free_cores > 0:
            self._start(item)
        else:
            self._queue.append(item)
            self.stats.queue_peak = max(self.stats.queue_peak, len(self._queue))

    def _start(self, item: _WorkItem) -> None:
        self._free_cores -= 1
        duration = item.ops / self.ops_per_second
        self.stats.busy_core_seconds += duration
        self.stats.ops_executed += item.ops
        self.stats.ops_by_label[item.label] = (
            self.stats.ops_by_label.get(item.label, 0.0) + item.ops
        )
        if self.record_timeline:
            start = self._engine.now
            self.stats.timeline.append((item.label, start, start + duration))
        self._engine.schedule(duration, lambda: self._finish(item))

    def _finish(self, item: _WorkItem) -> None:
        self._free_cores += 1
        self.stats.items_executed += 1
        if not self._halted:
            item.fn()
        while self._free_cores > 0 and self._queue and not self._halted:
            self._start(self._queue.popleft())

    @property
    def busy_cores(self) -> int:
        """Cores currently executing work."""
        return self.n_cores - self._free_cores

    @property
    def queued_items(self) -> int:
        """Items waiting for a core."""
        return len(self._queue)

    def halt(self) -> None:
        """Crash the machine: queued and future work is discarded."""
        self._halted = True
        self._queue.clear()

    @property
    def halted(self) -> bool:
        """Whether the machine has crashed."""
        return self._halted

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    def set_base_memory(self, nbytes: int) -> None:
        """Record the resident bytes of loaded data columns."""
        self.stats.mem_base_bytes = int(nbytes)

    def alloc(self, nbytes: int) -> None:
        """Charge task memory (e.g. a stored ``I_x`` or gathered ``D_x``)."""
        if nbytes < 0:
            raise ValueError("cannot alloc negative bytes")
        self.stats.mem_task_bytes += int(nbytes)
        self.stats.mem_task_peak = max(
            self.stats.mem_task_peak, self.stats.mem_task_bytes
        )

    def free(self, nbytes: int) -> None:
        """Release previously charged task memory."""
        self.stats.mem_task_bytes -= int(nbytes)
        if self.stats.mem_task_bytes < 0:
            raise RuntimeError(
                f"machine {self.machine_id} freed more task memory than allocated"
            )

    def utilization(self, elapsed: float) -> float:
        """Average core utilization in [0, 1] over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.stats.busy_core_seconds / (self.n_cores * elapsed))
