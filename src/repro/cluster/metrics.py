"""Run-level metrics in the units the paper reports.

Table VI reports, per configuration: running time (seconds), average CPU
rate (e.g. ``837%`` meaning ~8.4 cores busy on a 12-thread machine) and
average sending throughput (Mbps, saturating near 941 Mbps on 1 GigE).
Table III additionally reports peak memory per machine (GB) averaged over
machines.  :func:`collect_metrics` derives all of these from the simulator's
raw counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .machine import Machine
from .network import Network


@dataclass
class MachineReport:
    """Per-machine summary of one run."""

    machine_id: int
    cpu_percent: float
    bytes_sent: int
    bytes_received: int
    send_mbps: float
    peak_memory_bytes: int
    items_executed: int


@dataclass
class ClusterReport:
    """Whole-cluster summary of one run (paper-style units)."""

    elapsed_seconds: float
    machines: list[MachineReport] = field(default_factory=list)
    avg_worker_cpu_percent: float = 0.0
    max_worker_cpu_percent: float = 0.0
    avg_worker_send_mbps: float = 0.0
    max_worker_send_mbps: float = 0.0
    master_send_mbps: float = 0.0
    total_bytes: int = 0
    bytes_by_kind: dict[str, int] = field(default_factory=dict)
    avg_peak_memory_bytes: float = 0.0
    events_processed: int = 0
    #: Real data-plane accounting (mp backend only): pickled bytes, shm
    #: bytes mapped, coalesced batches — overall and per worker.  Empty
    #: on the simulator, where no bytes physically move.
    transport: dict = field(default_factory=dict)

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"t={self.elapsed_seconds:.2f}s cpu={self.avg_worker_cpu_percent:.0f}% "
            f"send={self.avg_worker_send_mbps:.0f}Mbps "
            f"mem={self.avg_peak_memory_bytes / 1e6:.1f}MB"
        )


def utilization_curve(
    machines: list[Machine], elapsed: float, n_bins: int = 20
) -> list[float]:
    """Average busy cores per time bin across all machines.

    Requires the machines to have run with ``record_timeline = True``.
    This is the quantity behind the paper's motivating claim — PLANET-style
    systems leave CPUs underutilized early in tree construction, while
    TreeServer's early subtree-tasks ramp utilization up quickly.
    """
    if elapsed <= 0 or n_bins < 1:
        return [0.0] * max(1, n_bins)
    width = elapsed / n_bins
    busy = [0.0] * n_bins
    for machine in machines:
        for _, start, end in machine.stats.timeline:
            first = int(start / width)
            last = min(n_bins - 1, int(end / width))
            for b in range(first, last + 1):
                lo = max(start, b * width)
                hi = min(end, (b + 1) * width)
                if hi > lo:
                    busy[b] += (hi - lo) / width
    return busy


def collect_metrics(
    elapsed: float,
    machines: list[Machine],
    network: Network,
    master_id: int = 0,
    events_processed: int = 0,
) -> ClusterReport:
    """Summarize a finished run.

    ``machines[master_id]`` is excluded from worker CPU/memory averages —
    the paper's master is dedicated to task management and its CPU rate is
    not part of the reported utilization.
    """
    report = ClusterReport(elapsed_seconds=elapsed, events_processed=events_processed)
    for machine in machines:
        mid = machine.machine_id
        sent = network.bytes_sent[mid]
        mbps = (sent * 8 / elapsed / 1e6) if elapsed > 0 else 0.0
        report.machines.append(
            MachineReport(
                machine_id=mid,
                cpu_percent=machine.utilization(elapsed) * machine.n_cores * 100,
                bytes_sent=sent,
                bytes_received=network.bytes_received[mid],
                send_mbps=mbps,
                peak_memory_bytes=machine.stats.mem_base_bytes
                + machine.stats.mem_task_peak,
                items_executed=machine.stats.items_executed,
            )
        )
    workers = [m for m in report.machines if m.machine_id != master_id]
    if workers:
        report.avg_worker_cpu_percent = sum(w.cpu_percent for w in workers) / len(
            workers
        )
        report.max_worker_cpu_percent = max(w.cpu_percent for w in workers)
        report.avg_worker_send_mbps = sum(w.send_mbps for w in workers) / len(
            workers
        )
        report.max_worker_send_mbps = max(w.send_mbps for w in workers)
        report.avg_peak_memory_bytes = sum(
            w.peak_memory_bytes for w in workers
        ) / len(workers)
    master = next(
        (m for m in report.machines if m.machine_id == master_id), None
    )
    if master is not None:
        report.master_send_mbps = master.send_mbps
    report.total_bytes = sum(network.bytes_sent)
    report.bytes_by_kind = dict(network.bytes_by_kind)
    return report
