"""Synthetic tabular dataset generator with planted structure.

The paper evaluates on 11 public datasets (Table I) that we cannot download
in this offline environment.  What the evaluation actually depends on is the
*shape* of each dataset — how many numeric vs categorical columns, problem
type, missing values, row count — plus two label properties:

* **Breadth**: signal spread over many columns, so sqrt-column random
  forests and boosting work (as they do on the real datasets).  The label
  is driven by an *additive* ensemble of single-column stumps over all
  relevant columns.
* **Depth**: some interaction structure, so deeper exact trees keep
  improving with ``d_max`` (paper Table VIII(a,b)).  A planted interaction
  tree contributes on top of the stumps.

Stump thresholds are drawn as upper-tail quantiles of a skewed (lognormal)
marginal, where equi-depth histogram binning (the MLlib baseline) is
coarsest — reproducing the paper's exact-vs-approximate accuracy gap —
while exact split search recovers them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.schema import ColumnKind, ColumnSpec, ProblemKind, TableSchema
from ..data.table import MISSING_CODE, DataTable


@dataclass(frozen=True)
class SyntheticSpec:
    """Recipe for one synthetic dataset (mirrors a Table I row, scaled).

    ``noise`` is the label-flip probability (classification) or the label
    noise standard deviation as a fraction of the signal range (regression);
    ``missing_rate`` injects missing values uniformly into feature columns;
    ``planted_depth`` controls the interaction tree's depth and
    ``interaction_weight`` its share of the label signal.
    """

    name: str
    n_rows: int
    n_numeric: int
    n_categorical: int
    problem: ProblemKind = ProblemKind.CLASSIFICATION
    n_classes: int = 2
    categorical_cardinality: int = 6
    planted_depth: int = 6
    noise: float = 0.08
    missing_rate: float = 0.0
    relevant_fraction: float = 0.6
    interaction_weight: float = 2.5
    #: Probability that a non-relevant numeric column becomes a tight noisy
    #: copy of a relevant one.  Models the heavy feature redundancy of some
    #: real tables (e.g. insurance data), which is what makes accuracy flat
    #: across per-tree column ratios (paper Table VIII(c)).
    redundancy: float = 0.0
    seed: int = 7
    tags: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.n_rows < 4:
            raise ValueError("need at least 4 rows")
        if self.n_numeric + self.n_categorical < 1:
            raise ValueError("need at least one feature column")
        if self.problem is ProblemKind.CLASSIFICATION and self.n_classes < 2:
            raise ValueError("classification needs >= 2 classes")


@dataclass
class _PlantedNode:
    """Internal node of the hidden interaction tree."""

    column: int
    threshold: float | None
    left_categories: frozenset[int] | None
    left: "_PlantedNode | np.ndarray"
    right: "_PlantedNode | np.ndarray"


def _skewed_values(rng: np.random.Generator, n: int) -> np.ndarray:
    """Draw a heavy-tailed numeric column (lognormal).

    Skew matters: equi-depth histograms place few boundaries in the sparse
    tail, so planted tail thresholds are what approximate split search loses.
    """
    return rng.lognormal(mean=0.0, sigma=1.0, size=n)


def _class_vector(rng: np.random.Generator, k: int) -> np.ndarray:
    """A random per-class score contribution (zero-mean)."""
    v = rng.normal(0.0, 1.0, size=k)
    return v - v.mean()


def _leaf_vector(rng: np.random.Generator, k: int, margin: float) -> np.ndarray:
    """A leaf contribution dominated by one class with a clear margin.

    Hard-ish leaf classes keep test accuracy monotone in tree depth (the
    paper's Table VIII(a,b) shape): a learner must recover the interaction
    tree's cells to pick these up, and deeper trees recover more of them.
    """
    if k == 1:  # regression: a scalar leaf value
        return np.array([rng.normal(0.0, margin)])
    v = 0.3 * _class_vector(rng, k)
    v[int(rng.integers(k))] += margin
    return v - v.mean()


def _grow_planted_tree(
    rng: np.random.Generator,
    relevant_columns: list[int],
    specs: list[ColumnSpec],
    columns: list[np.ndarray],
    depth: int,
    k: int,
    margin: float,
) -> "_PlantedNode | np.ndarray":
    if depth == 0 or rng.random() < 0.12:
        return _leaf_vector(rng, k, margin)
    column = int(relevant_columns[rng.integers(len(relevant_columns))])
    col_spec = specs[column]
    if col_spec.kind is ColumnKind.NUMERIC:
        # Interaction thresholds sit in the bulk of the distribution.
        threshold = float(np.quantile(columns[column], rng.uniform(0.25, 0.75)))
        left_categories = None
    else:
        cardinality = col_spec.n_categories
        size = int(rng.integers(1, max(2, cardinality // 2 + 1)))
        left_categories = frozenset(
            int(c) for c in rng.choice(cardinality, size=size, replace=False)
        )
        threshold = None
    return _PlantedNode(
        column=column,
        threshold=threshold,
        left_categories=left_categories,
        left=_grow_planted_tree(
            rng, relevant_columns, specs, columns, depth - 1, k, margin
        ),
        right=_grow_planted_tree(
            rng, relevant_columns, specs, columns, depth - 1, k, margin
        ),
    )


def _route_scores(
    node: "_PlantedNode | np.ndarray",
    columns: list[np.ndarray],
    row_ids: np.ndarray,
    out: np.ndarray,
) -> None:
    stack = [(node, row_ids)]
    while stack:
        current, ids = stack.pop()
        if ids.size == 0:
            continue
        if isinstance(current, np.ndarray):
            out[ids] += current
            continue
        values = columns[current.column][ids]
        if current.threshold is not None:
            go_left = values <= current.threshold
        else:
            left = current.left_categories or frozenset()
            go_left = np.isin(
                values, np.fromiter(left, dtype=values.dtype, count=len(left))
            )
        stack.append((current.left, ids[go_left]))
        stack.append((current.right, ids[~go_left]))


def generate(spec: SyntheticSpec) -> DataTable:
    """Generate the dataset a :class:`SyntheticSpec` describes.

    Deterministic in ``spec.seed``; repeated calls return equal tables.
    """
    rng = np.random.default_rng(spec.seed)
    n = spec.n_rows
    k = spec.n_classes if spec.problem is ProblemKind.CLASSIFICATION else 1

    specs: list[ColumnSpec] = []
    columns: list[np.ndarray] = []
    for i in range(spec.n_numeric):
        specs.append(ColumnSpec(f"num{i}", ColumnKind.NUMERIC))
        columns.append(_skewed_values(rng, n))
    for i in range(spec.n_categorical):
        cardinality = spec.categorical_cardinality
        cats = tuple(f"c{i}_{j}" for j in range(cardinality))
        specs.append(ColumnSpec(f"cat{i}", ColumnKind.CATEGORICAL, cats))
        # Zipf-ish category frequencies: realistic imbalance.
        weights = 1.0 / np.arange(1, cardinality + 1)
        weights /= weights.sum()
        columns.append(rng.choice(cardinality, size=n, p=weights).astype(np.int32))

    m = len(specs)
    n_relevant = max(1, int(round(spec.relevant_fraction * m)))
    relevant = sorted(
        int(c) for c in rng.choice(m, size=n_relevant, replace=False)
    )

    # Optional redundancy: tight noisy copies of relevant numeric columns
    # replace some irrelevant ones, so any column subset carries signal.
    relevant_numeric = [
        c for c in relevant if specs[c].kind is ColumnKind.NUMERIC
    ]
    if spec.redundancy > 0 and relevant_numeric:
        for idx in range(m):
            if idx in relevant or specs[idx].kind is not ColumnKind.NUMERIC:
                continue
            if rng.random() < spec.redundancy:
                source = int(
                    relevant_numeric[rng.integers(len(relevant_numeric))]
                )
                scale = 0.5 + rng.random()
                jitter = rng.normal(0.0, 0.03, size=n)
                columns[idx] = columns[source] * scale * (1.0 + jitter)

    # Additive stump ensemble: one tail-threshold stump per relevant column.
    scores = np.zeros((n, k), dtype=np.float64)
    for column in relevant:
        contribution = _class_vector(rng, k)
        if specs[column].kind is ColumnKind.NUMERIC:
            threshold = float(
                np.quantile(columns[column], rng.uniform(0.55, 0.95))
            )
            above = columns[column] > threshold
        else:
            cardinality = specs[column].n_categories
            size = int(rng.integers(1, max(2, cardinality // 2 + 1)))
            chosen = rng.choice(cardinality, size=size, replace=False)
            above = np.isin(columns[column], chosen)
        scores[above] += contribution
        scores[~above] -= 0.5 * contribution

    # Interaction component: a planted tree over the same relevant columns.
    planted = _grow_planted_tree(
        rng, relevant, specs, columns, spec.planted_depth, k,
        spec.interaction_weight,
    )
    interaction = np.zeros((n, k), dtype=np.float64)
    _route_scores(planted, columns, np.arange(n, dtype=np.int64), interaction)
    stump_scale = max(1.0, np.sqrt(len(relevant)) / 2.0)
    scores = scores / stump_scale + interaction

    if spec.problem is ProblemKind.CLASSIFICATION:
        labels = np.argmax(scores, axis=1).astype(np.int64)
        flip = rng.random(n) < spec.noise
        labels[flip] = rng.integers(spec.n_classes, size=int(flip.sum()))
        target_spec = ColumnSpec(
            "label",
            ColumnKind.CATEGORICAL,
            tuple(f"y{c}" for c in range(spec.n_classes)),
        )
        target: np.ndarray = labels.astype(np.int32)
    else:
        raw = scores[:, 0]
        scale = max(1e-9, float(raw.std()))
        raw = raw / scale  # unit variance: RMSE numbers are comparable
        target = raw + rng.normal(0.0, max(1e-9, spec.noise), size=n)
        target_spec = ColumnSpec("target", ColumnKind.NUMERIC)

    if spec.missing_rate > 0:
        for arr, col_spec in zip(columns, specs):
            mask = rng.random(n) < spec.missing_rate
            if col_spec.kind is ColumnKind.NUMERIC:
                arr[mask] = np.nan
            else:
                arr[mask] = MISSING_CODE

    schema = TableSchema(tuple(specs), target_spec, spec.problem)
    return DataTable(schema, columns, target)


def train_test(
    spec: SyntheticSpec, test_fraction: float = 0.25
) -> tuple[DataTable, DataTable]:
    """Generate and deterministically split a dataset."""
    table = generate(spec)
    return table.split_train_test(test_fraction, seed=spec.seed + 1)
