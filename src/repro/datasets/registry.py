"""Registry of Table-I-shaped synthetic datasets.

Each entry mirrors one row of the paper's Table I at laptop scale: same
numeric/categorical column counts and problem kind, row counts reduced by
roughly three orders of magnitude (documented in DESIGN.md).  The three
``loan_*`` datasets keep the paper's size ladder (1 : 4.6 : 8.5 row ratio,
approximated as 1 : 4 : 8) so size-scaling comparisons still read the same.
"""

from __future__ import annotations

from ..data.schema import ProblemKind
from .synthetic import SyntheticSpec

#: Paper Table I, scaled.  Keys are the lowercase paper dataset names.
TABLE_I: dict[str, SyntheticSpec] = {
    "allstate": SyntheticSpec(
        name="allstate",
        n_rows=16_000,
        n_numeric=13,
        n_categorical=14,
        problem=ProblemKind.REGRESSION,
        missing_rate=0.05,
        planted_depth=7,
        noise=0.05,
        relevant_fraction=0.2,
        redundancy=0.85,
        seed=101,
        tags=("regression", "missing"),
    ),
    "higgs_boson": SyntheticSpec(
        name="higgs_boson",
        n_rows=14_000,
        n_numeric=28,
        n_categorical=0,
        n_classes=2,
        planted_depth=8,
        noise=0.10,
        seed=502,
    ),
    "ms_ltrc": SyntheticSpec(
        name="ms_ltrc",
        n_rows=6_000,
        n_numeric=136,
        n_categorical=1,
        n_classes=5,
        planted_depth=6,
        noise=0.25,
        relevant_fraction=0.25,
        seed=103,
        tags=("wide",),
    ),
    "c14b": SyntheticSpec(
        name="c14b",
        n_rows=3_000,
        n_numeric=200,  # paper: 700 columns; reduced with the row count
        n_categorical=0,
        n_classes=2,
        planted_depth=6,
        noise=0.2,
        relevant_fraction=0.12,
        seed=104,
        tags=("wide",),
    ),
    "covtype": SyntheticSpec(
        name="covtype",
        n_rows=10_000,
        n_numeric=54,
        n_categorical=0,
        n_classes=7,
        planted_depth=8,
        noise=0.04,
        seed=105,
    ),
    "poker": SyntheticSpec(
        name="poker",
        n_rows=12_000,
        n_numeric=0,
        n_categorical=11,
        n_classes=10,
        categorical_cardinality=13,
        planted_depth=7,
        noise=0.3,
        seed=106,
        tags=("categorical",),
    ),
    "kdd99": SyntheticSpec(
        name="kdd99",
        n_rows=15_000,
        n_numeric=38,
        n_categorical=3,
        n_classes=5,
        planted_depth=7,
        noise=0.1,
        seed=107,
    ),
    "susy": SyntheticSpec(
        name="susy",
        n_rows=15_000,
        n_numeric=18,
        n_categorical=0,
        n_classes=2,
        planted_depth=8,
        noise=0.15,
        seed=108,
    ),
    "loan_m1": SyntheticSpec(
        name="loan_m1",
        n_rows=8_000,
        n_numeric=14,
        n_categorical=13,
        n_classes=2,
        planted_depth=5,
        noise=0.003,
        relevant_fraction=0.15,
        redundancy=0.9,
        seed=109,
        tags=("loan",),
    ),
    "loan_y1": SyntheticSpec(
        name="loan_y1",
        n_rows=32_000,
        n_numeric=14,
        n_categorical=13,
        n_classes=2,
        planted_depth=5,
        noise=0.003,
        relevant_fraction=0.15,
        redundancy=0.9,
        seed=110,
        tags=("loan",),
    ),
    "loan_y2": SyntheticSpec(
        name="loan_y2",
        n_rows=64_000,
        n_numeric=14,
        n_categorical=13,
        n_classes=2,
        planted_depth=5,
        noise=0.003,
        relevant_fraction=0.15,
        redundancy=0.9,
        seed=111,
        tags=("loan",),
    ),
}

#: Small variants for fast unit tests and quick benchmark smoke runs.
SMALL: dict[str, SyntheticSpec] = {
    name: SyntheticSpec(
        name=f"{name}_small",
        n_rows=max(400, spec.n_rows // 20),
        n_numeric=min(spec.n_numeric, 12),
        n_categorical=min(spec.n_categorical, 6),
        problem=spec.problem,
        n_classes=spec.n_classes,
        categorical_cardinality=spec.categorical_cardinality,
        planted_depth=min(spec.planted_depth, 5),
        noise=spec.noise,
        missing_rate=spec.missing_rate,
        relevant_fraction=spec.relevant_fraction,
        redundancy=spec.redundancy,
        seed=spec.seed,
        tags=spec.tags,
    )
    for name, spec in TABLE_I.items()
}


def dataset_spec(name: str, small: bool = False) -> SyntheticSpec:
    """Look up a dataset recipe by paper name (case-insensitive)."""
    key = name.lower()
    pool = SMALL if small else TABLE_I
    if key not in pool:
        raise KeyError(
            f"unknown dataset {name!r}; known: {sorted(TABLE_I)}"
        )
    return pool[key]


def dataset_names() -> list[str]:
    """All Table-I dataset names in the paper's order."""
    return list(TABLE_I)
