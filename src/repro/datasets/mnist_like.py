"""Synthetic MNIST-like image dataset for the deep forest case study.

The paper's Section VII/VIII trains a deep forest on MNIST (28x28 grayscale
digits, 10 classes), using 10% of the images.  Offline, we synthesize images
whose classes are distinguishable by local patch statistics — exactly the
signal multi-grained scanning extracts — by stamping per-class stroke
patterns (bars, diagonals, blobs) at class-specific positions, plus noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Default image side length (MNIST's 28).
IMAGE_SIDE = 28


@dataclass
class ImageDataset:
    """A batch of square grayscale images with integer class labels.

    ``images`` has shape ``(n, side, side)`` with values in ``[0, 1]``;
    ``labels`` has shape ``(n,)`` with values in ``[0, n_classes)``.
    """

    images: np.ndarray
    labels: np.ndarray
    n_classes: int

    def __post_init__(self) -> None:
        if self.images.ndim != 3 or self.images.shape[1] != self.images.shape[2]:
            raise ValueError("images must be (n, side, side)")
        if len(self.labels) != len(self.images):
            raise ValueError("labels/images length mismatch")

    @property
    def n_images(self) -> int:
        """Number of images."""
        return len(self.images)

    @property
    def side(self) -> int:
        """Image side length."""
        return self.images.shape[1]


def _stamp_class_pattern(
    canvas: np.ndarray, label: int, rng: np.random.Generator
) -> None:
    """Draw the stroke pattern of one class onto a single image canvas.

    Each class gets a distinct geometry (position + orientation) with small
    random jitter, so classes are separable from 3x3 .. 7x7 patches but not
    from any single pixel — the regime where MGS features help.
    """
    side = canvas.shape[0]
    jitter = int(rng.integers(-2, 3))
    base = 3 + 2 * (label % 5) + jitter
    base = int(np.clip(base, 1, side - 8))
    intensity = 0.75 + 0.25 * rng.random()
    if label % 3 == 0:  # horizontal bar
        canvas[base : base + 3, base : base + 14] = intensity
    elif label % 3 == 1:  # vertical bar
        canvas[base : base + 14, base : base + 3] = intensity
    else:  # diagonal stroke
        for k in range(12):
            r, c = base + k, base + k
            if r + 2 < side and c + 2 < side:
                canvas[r : r + 2, c : c + 2] = intensity
    if label >= 5:  # second blob distinguishes the upper five classes
        r0 = side - 9 - (label - 5)
        canvas[r0 : r0 + 4, 4 : 4 + 4] = intensity


def generate_images(
    n_images: int,
    n_classes: int = 10,
    side: int = IMAGE_SIDE,
    noise: float = 0.12,
    seed: int = 7,
) -> ImageDataset:
    """Generate a labelled synthetic image dataset.

    Deterministic in ``seed``.  Labels are balanced round-robin.
    """
    if n_images < n_classes:
        raise ValueError("need at least one image per class")
    rng = np.random.default_rng(seed)
    images = np.zeros((n_images, side, side), dtype=np.float64)
    labels = np.arange(n_images, dtype=np.int64) % n_classes
    rng.shuffle(labels)
    for i in range(n_images):
        _stamp_class_pattern(images[i], int(labels[i]), rng)
    images += rng.normal(0.0, noise, size=images.shape)
    np.clip(images, 0.0, 1.0, out=images)
    return ImageDataset(images=images, labels=labels, n_classes=n_classes)


def train_test_images(
    n_train: int,
    n_test: int,
    n_classes: int = 10,
    side: int = IMAGE_SIDE,
    seed: int = 7,
) -> tuple[ImageDataset, ImageDataset]:
    """Disjoint train/test image sets from one deterministic stream."""
    full = generate_images(n_train + n_test, n_classes, side, seed=seed)
    return (
        ImageDataset(full.images[:n_train], full.labels[:n_train], n_classes),
        ImageDataset(full.images[n_train:], full.labels[n_train:], n_classes),
    )
