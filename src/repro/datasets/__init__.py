"""Synthetic dataset generators mirroring the paper's Table I and MNIST."""

from .mnist_like import ImageDataset, generate_images, train_test_images
from .registry import SMALL, TABLE_I, dataset_names, dataset_spec
from .synthetic import SyntheticSpec, generate, train_test

__all__ = [
    "ImageDataset",
    "SMALL",
    "SyntheticSpec",
    "TABLE_I",
    "dataset_names",
    "dataset_spec",
    "generate",
    "generate_images",
    "train_test",
    "train_test_images",
]
