"""Legacy setup shim: this offline environment lacks the ``wheel`` package,
so PEP 517 editable installs fail; ``pip install -e . --no-use-pep517`` (or
plain ``pip install -e .`` with old pip) uses this file instead.
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
