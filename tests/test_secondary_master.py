"""Tests for secondary-master failover (paper Appendix E)."""

import pytest

from repro.cluster import CrashPlan
from repro.core import (
    SystemConfig,
    TreeConfig,
    TreeServer,
    decision_tree_job,
    random_forest_job,
    staged_job,
    trees_equal,
)
from repro.datasets import SyntheticSpec, generate


@pytest.fixture(scope="module")
def table():
    return generate(
        SyntheticSpec(
            name="sm", n_rows=500, n_numeric=4, n_categorical=1,
            n_classes=2, planted_depth=4, noise=0.1, seed=55,
        )
    )


def system_for(table) -> SystemConfig:
    return SystemConfig(n_workers=4, compers_per_worker=2).scaled_to(
        table.n_rows
    )


def forest_job(seed=9, n=6):
    return random_forest_job("rf", n, TreeConfig(max_depth=6), seed=seed)


class TestMasterFailover:
    def test_crash_midway_preserves_models(self, table):
        system = system_for(table)
        clean = TreeServer(system).fit(table, [forest_job()])
        crashed = TreeServer(system).fit(
            table,
            [forest_job()],
            crash_plans=[CrashPlan(machine_id=0, at_time=clean.sim_seconds / 2)],
            secondary_master=True,
        )
        assert all(
            trees_equal(a, b)
            for a, b in zip(clean.trees("rf"), crashed.trees("rf"))
        )
        # Failover costs time: re-planning the incomplete trees.
        assert crashed.sim_seconds > clean.sim_seconds

    def test_crash_at_start_retrains_everything(self, table):
        system = system_for(table)
        clean = TreeServer(system).fit(table, [forest_job(seed=3)])
        crashed = TreeServer(system).fit(
            table,
            [forest_job(seed=3)],
            crash_plans=[CrashPlan(machine_id=0, at_time=0.0)],
            secondary_master=True,
        )
        assert all(
            trees_equal(a, b)
            for a, b in zip(clean.trees("rf"), crashed.trees("rf"))
        )

    def test_crash_near_end_reuses_synced_trees(self, table):
        """Trees checkpointed to the secondary are not retrained."""
        system = system_for(table)
        clean = TreeServer(system).fit(table, [forest_job(seed=5)])
        late = clean.sim_seconds * 0.95
        crashed = TreeServer(system).fit(
            table,
            [forest_job(seed=5)],
            crash_plans=[CrashPlan(machine_id=0, at_time=late)],
            secondary_master=True,
        )
        # The second generation only dispatched plans for the remainder.
        assert crashed.counters.trees_completed < 6
        assert len(crashed.trees("rf")) == 6
        assert all(
            trees_equal(a, b)
            for a, b in zip(clean.trees("rf"), crashed.trees("rf"))
        )

    def test_master_crash_without_secondary_rejected(self, table):
        with pytest.raises(ValueError, match="secondary"):
            TreeServer(system_for(table)).fit(
                table,
                [decision_tree_job("dt")],
                crash_plans=[CrashPlan(machine_id=0, at_time=0.001)],
            )

    def test_secondary_enabled_without_crash_is_harmless(self, table):
        system = system_for(table)
        clean = TreeServer(system).fit(table, [forest_job(seed=7)])
        with_standby = TreeServer(system).fit(
            table, [forest_job(seed=7)], secondary_master=True
        )
        assert all(
            trees_equal(a, b)
            for a, b in zip(clean.trees("rf"), with_standby.trees("rf"))
        )

    def test_staged_job_survives_failover(self, table):
        system = system_for(table)
        job = staged_job(
            "boost",
            [
                [TreeConfig(max_depth=4, seed=1), TreeConfig(max_depth=4, seed=2)],
                [TreeConfig(max_depth=4, seed=3)],
            ],
        )
        clean = TreeServer(system).fit(table, [job])
        crashed = TreeServer(system).fit(
            table,
            [staged_job(
                "boost",
                [
                    [TreeConfig(max_depth=4, seed=1),
                     TreeConfig(max_depth=4, seed=2)],
                    [TreeConfig(max_depth=4, seed=3)],
                ],
            )],
            crash_plans=[CrashPlan(machine_id=0, at_time=clean.sim_seconds / 3)],
            secondary_master=True,
        )
        assert len(crashed.trees("boost")) == 3
        assert all(
            trees_equal(a, b)
            for a, b in zip(clean.trees("boost"), crashed.trees("boost"))
        )

    def test_worker_then_master_crash(self, table):
        """Regression: the primary's crash handling mutates *its own*
        holder lists; the standby's snapshot must stay pristine so the
        failover master re-derives liveness itself.  A worker crash
        followed by a master crash exercises exactly that order."""
        system = SystemConfig(
            n_workers=5, compers_per_worker=2, column_replication=2
        ).scaled_to(table.n_rows)
        clean = TreeServer(system).fit(table, [forest_job(seed=13)])
        t = clean.sim_seconds
        crashed = TreeServer(system).fit(
            table,
            [forest_job(seed=13)],
            crash_plans=[
                CrashPlan(machine_id=3, at_time=t / 4),
                CrashPlan(machine_id=0, at_time=t),
            ],
            secondary_master=True,
        )
        # Note: report counters come from the promoted (post-failover)
        # master, so the pre-failover worker recovery is not visible in
        # them — the model parity is the guarantee under test.
        assert all(
            trees_equal(a, b)
            for a, b in zip(clean.trees("rf"), crashed.trees("rf"))
        )

    def test_standby_holders_are_not_aliased(self, table):
        """Unit pin for the deep-copy: mutating the placement the standby
        was built from must not leak into its snapshot."""
        from repro.core.master import _TableInfo
        from repro.core.secondary import SecondaryMasterActor
        from repro.data.schema import ProblemKind

        class _StubCluster:
            pass

        placement = {0: [1, 2], 1: [2, 3]}
        standby = SecondaryMasterActor(
            _StubCluster(),
            6,
            _TableInfo(100, 2, ProblemKind.CLASSIFICATION, 2),
            [forest_job(seed=1)],
            SystemConfig(n_workers=3),
            placement,
        )
        placement[0].remove(1)  # what a crash-handling primary does
        placement[1].clear()
        assert standby.holders == {0: [1, 2], 1: [2, 3]}

    def test_master_then_worker_crash(self, table):
        """A worker crash after failover routes to the promoted master."""
        system = SystemConfig(
            n_workers=5, compers_per_worker=2, column_replication=2
        ).scaled_to(table.n_rows)
        clean = TreeServer(system).fit(table, [forest_job(seed=11)])
        t = clean.sim_seconds
        crashed = TreeServer(system).fit(
            table,
            [forest_job(seed=11)],
            crash_plans=[
                CrashPlan(machine_id=0, at_time=t / 4),
                CrashPlan(machine_id=3, at_time=t * 2),
            ],
            secondary_master=True,
        )
        assert all(
            trees_equal(a, b)
            for a, b in zip(clean.trees("rf"), crashed.trees("rf"))
        )
