"""Tests for secondary-master failover (paper Appendix E)."""

import pytest

from repro.cluster import CrashPlan
from repro.core import (
    SystemConfig,
    TreeConfig,
    TreeServer,
    decision_tree_job,
    random_forest_job,
    staged_job,
    trees_equal,
)
from repro.datasets import SyntheticSpec, generate


@pytest.fixture(scope="module")
def table():
    return generate(
        SyntheticSpec(
            name="sm", n_rows=500, n_numeric=4, n_categorical=1,
            n_classes=2, planted_depth=4, noise=0.1, seed=55,
        )
    )


def system_for(table) -> SystemConfig:
    return SystemConfig(n_workers=4, compers_per_worker=2).scaled_to(
        table.n_rows
    )


def forest_job(seed=9, n=6):
    return random_forest_job("rf", n, TreeConfig(max_depth=6), seed=seed)


class TestMasterFailover:
    def test_crash_midway_preserves_models(self, table):
        system = system_for(table)
        clean = TreeServer(system).fit(table, [forest_job()])
        crashed = TreeServer(system).fit(
            table,
            [forest_job()],
            crash_plans=[CrashPlan(machine_id=0, at_time=clean.sim_seconds / 2)],
            secondary_master=True,
        )
        assert all(
            trees_equal(a, b)
            for a, b in zip(clean.trees("rf"), crashed.trees("rf"))
        )
        # Failover costs time: re-planning the incomplete trees.
        assert crashed.sim_seconds > clean.sim_seconds

    def test_crash_at_start_retrains_everything(self, table):
        system = system_for(table)
        clean = TreeServer(system).fit(table, [forest_job(seed=3)])
        crashed = TreeServer(system).fit(
            table,
            [forest_job(seed=3)],
            crash_plans=[CrashPlan(machine_id=0, at_time=0.0)],
            secondary_master=True,
        )
        assert all(
            trees_equal(a, b)
            for a, b in zip(clean.trees("rf"), crashed.trees("rf"))
        )

    def test_crash_near_end_reuses_synced_trees(self, table):
        """Trees checkpointed to the secondary are not retrained."""
        system = system_for(table)
        clean = TreeServer(system).fit(table, [forest_job(seed=5)])
        late = clean.sim_seconds * 0.95
        crashed = TreeServer(system).fit(
            table,
            [forest_job(seed=5)],
            crash_plans=[CrashPlan(machine_id=0, at_time=late)],
            secondary_master=True,
        )
        # The second generation only dispatched plans for the remainder.
        assert crashed.counters.trees_completed < 6
        assert len(crashed.trees("rf")) == 6
        assert all(
            trees_equal(a, b)
            for a, b in zip(clean.trees("rf"), crashed.trees("rf"))
        )

    def test_master_crash_without_secondary_rejected(self, table):
        with pytest.raises(ValueError, match="secondary"):
            TreeServer(system_for(table)).fit(
                table,
                [decision_tree_job("dt")],
                crash_plans=[CrashPlan(machine_id=0, at_time=0.001)],
            )

    def test_secondary_enabled_without_crash_is_harmless(self, table):
        system = system_for(table)
        clean = TreeServer(system).fit(table, [forest_job(seed=7)])
        with_standby = TreeServer(system).fit(
            table, [forest_job(seed=7)], secondary_master=True
        )
        assert all(
            trees_equal(a, b)
            for a, b in zip(clean.trees("rf"), with_standby.trees("rf"))
        )

    def test_staged_job_survives_failover(self, table):
        system = system_for(table)
        job = staged_job(
            "boost",
            [
                [TreeConfig(max_depth=4, seed=1), TreeConfig(max_depth=4, seed=2)],
                [TreeConfig(max_depth=4, seed=3)],
            ],
        )
        clean = TreeServer(system).fit(table, [job])
        crashed = TreeServer(system).fit(
            table,
            [staged_job(
                "boost",
                [
                    [TreeConfig(max_depth=4, seed=1),
                     TreeConfig(max_depth=4, seed=2)],
                    [TreeConfig(max_depth=4, seed=3)],
                ],
            )],
            crash_plans=[CrashPlan(machine_id=0, at_time=clean.sim_seconds / 3)],
            secondary_master=True,
        )
        assert len(crashed.trees("boost")) == 3
        assert all(
            trees_equal(a, b)
            for a, b in zip(clean.trees("boost"), crashed.trees("boost"))
        )

    def test_master_then_worker_crash(self, table):
        """A worker crash after failover routes to the promoted master."""
        system = SystemConfig(
            n_workers=5, compers_per_worker=2, column_replication=2
        ).scaled_to(table.n_rows)
        clean = TreeServer(system).fit(table, [forest_job(seed=11)])
        t = clean.sim_seconds
        crashed = TreeServer(system).fit(
            table,
            [forest_job(seed=11)],
            crash_plans=[
                CrashPlan(machine_id=0, at_time=t / 4),
                CrashPlan(machine_id=3, at_time=t * 2),
            ],
            secondary_master=True,
        )
        assert all(
            trees_equal(a, b)
            for a, b in zip(clean.trees("rf"), crashed.trees("rf"))
        )
