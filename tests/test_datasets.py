"""Tests for the synthetic dataset generators (tabular and image)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TreeConfig, train_tree
from repro.data.schema import ColumnKind, ProblemKind
from repro.datasets import (
    SMALL,
    TABLE_I,
    SyntheticSpec,
    dataset_names,
    dataset_spec,
    generate,
    generate_images,
    train_test,
    train_test_images,
)
from repro.evaluation import accuracy


class TestRegistry:
    def test_eleven_datasets_like_table_one(self):
        assert len(TABLE_I) == 11
        assert dataset_names()[0] == "allstate"

    def test_schema_shapes_match_paper(self):
        """Column counts mirror the paper's Table I (c14B reduced)."""
        expectations = {
            "allstate": (13, 14, ProblemKind.REGRESSION),
            "higgs_boson": (28, 0, ProblemKind.CLASSIFICATION),
            "ms_ltrc": (136, 1, ProblemKind.CLASSIFICATION),
            "covtype": (54, 0, ProblemKind.CLASSIFICATION),
            "poker": (0, 11, ProblemKind.CLASSIFICATION),
            "kdd99": (38, 3, ProblemKind.CLASSIFICATION),
            "susy": (18, 0, ProblemKind.CLASSIFICATION),
            "loan_m1": (14, 13, ProblemKind.CLASSIFICATION),
        }
        for name, (n_num, n_cat, problem) in expectations.items():
            spec = dataset_spec(name)
            assert (spec.n_numeric, spec.n_categorical, spec.problem) == (
                n_num,
                n_cat,
                problem,
            )

    def test_loan_size_ladder(self):
        sizes = [dataset_spec(f"loan_{s}").n_rows for s in ("m1", "y1", "y2")]
        assert sizes[1] == 4 * sizes[0]
        assert sizes[2] == 8 * sizes[0]

    def test_only_allstate_has_missing(self):
        for name in dataset_names():
            spec = dataset_spec(name)
            assert (spec.missing_rate > 0) == (name == "allstate")

    def test_small_variants_are_smaller(self):
        for name in dataset_names():
            assert SMALL[name].n_rows < TABLE_I[name].n_rows

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            dataset_spec("mnist")

    def test_case_insensitive(self):
        assert dataset_spec("HIGGS_BOSON") is dataset_spec("higgs_boson")


class TestGenerate:
    def test_deterministic(self):
        spec = dataset_spec("susy", small=True)
        a = generate(spec)
        b = generate(spec)
        np.testing.assert_array_equal(a.target, b.target)
        np.testing.assert_array_equal(a.column(0), b.column(0))

    def test_different_seeds_differ(self):
        spec = dataset_spec("susy", small=True)
        from dataclasses import replace

        other = generate(replace(spec, seed=spec.seed + 1))
        assert not np.array_equal(generate(spec).target, other.target)

    def test_missing_rate_approximate(self):
        spec = SyntheticSpec(
            name="m", n_rows=5000, n_numeric=4, n_categorical=2,
            missing_rate=0.1, seed=3,
        )
        table = generate(spec)
        for i in range(table.n_columns):
            rate = table.missing_mask(i).mean()
            assert 0.05 < rate < 0.16

    def test_class_labels_in_range(self):
        spec = dataset_spec("covtype", small=True)
        table = generate(spec)
        assert table.target.min() >= 0
        assert table.target.max() < spec.n_classes

    def test_regression_target_normalized(self):
        table = generate(dataset_spec("allstate", small=True))
        assert 0.5 < table.target.std() < 2.0

    def test_learnable_signal(self):
        """A depth-10 exact tree beats the majority class clearly."""
        train, test = train_test(dataset_spec("covtype", small=True))
        tree = train_tree(train, TreeConfig(max_depth=10))
        majority = np.bincount(test.target).max() / test.n_rows
        assert accuracy(test.target, tree.predict(test)) > majority + 0.03

    def test_redundancy_produces_correlated_columns(self):
        from dataclasses import replace

        base = SyntheticSpec(
            name="r", n_rows=2000, n_numeric=10, n_categorical=0,
            relevant_fraction=0.2, seed=5,
        )
        redundant = generate(replace(base, redundancy=1.0))
        correlations = np.corrcoef(
            np.stack([redundant.column(i) for i in range(10)])
        )
        strong = (np.abs(correlations) > 0.9).sum() - 10  # minus diagonal
        assert strong >= 2

    @settings(max_examples=10, deadline=None)
    @given(
        n_classes=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_valid_tables(self, n_classes, seed):
        spec = SyntheticSpec(
            name="p", n_rows=100, n_numeric=3, n_categorical=2,
            n_classes=n_classes, planted_depth=3, seed=seed,
        )
        table = generate(spec)
        assert table.n_rows == 100
        assert table.n_classes == n_classes
        for i, col_spec in enumerate(table.schema.columns):
            if col_spec.kind is ColumnKind.CATEGORICAL:
                assert table.column(i).max() < col_spec.n_categories


class TestTrainTestSplit:
    def test_split_sizes(self):
        train, test = train_test(dataset_spec("poker", small=True), 0.25)
        total = dataset_spec("poker", small=True).n_rows
        assert train.n_rows + test.n_rows == total


class TestImageDatasets:
    def test_shapes_and_ranges(self):
        data = generate_images(50, n_classes=10, side=28, seed=1)
        assert data.images.shape == (50, 28, 28)
        assert data.images.min() >= 0.0 and data.images.max() <= 1.0
        assert set(np.unique(data.labels)) <= set(range(10))

    def test_balanced_labels(self):
        data = generate_images(100, n_classes=10, seed=2)
        counts = np.bincount(data.labels, minlength=10)
        assert counts.min() == counts.max() == 10

    def test_deterministic(self):
        a = generate_images(20, seed=5)
        b = generate_images(20, seed=5)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_train_test_disjoint_stream(self):
        train, test = train_test_images(30, 20, seed=3)
        assert train.n_images == 30
        assert test.n_images == 20

    def test_classes_distinguishable_by_patches(self):
        """Local patch statistics separate classes (the MGS premise):
        a tree on raw-pixel windows beats chance comfortably."""
        from repro.deepforest import sliding_windows, windows_to_table

        train, test = train_test_images(120, 60, seed=4)
        w_train = windows_to_table(
            sliding_windows(train.images, 7, 7), train.labels, 10
        )
        tree = train_tree(w_train, TreeConfig(max_depth=10))
        w_test = windows_to_table(
            sliding_windows(test.images, 7, 7), test.labels, 10
        )
        # Per-window accuracy is intrinsically modest (most windows show
        # background; the image-level aggregation is what MGS exploits),
        # but it must clearly beat the 0.1 chance level.
        acc = accuracy(w_test.target, tree.predict(w_test))
        assert acc > 0.12

    def test_too_few_images_rejected(self):
        with pytest.raises(ValueError):
            generate_images(5, n_classes=10)
