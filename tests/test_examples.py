"""Smoke tests: the fast example scripts run end-to-end.

Slow examples (deep forest, full system comparison, model selection) are
exercised indirectly by the benchmarks; the quick ones run here so the
documented entry points cannot rot.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "credit_default.py",
    "hdfs_workflow.py",
    "fault_tolerance.py",
    "sequence_classification.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()  # every example prints a report


def test_example_inventory_documented():
    """Every example file is runnable Python with a module docstring."""
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 9
    for script in scripts:
        text = script.read_text()
        assert text.startswith('"""'), f"{script.name} lacks a docstring"
        assert '__name__ == "__main__"' in text, f"{script.name} not runnable"
