"""Tests for the PLANET/MLlib and XGBoost baselines and their machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    PlanetConfig,
    PlanetTrainer,
    WeightedQuantileSketch,
    XGBoostConfig,
    XGBoostTrainer,
    best_binned_numeric_split,
    bin_indices,
    equi_depth_thresholds,
)
from repro.core import TreeConfig, train_tree
from repro.core.impurity import Impurity
from repro.core.splits import best_numeric_split
from repro.data.schema import ProblemKind
from repro.datasets import SyntheticSpec, generate, train_test
from repro.evaluation import accuracy, rmse


class TestEquiDepthThresholds:
    def test_number_of_thresholds(self):
        values = np.arange(1000, dtype=float)
        t = equi_depth_thresholds(values, max_bins=32)
        assert 1 <= len(t) <= 31
        assert (np.diff(t) > 0).all()

    def test_low_cardinality_collapses(self):
        values = np.array([1.0, 1.0, 2.0, 2.0, 3.0] * 10)
        t = equi_depth_thresholds(values, max_bins=32)
        # Only 2 distinct boundaries are possible below the max.
        assert set(t) <= {1.0, 2.0}

    def test_missing_ignored(self):
        values = np.array([1.0, np.nan, 2.0, np.nan, 3.0, 4.0])
        t = equi_depth_thresholds(values, 4)
        assert not np.isnan(t).any()

    def test_all_missing_empty(self):
        assert equi_depth_thresholds(np.full(5, np.nan), 8).size == 0

    def test_max_value_excluded(self):
        values = np.arange(100, dtype=float)
        t = equi_depth_thresholds(values, 10)
        assert t.max() < 99.0

    def test_invalid_bins_rejected(self):
        with pytest.raises(ValueError):
            equi_depth_thresholds(np.arange(10.0), 1)


class TestBinnedSplit:
    def test_matches_exact_when_bins_cover_all_values(self):
        """With enough bins, binned search finds the exact best split."""
        rng = np.random.default_rng(0)
        values = rng.integers(0, 10, size=200).astype(float)
        y = (values > 4).astype(np.int64)
        y[:20] = 1 - y[:20]
        thresholds = equi_depth_thresholds(values, max_bins=64)
        bins = bin_indices(values, thresholds)
        approx = best_binned_numeric_split(
            0, bins, thresholds, y, Impurity.GINI, 2
        )
        exact = best_numeric_split(0, values, y, Impurity.GINI, 2)
        assert approx is not None and exact is not None
        assert approx.score == pytest.approx(exact.score, abs=1e-9)

    def test_coarse_bins_are_no_better_than_exact(self):
        rng = np.random.default_rng(1)
        values = rng.lognormal(size=500)
        threshold = np.quantile(values, 0.93)
        y = (values > threshold).astype(np.int64)
        t4 = equi_depth_thresholds(values, max_bins=4)
        approx = best_binned_numeric_split(
            0, bin_indices(values, t4), t4, y, Impurity.GINI, 2
        )
        exact = best_numeric_split(0, values, y, Impurity.GINI, 2)
        assert exact is not None and approx is not None
        assert exact.score <= approx.score + 1e-12
        assert exact.score == pytest.approx(0.0, abs=1e-12)
        assert approx.score > 0.0  # the tail threshold falls between bins

    def test_counts_sum(self):
        values = np.array([1.0, 2.0, np.nan, 4.0, 5.0])
        y = np.array([0, 0, 1, 1, 1])
        t = equi_depth_thresholds(values, 4)
        split = best_binned_numeric_split(
            0, bin_indices(values, t), t, y, Impurity.GINI, 2
        )
        assert split is not None
        assert split.n_left + split.n_right == 5

    def test_empty_thresholds_none(self):
        values = np.full(5, 3.0)
        y = np.array([0, 1, 0, 1, 0])
        t = equi_depth_thresholds(values, 8)
        assert (
            best_binned_numeric_split(
                0, bin_indices(values, t), t, y, Impurity.GINI, 2
            )
            is None
        )


class TestPlanetTrainer:
    def test_model_close_to_exact_on_easy_data(
        self, small_mixed_classification
    ):
        table = small_mixed_classification
        exact = train_tree(table, TreeConfig(max_depth=6))
        approx = PlanetTrainer().fit(table, TreeConfig(max_depth=6))
        acc_exact = accuracy(table.target, exact.predict(table))
        acc_approx = accuracy(table.target, approx.tree().predict(table))
        assert acc_approx > 0.5
        assert acc_exact >= acc_approx - 0.05

    def test_regression(self, small_regression):
        report = PlanetTrainer().fit(small_regression, TreeConfig(max_depth=5))
        pred = report.tree().predict(small_regression)
        assert rmse(small_regression.target, pred) < rmse(
            small_regression.target, np.full_like(pred, small_regression.target.mean())
        )

    def test_forest_training(self, small_mixed_classification):
        report = PlanetTrainer().fit(
            small_mixed_classification, TreeConfig(max_depth=5), n_trees=5, seed=1
        )
        assert len(report.trees) == 5
        forest = report.forest()
        assert forest.n_trees == 5

    def test_ledger_components_positive(self, small_mixed_classification):
        report = PlanetTrainer().fit(
            small_mixed_classification, TreeConfig(max_depth=5)
        )
        assert report.sim_seconds == pytest.approx(
            report.scan_seconds + report.comm_seconds + report.overhead_seconds
        )
        assert report.n_iterations >= 1
        assert report.nodes_examined >= report.n_iterations

    def test_single_thread_has_no_comm(self, small_mixed_classification):
        report = PlanetTrainer(PlanetConfig().single_thread()).fit(
            small_mixed_classification, TreeConfig(max_depth=5)
        )
        assert report.comm_seconds < 0.05  # only driver-side select cost

    def test_deterministic(self, small_mixed_classification):
        r1 = PlanetTrainer().fit(small_mixed_classification, TreeConfig(max_depth=5))
        r2 = PlanetTrainer().fit(small_mixed_classification, TreeConfig(max_depth=5))
        assert r1.sim_seconds == r2.sim_seconds
        np.testing.assert_array_equal(
            r1.tree().predict(small_mixed_classification),
            r2.tree().predict(small_mixed_classification),
        )

    def test_more_machines_reduce_scan_time(self, small_mixed_classification):
        small = PlanetTrainer(
            PlanetConfig(n_machines=2, threads_per_machine=2)
        ).fit(small_mixed_classification, TreeConfig(max_depth=6))
        big = PlanetTrainer(
            PlanetConfig(n_machines=15, threads_per_machine=10)
        ).fit(small_mixed_classification, TreeConfig(max_depth=6))
        assert big.scan_seconds < small.scan_seconds

    def test_tree_helper_rejects_forest(self, small_mixed_classification):
        report = PlanetTrainer().fit(
            small_mixed_classification, TreeConfig(max_depth=4), n_trees=3, seed=1
        )
        with pytest.raises(ValueError):
            report.tree()


class TestWeightedQuantileSketch:
    def test_from_arrays_collapses_duplicates(self):
        sketch = WeightedQuantileSketch.from_arrays(
            np.array([1.0, 2.0, 1.0]), np.array([1.0, 1.0, 3.0])
        )
        assert sketch.size == 2
        assert sketch.total_weight == pytest.approx(5.0)

    def test_query_weighted_median(self):
        sketch = WeightedQuantileSketch.from_arrays(
            np.arange(100, dtype=float), np.ones(100)
        )
        assert 45 <= sketch.query(0.5) <= 55

    def test_merge_preserves_weight(self):
        a = WeightedQuantileSketch.from_arrays(
            np.arange(10, dtype=float), np.ones(10)
        )
        b = WeightedQuantileSketch.from_arrays(
            np.arange(5, 15, dtype=float), np.full(10, 2.0)
        )
        merged = a.merge(b)
        assert merged.total_weight == pytest.approx(30.0)

    def test_prune_bounds_size_and_weight(self):
        sketch = WeightedQuantileSketch.from_arrays(
            np.arange(1000, dtype=float), np.ones(1000)
        )
        pruned = sketch.prune(32)
        assert pruned.size <= 32
        assert pruned.total_weight == pytest.approx(1000.0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-100, max_value=100, allow_nan=False),
                st.floats(min_value=0.01, max_value=10),
            ),
            min_size=5,
            max_size=200,
        )
    )
    def test_prune_rank_error_bounded(self, pairs):
        """Pruned quantile queries stay within the summary's rank bound."""
        values = np.array([v for v, _ in pairs])
        weights = np.array([w for _, w in pairs])
        sketch = WeightedQuantileSketch.from_arrays(values, weights)
        pruned = sketch.prune(16)
        total = sketch.total_weight
        for frac in (0.25, 0.5, 0.75):
            answer = pruned.query(frac)
            # The answer value spans a weighted-rank *interval* (duplicates
            # make point ranks ill-defined); the query fraction must fall
            # near that interval.
            order = np.argsort(values, kind="stable")
            sorted_vals = values[order]
            cum = np.cumsum(weights[order])
            lo_idx = int(np.searchsorted(sorted_vals, answer, side="left"))
            hi_idx = int(np.searchsorted(sorted_vals, answer, side="right"))
            rank_lo = cum[lo_idx - 1] / total if lo_idx > 0 else 0.0
            rank_hi = cum[min(hi_idx, len(cum)) - 1] / total if hi_idx > 0 else 0.0
            slack = 2.5 / 16 + 2.0 / len(pairs)
            assert rank_lo - slack <= frac <= rank_hi + slack

    def test_candidates_exclude_max(self):
        sketch = WeightedQuantileSketch.from_arrays(
            np.arange(50, dtype=float), np.ones(50)
        )
        candidates = sketch.candidates(8)
        assert candidates.size >= 1
        assert candidates.max() < 49.0

    def test_empty_sketch(self):
        sketch = WeightedQuantileSketch.from_arrays(
            np.full(3, np.nan), np.ones(3)
        )
        assert sketch.size == 0
        assert sketch.candidates(8).size == 0
        with pytest.raises(ValueError):
            sketch.query(0.5)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedQuantileSketch.from_arrays(
                np.array([1.0]), np.array([-1.0])
            )


class TestXGBoostTrainer:
    def test_binary_classification_learns(self):
        table = generate(
            SyntheticSpec(
                name="bin", n_rows=800, n_numeric=6, n_categorical=0,
                n_classes=2, planted_depth=4, noise=0.05, seed=21,
            )
        )
        train, test = table.split_train_test(0.25, seed=1)
        report = XGBoostTrainer(XGBoostConfig(n_rounds=20, max_depth=4)).fit(train)
        acc = accuracy(test.target, report.model.predict(test))
        assert acc > 0.75

    def test_multiclass_trains_k_trees_per_round(self):
        table = generate(
            SyntheticSpec(
                name="multi", n_rows=400, n_numeric=5, n_categorical=0,
                n_classes=3, planted_depth=3, noise=0.05, seed=22,
            )
        )
        report = XGBoostTrainer(XGBoostConfig(n_rounds=4, max_depth=3)).fit(table)
        assert report.model.n_trees == 12  # 4 rounds x 3 classes
        acc = accuracy(table.target, report.model.predict(table))
        assert acc > 0.6

    def test_regression_improves_with_rounds(self, small_regression):
        short = XGBoostTrainer(XGBoostConfig(n_rounds=3, max_depth=4)).fit(
            small_regression
        )
        long = XGBoostTrainer(XGBoostConfig(n_rounds=25, max_depth=4)).fit(
            small_regression
        )
        r_short = rmse(
            small_regression.target, short.model.predict(small_regression)
        )
        r_long = rmse(
            small_regression.target, long.model.predict(small_regression)
        )
        assert r_long < r_short

    def test_time_linear_in_rounds(self, small_mixed_classification):
        t10 = XGBoostTrainer(XGBoostConfig(n_rounds=10, max_depth=4)).fit(
            small_mixed_classification
        )
        t20 = XGBoostTrainer(XGBoostConfig(n_rounds=20, max_depth=4)).fit(
            small_mixed_classification
        )
        assert 1.5 < t20.sim_seconds / t10.sim_seconds < 2.6

    def test_max_depth_respected(self, small_mixed_classification):
        report = XGBoostTrainer(XGBoostConfig(n_rounds=2, max_depth=2)).fit(
            small_mixed_classification
        )

        def depth(node, d=0):
            if node.is_leaf:
                return d
            return max(depth(node.left, d + 1), depth(node.right, d + 1))

        for round_trees in report.model.rounds:
            for root in round_trees:
                assert depth(root) <= 2

    def test_handles_missing_values(self, small_regression):
        report = XGBoostTrainer(XGBoostConfig(n_rounds=5, max_depth=3)).fit(
            small_regression
        )
        pred = report.model.predict(small_regression)
        assert np.isfinite(pred).all()

    def test_deterministic(self, small_mixed_classification):
        a = XGBoostTrainer(XGBoostConfig(n_rounds=5, max_depth=3)).fit(
            small_mixed_classification
        )
        b = XGBoostTrainer(XGBoostConfig(n_rounds=5, max_depth=3)).fit(
            small_mixed_classification
        )
        np.testing.assert_array_equal(
            a.model.predict(small_mixed_classification),
            b.model.predict(small_mixed_classification),
        )
        assert a.sim_seconds == b.sim_seconds


class TestBoostingVsBagging:
    def test_xgboost_accuracy_competitive(self):
        """On additive-signal data boosting matches or beats a same-size
        forest — the paper's Table II(c) accuracy axis."""
        spec = SyntheticSpec(
            name="add", n_rows=1500, n_numeric=10, n_categorical=0,
            n_classes=2, planted_depth=4, noise=0.1, seed=23,
            interaction_weight=1.0,
        )
        train, test = train_test(spec)
        xgb = XGBoostTrainer(XGBoostConfig(n_rounds=30, max_depth=4)).fit(train)
        from repro.core.jobs import random_forest_job
        from repro.ensemble import ForestModel

        job = random_forest_job("rf", 30, TreeConfig(max_depth=10), seed=3)
        forest = ForestModel(
            [train_tree(train, t.config) for t in job.stages[0].trees]
        )
        acc_xgb = accuracy(test.target, xgb.model.predict(test))
        acc_rf = accuracy(test.target, forest.predict(test))
        assert acc_xgb >= acc_rf - 0.03
