"""Tests for the distributed batch-prediction job."""

import numpy as np
import pytest

from repro.core import SystemConfig, TreeConfig, train_tree
from repro.core.jobs import random_forest_job
from repro.core.predictor import (
    distributed_predict,
    model_size_bytes,
    predict_from_hdfs,
    publish_and_predict,
)
from repro.cluster import CostModel
from repro.ensemble import ForestModel
from repro.hdfs import SimHdfs


def make_forest(table, n_trees=3, seed=0):
    job = random_forest_job("rf", n_trees, TreeConfig(max_depth=5), seed=seed)
    return ForestModel(
        [train_tree(table, t.config) for t in job.stages[0].trees]
    )


class TestDistributedPredict:
    def test_predictions_match_model(self, small_mixed_classification):
        table = small_mixed_classification
        forest = make_forest(table)
        report = distributed_predict(
            forest, table, SystemConfig(n_workers=4, compers_per_worker=2)
        )
        np.testing.assert_array_equal(report.predictions, forest.predict(table))

    def test_regression_predictions(self, small_regression):
        forest = make_forest(small_regression, n_trees=2)
        report = distributed_predict(
            forest,
            small_regression,
            SystemConfig(n_workers=3, compers_per_worker=2),
        )
        np.testing.assert_allclose(
            report.predictions, forest.predict_values(small_regression)
        )

    def test_time_breakdown(self, small_mixed_classification):
        forest = make_forest(small_mixed_classification)
        report = distributed_predict(
            forest,
            small_mixed_classification,
            SystemConfig(n_workers=4, compers_per_worker=2),
        )
        assert report.sim_seconds == pytest.approx(
            report.model_load_seconds
            + report.traversal_seconds
            + report.gather_seconds
        )
        assert report.model_bytes > 0

    def test_more_workers_cost_more_model_load(self, small_mixed_classification):
        """Every machine loads the whole model — broadcast cost grows."""
        forest = make_forest(small_mixed_classification)
        few = distributed_predict(
            forest, small_mixed_classification,
            SystemConfig(n_workers=2, compers_per_worker=2),
        )
        many = distributed_predict(
            forest, small_mixed_classification,
            SystemConfig(n_workers=12, compers_per_worker=2),
        )
        assert many.model_load_seconds > few.model_load_seconds
        assert many.traversal_seconds < few.traversal_seconds

    def test_model_size_scales_with_nodes(self, small_mixed_classification):
        small = make_forest(small_mixed_classification, n_trees=1)
        large = make_forest(small_mixed_classification, n_trees=5)
        cost = CostModel()
        assert model_size_bytes(large, cost) > model_size_bytes(small, cost)


class TestHdfsRoundTrip:
    def test_publish_and_predict(self, small_mixed_classification):
        table = small_mixed_classification
        forest = make_forest(table)
        fs = SimHdfs()
        report = publish_and_predict(
            fs, "/models/rf", "rf", forest, table,
            SystemConfig(n_workers=3, compers_per_worker=2),
        )
        np.testing.assert_array_equal(report.predictions, forest.predict(table))
        assert fs.exists("/models/rf/_model.json")

    def test_predict_from_hdfs_equals_direct(self, small_mixed_classification):
        table = small_mixed_classification
        forest = make_forest(table, seed=4)
        fs = SimHdfs()
        from repro.core.persistence import save_model_hdfs

        save_model_hdfs(fs, "/m", "rf", forest.trees)
        loaded = predict_from_hdfs(
            fs, "/m", table, SystemConfig(n_workers=2, compers_per_worker=2)
        )
        np.testing.assert_array_equal(loaded.predictions, forest.predict(table))
