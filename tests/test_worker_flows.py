"""Focused tests of worker-side task flows and byte accounting."""

import numpy as np
import pytest

from repro.core import (
    SystemConfig,
    TreeConfig,
    TreeServer,
    decision_tree_job,
    extra_trees_job,
    trees_equal,
    train_tree,
)
from repro.datasets import SyntheticSpec, generate


@pytest.fixture(scope="module")
def table():
    return generate(
        SyntheticSpec(
            name="wf", n_rows=600, n_numeric=4, n_categorical=2,
            n_classes=2, planted_depth=4, noise=0.1, seed=91,
        )
    )


class TestSubtreeDataFlows:
    def test_key_worker_with_all_columns_local(self, table):
        """One worker holds everything: subtree tasks need no column
        servers, only (local) row fetches."""
        system = SystemConfig(
            n_workers=1, compers_per_worker=2, tau_subtree=200, tau_dfs=400
        )
        report = TreeServer(system).fit(
            table, [decision_tree_job("dt", TreeConfig(max_depth=6))]
        )
        kinds = report.cluster.bytes_by_kind
        # With a single worker, no worker-to-worker bytes cross the wire.
        assert kinds.get("column_response", 0) == 0
        assert kinds.get("row_response", 0) == 0
        assert trees_equal(
            train_tree(table, TreeConfig(max_depth=6)), report.tree("dt")
        )

    def test_remote_columns_travel_once_per_subtree_task(self, table):
        """Column-response bytes reconcile with subtree-task volumes."""
        system = SystemConfig(
            n_workers=4,
            compers_per_worker=2,
            tau_subtree=200,
            tau_dfs=400,
            column_replication=1,
        )
        report = TreeServer(system).fit(
            table, [decision_tree_job("dt", TreeConfig(max_depth=6))]
        )
        kinds = report.cluster.bytes_by_kind
        if report.counters.subtree_tasks:
            assert kinds.get("column_response", 0) > 0

    def test_subtree_result_bytes_scale_with_nodes(self, table):
        system = SystemConfig(
            n_workers=3, compers_per_worker=2, tau_subtree=10**6, tau_dfs=10**6
        )
        report = TreeServer(system).fit(
            table, [decision_tree_job("dt", TreeConfig(max_depth=6))]
        )
        tree = report.tree("dt")
        expected = (
            report.cluster.bytes_by_kind["subtree_result"]
        )
        cost = TreeServer(system).cost
        assert expected == cost.subtree_bytes(tree.n_nodes)


class TestExtraTreeFlows:
    def test_single_column_plans(self, table):
        """Extra-tree column tasks carry exactly one column per try."""
        system = SystemConfig(
            n_workers=3, compers_per_worker=2, tau_subtree=0, tau_dfs=0
        )
        job = extra_trees_job("et", 1, seed=2)
        report = TreeServer(system).fit(table, [job])
        serial = train_tree(table, job.stages[0].trees[0].config)
        assert trees_equal(serial, report.trees("et")[0])

    def test_retries_counted(self, table):
        # A dataset with constant columns forces extra-tree retries.
        constant = generate(
            SyntheticSpec(
                name="const_cols", n_rows=200, n_numeric=3, n_categorical=0,
                n_classes=2, planted_depth=3, noise=0.1, seed=92,
            )
        )
        constant.columns[2][:] = 5.0  # degenerate column
        system = SystemConfig(
            n_workers=2, compers_per_worker=2, tau_subtree=0, tau_dfs=0
        )
        job = extra_trees_job("et", 2, seed=3)
        report = TreeServer(system).fit(constant, [job])
        for i, request in enumerate(job.stages[0].trees):
            assert trees_equal(
                train_tree(constant, request.config), report.trees("et")[i]
            )
        # Degenerate draws on the constant column must have caused retries.
        assert report.counters.extra.get("extra_retries", 0) >= 1


class TestByteAccounting:
    def test_row_traffic_proportional_to_row_ids(self, table):
        """Row-response bytes = sum over served fetches of |I_x| * 8 plus
        fixed headers — spot-checked via the cost model lower bound."""
        system = SystemConfig(
            n_workers=4, compers_per_worker=2
        ).scaled_to(table.n_rows)
        report = TreeServer(system).fit(
            table, [decision_tree_job("dt", TreeConfig(max_depth=6))]
        )
        kinds = report.cluster.bytes_by_kind
        # Root fetches are free (synthesized locally); every other fetch
        # carries at least a header.
        if "row_response" in kinds:
            assert kinds["row_response"] >= 128

    def test_total_bytes_stable_across_runs(self, table):
        system = SystemConfig(n_workers=3, compers_per_worker=2).scaled_to(
            table.n_rows
        )
        job = decision_tree_job("dt", TreeConfig(max_depth=5))
        a = TreeServer(system).fit(table, [job])
        b = TreeServer(system).fit(table, [job])
        assert a.cluster.bytes_by_kind == b.cluster.bytes_by_kind
